//! # AID — Causality-Guided Adaptive Interventional Debugging
//!
//! A Rust implementation of *Fariha, Nath, Meliou. "Causality-Guided
//! Adaptive Interventional Debugging", SIGMOD 2020*: given successful and
//! failed executions of an intermittently failing concurrent application,
//! AID pinpoints the **root cause** of the failure and produces a **causal
//! explanation path** from the root cause to the failure, using far fewer
//! re-executions than adaptive group testing.
//!
//! ```
//! use aid::prelude::*;
//!
//! // 1. A concurrent program with an intermittent atomicity violation.
//! let mut b = ProgramBuilder::new("demo");
//! let flag = b.object("flag", 0);
//! let len = b.object("len", 10);
//! let slot = b.object("slot", 10);
//! let reader = b.method("Reader", |m| {
//!     m.write(flag, Expr::Const(1))
//!         .read(len, Reg(0))
//!         .jitter(5, 40)
//!         .throw_if_obj(slot, Cmp::Gt, Expr::Reg(Reg(0)), "IndexOutOfRange");
//! });
//! let writer = b.method("Writer", |m| {
//!     m.jitter(1, 10).write(len, Expr::Const(20)).write(slot, Expr::Const(11));
//! });
//! let writer_entry = b.method("WriterEntry", |m| {
//!     m.wait_until(Expr::Obj(flag), Cmp::Eq, Expr::Const(1)).jitter(0, 30).call(writer);
//! });
//! let main = b.method("Main", |m| {
//!     m.spawn_named("t1").spawn_named("t2").join(1).join(2);
//! });
//! b.thread("main", main, true);
//! b.thread("t1", reader, false);
//! b.thread("t2", writer_entry, false);
//! let program = b.build();
//!
//! // 2. Collect labeled runs, analyze, and discover the causal path.
//! let sim = Simulator::new(program);
//! let logs = sim.collect_balanced(30, 30, 20_000);
//! let analysis = analyze(&logs, &ExtractionConfig::default());
//! let mut executor = SimExecutor::new(
//!     sim, analysis.extraction.catalog.clone(), analysis.extraction.failure, 10, 1_000_000,
//! );
//! let result = discover(&analysis.dag, &mut executor, Strategy::Aid, 0);
//! assert!(result.root_cause().is_some());
//! ```
//!
//! The same pipeline runs as a regular integration test in
//! `tests/smoke.rs`. See `README.md` for the crate map, `DESIGN.md` for the
//! system inventory and paper-substitution table, and `EXPERIMENTS.md` for
//! how every table and figure is regenerated.

pub use aid_cases as cases;
pub use aid_causal as causal;
pub use aid_core as core;
pub use aid_engine as engine;
pub use aid_lab as lab;
pub use aid_obs as obs;
pub use aid_predicates as predicates;
pub use aid_sd as sd;
pub use aid_serve as serve;
pub use aid_sim as sim;
pub use aid_store as store;
pub use aid_synth as synth;
pub use aid_theory as theory;
pub use aid_trace as trace;
pub use aid_util as util;
pub use aid_watch as watch;

/// The most common imports for using AID end to end.
pub mod prelude {
    pub use aid_causal::{AcDag, AcDagBuilder, PrecedencePolicy, StartTimePolicy, TypeAwarePolicy};
    pub use aid_core::{
        analyze, analyze_with_policy, discover, discover_with_options, failure_signatures,
        render_explanation, AidAnalysis, BatchExecutor, BudgetExhausted, CountingExecutor,
        DiscoverOptions, DiscoveryResult, ExecutionRecord, Executor, FlakyOracle, GroundTruth,
        OracleExecutor, Strategy,
    };
    pub use aid_engine::{
        DiscoveryJob, Engine, EngineConfig, EngineHandle, EngineStats, InterventionCache,
        JobSource, Session, SessionResult, WorkerPool,
    };
    pub use aid_lab::{
        check_scenario, corpus_violations, prepare_replay, BugClass, Conformance, LabParams,
        ReplayItem, Scenario, ScenarioReport,
    };
    pub use aid_obs::{
        Counter, Gauge, Histogram, HistogramSnapshot, MetricEntry, MetricValue, MetricsRegistry,
        MetricsSnapshot,
    };
    pub use aid_predicates::{
        evaluate, extract, Extraction, ExtractionConfig, InterventionAction, MethodInstance,
        Predicate, PredicateCatalog, PredicateId, PredicateKind,
    };
    pub use aid_sd::{PredicateScore, SdReport};
    pub use aid_serve::{
        Admission, AidClient, AnalysisSpec, ProgramSpec, ServeConfig, Server, ServerHandle,
        ServerStats, SessionState, SubmitSpec, TailReport, WatchSpec,
    };
    pub use aid_sim::program::{Cmp, Expr, Reg};
    pub use aid_sim::{
        Backend, BytecodeBackend, ExecBackend, InstanceFilter, Intervention, InterventionPlan,
        Program, ProgramBuilder, SimConfig, SimExecutor, Simulator, TreeWalkBackend, VmError,
    };
    pub use aid_store::{
        RetentionPolicy, StoreConfig, StoreSnapshot, StoreView, StreamDecoder, TraceStore,
    };
    pub use aid_trace::{
        AccessKind, FailureSignature, MethodEvent, MethodId, ObjectId, Outcome, ThreadId, Trace,
        TraceSet,
    };
    pub use aid_watch::{WatchConfig, WatchError, WatchEvent, WatchStats, Watcher};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = Strategy::Aid.name();
        let _ = ExtractionConfig::default();
        let _ = format!("{}", Backend::Bytecode);
    }
}
