//! Offline stub of `bytes` (see `shims/README.md`).
//!
//! Provides the `BufMut` trait subset the trace codec writes through. Backed
//! by `Vec<u8>`; growable buffers only.

/// A growable byte sink, mirroring the used subset of `bytes::BufMut`.
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::BufMut;

    #[test]
    fn vec_collects_slices() {
        let mut v: Vec<u8> = Vec::new();
        v.put_slice(b"ab");
        v.put_u8(b'c');
        // Exercise the forwarding impl for `&mut B` explicitly.
        <&mut Vec<u8> as BufMut>::put_slice(&mut (&mut v), b"d");
        assert_eq!(v, b"abcd");
    }
}
