//! Offline stub of `bytes` (see `shims/README.md`).
//!
//! Provides the `BufMut` trait subset the trace codec and the `aid_serve`
//! wire protocol write through. Backed by `Vec<u8>`; growable buffers only.

/// A growable byte sink, mirroring the used subset of `bytes::BufMut`.
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }

    /// Appends a `u32` in little-endian byte order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian byte order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::BufMut;

    #[test]
    fn vec_collects_slices() {
        let mut v: Vec<u8> = Vec::new();
        v.put_slice(b"ab");
        v.put_u8(b'c');
        // Exercise the forwarding impl for `&mut B` explicitly.
        <&mut Vec<u8> as BufMut>::put_slice(&mut (&mut v), b"d");
        assert_eq!(v, b"abcd");
    }

    #[test]
    fn little_endian_writers() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u32_le(0x0403_0201);
        v.put_u64_le(0x0c0b_0a09_0807_0605);
        assert_eq!(&v[..4], &[1, 2, 3, 4]);
        assert_eq!(v[4..12], [5, 6, 7, 8, 9, 10, 11, 12]);
    }
}
