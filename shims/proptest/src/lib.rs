//! Offline stub of `proptest` (see `shims/README.md`).
//!
//! A deterministic random-sampling property-test runner covering the subset
//! of the real crate this workspace uses: the `proptest!` macro (with
//! `#![proptest_config]`), `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! range and tuple strategies, `any::<bool>()`, and
//! `collection::{vec, btree_set}`.
//!
//! Differences from the real crate, deliberately accepted:
//! - no shrinking — a failing case reports its inputs via the assertion
//!   message instead of a minimized counterexample;
//! - sampling is seeded from a fixed constant, so runs are reproducible by
//!   construction (mirroring the determinism stance of the AID simulator).

/// Configuration and error types, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// How many cases each property runs, mirroring `ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed (or rejected) property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
        reject: bool,
    }

    impl TestCaseError {
        /// A hard failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
                reject: false,
            }
        }

        /// A rejection: the sampled inputs failed a `prop_assume!`
        /// precondition, so the case must be re-drawn, not counted.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
                reject: true,
            }
        }

        /// Whether this is a rejection rather than a failure.
        pub fn is_reject(&self) -> bool {
            self.reject
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic SplitMix64 sampler used by the runner.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed rng every property run starts from.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x3243_f6a8_885a_308d,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            (self.next_u64() as u128) % n
        }
    }
}

/// The `Strategy` trait and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can produce a random value of `Self::Value`.
    ///
    /// Unlike the real crate there is no value tree or shrinking: a strategy
    /// is just a sampler.
    pub trait Strategy {
        /// The type of the sampled value.
        type Value;

        /// Draws one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample_value(rng)
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        )+};
    }

    impl_strategy_tuple!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    );

    /// Strategy for "any value of `T`", mirroring `proptest::arbitrary`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn sample_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Samples any value of `T` (bools and integers in this stub).
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Number-of-elements specification accepted by [`vec()`] and [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_inclusive - self.lo) as u128 + 1;
            self.lo + rng.below(span) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing `BTreeSet`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            // Duplicates shrink the set below the drawn size, as in the real
            // crate when the element domain is small.
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// `BTreeSet` strategy with the given element strategy and size.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::any;
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) so the runner can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    // The stringified condition must be a format *argument*, not the format
    // string: conditions like `matches!(k, Kind { .. })` contain braces.
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Rejects the current case when its inputs don't satisfy a precondition;
/// the runner re-draws instead of counting the case, and errors out if too
/// many draws in a row are rejected (as the real crate does).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("precondition not met: ", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            let mut case = 0u32;
            let mut rejections = 0u32;
            // Mirrors the real crate's global rejection cap: a property whose
            // precondition is rarely satisfiable must error, not pass
            // vacuously with zero executed bodies.
            let max_rejections = config.cases.saturating_mul(16).max(1024);
            while case < config.cases {
                $(let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut rng);)+
                // The immediately-called closure gives `prop_assert!`'s
                // `return Err(..)` a frame to return from.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => case += 1,
                    ::core::result::Result::Err(e) if e.is_reject() => {
                        rejections += 1;
                        if rejections > max_rejections {
                            panic!(
                                "proptest {}: too many prop_assume! rejections \
                                 ({max_rejections}); last: {}",
                                stringify!($name),
                                e
                            );
                        }
                    }
                    ::core::result::Result::Err(e) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_collections(
            pair in (1u32..5, 10u32..20),
            v in collection::vec(any::<bool>(), 8),
            s in collection::btree_set(0usize..64, 0..10),
        ) {
            prop_assert!(pair.0 < pair.1);
            prop_assert_eq!(v.len(), 8);
            prop_assert!(s.len() < 10);
            prop_assume!(!v.is_empty());
            prop_assert_ne!(v.len(), 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..=255) {
            let _ = x;
        }

        /// Conditions containing braces must stringify safely (they are
        /// format arguments, not format strings).
        #[test]
        fn brace_conditions_stringify(x in 0u8..=255) {
            prop_assert!(matches!(Some(x), Some { 0: _ }));
        }

        /// Rejected draws are re-drawn, not counted: every executed body
        /// sees the precondition satisfied.
        #[test]
        fn assume_redraws_instead_of_passing_vacuously(x in 0u8..=255) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejections")]
    fn unsatisfiable_assume_errors_out() {
        proptest! {
            #[allow(unused)]
            fn never_satisfied(x in 0u64..10) {
                prop_assume!(x > 100);
            }
        }
        never_satisfied();
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed at case 1")]
    fn failures_panic_with_case_info() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
