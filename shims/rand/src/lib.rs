//! Offline stub of `rand` 0.9 (see `shims/README.md`).
//!
//! Implements the subset of the `rand` API this workspace uses — seedable
//! `StdRng`, `Rng::{random_range, random_bool}`, and `SliceRandom::shuffle`
//! — over a SplitMix64 core. Determinism per seed is the property the AID
//! reproduction actually relies on (the simulator's replayability argument);
//! statistical quality beyond SplitMix64 is not.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 high bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of rngs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds an rng whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete rng types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Uniform sampling over ranges, mirroring the bits of `rand::distr` we need.
pub mod distr {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types uniformly sampleable over a bounded interval.
    ///
    /// Like the real crate's `SampleUniform`, this exists so the
    /// [`SampleRange`] impls below can be *blanket* impls over `Range<T>` /
    /// `RangeInclusive<T>`; per-type range impls would break integer-literal
    /// inference at call sites such as `base + rng.random_range(0..5)`.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
        fn sample_between<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                    assert!(span > 0, "cannot sample empty range");
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A range that can produce a uniform sample of `T`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range. Panics if empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_between(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "cannot sample empty range");
            T::sample_between(lo, hi, true, rng)
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait providing in-place shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(2usize..=4);
            assert!((2..=4).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
