//! Offline stub of `parking_lot` (see `shims/README.md`).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly and a poisoned lock is recovered
//! rather than propagated, which matches `parking_lot`'s semantics closely
//! enough for the live-thread harness.

use std::sync::{self, PoisonError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Non-poisoning mutex, mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired; never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning reader–writer lock, mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard; never returns a poison error.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard; never returns a poison error.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
