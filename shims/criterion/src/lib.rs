//! Offline stub of `criterion` (see `shims/README.md`).
//!
//! Implements the group/`bench_function` API surface the workspace's benches
//! use, timed with `std::time::Instant`. There is no statistical analysis,
//! no warm-up model, and no HTML report: each benchmark runs for a short
//! fixed budget and prints mean time per iteration, which is enough to
//! compare hot paths locally while keeping CI able to compile (and smoke-run)
//! the bench targets.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Label for a parameterized benchmark, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Runs the closure under timing, mirroring `criterion::Bencher`.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn with_budget(budget: Duration) -> Self {
        Bencher {
            budget,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    ///
    /// Iterations run in geometrically growing batches with one clock read
    /// per batch, so clock overhead stays out of the measured window even
    /// for nanosecond-scale routines.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to touch caches / lazy state.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        let mut batch = 1u64;
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            if start.elapsed() >= self.budget {
                break;
            }
            // Cap so the final batch overshoots the budget by at most ~2x.
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label}: no measurement");
            return;
        }
        let per_iter = self.elapsed / u32::try_from(self.iters).unwrap_or(u32::MAX);
        println!("{label}: {per_iter:?}/iter ({} iters)", self.iters);
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small fixed budget: the stub is for relative comparisons and for
        // keeping bench targets honest in CI, not publication-grade numbers.
        let ms = std::env::var("AID_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::with_budget(self.budget);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::with_budget(self.criterion.budget);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::with_budget(self.criterion.budget);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group (no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Declares a function running the listed benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_shapes_hold() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.finish();
    }
}
