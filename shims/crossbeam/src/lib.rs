//! Offline stub of `crossbeam` (see `shims/README.md`).
//!
//! Only the `channel` module is provided. Unlike the first iteration of this
//! shim (which wrapped `std::sync::mpsc` and therefore supported a single
//! consumer), the channel is now a true multi-producer **multi-consumer**
//! queue built on `Mutex<VecDeque>` + `Condvar`, matching the crossbeam
//! semantics the workspace relies on:
//!
//! * `Receiver` is `Clone`, so a pool of worker threads can share one job
//!   queue (`aid_engine::WorkerPool`);
//! * `bounded(cap)` blocks senders when the queue is full, which is the
//!   backpressure primitive the engine's session queue uses;
//! * `recv_timeout` lets a joining thread interleave waiting with helping.
//!
//! Error types are re-used from `std::sync::mpsc`: they carry the same
//! fields and `Display` text as crossbeam's own, which keeps call sites
//! source-compatible with the real crate for the subset used here.

/// Multi-producer multi-consumer channels, mirroring the used subset of
/// `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Receiver::recv`] once the channel is empty and
    /// every sender is gone.
    pub use std::sync::mpsc::RecvError;
    /// Error returned by [`Receiver::recv_timeout`].
    pub use std::sync::mpsc::RecvTimeoutError;
    /// Error returned when the receiving side has hung up.
    pub use std::sync::mpsc::SendError;
    /// Error returned by [`Receiver::try_recv`].
    pub use std::sync::mpsc::TryRecvError;

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// `None` = unbounded.
        capacity: Option<usize>,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when a value arrives or the last sender leaves.
        readable: Condvar,
        /// Signalled when space frees up or the last receiver leaves.
        writable: Condvar,
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of a channel; cloneable for MPMC use.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.0.inner.lock().unwrap();
            g.senders -= 1;
            if g.senders == 0 {
                // Wake receivers blocked on an empty queue so they can
                // observe disconnection.
                drop(g);
                self.0.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut g = self.0.inner.lock().unwrap();
            g.receivers -= 1;
            if g.receivers == 0 {
                drop(g);
                self.0.writable.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, blocking while a bounded channel is full; fails
        /// only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut g = self.0.inner.lock().unwrap();
            loop {
                if g.receivers == 0 {
                    return Err(SendError(value));
                }
                match g.capacity {
                    Some(cap) if g.queue.len() >= cap => {
                        g = self.0.writable.wait(g).unwrap();
                    }
                    _ => break,
                }
            }
            g.queue.push_back(value);
            drop(g);
            self.0.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; `Err` once the queue is empty and all
        /// senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = g.queue.pop_front() {
                    drop(g);
                    self.0.writable.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.0.readable.wait(g).unwrap();
            }
        }

        /// Like [`Receiver::recv`] but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut g = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = g.queue.pop_front() {
                    drop(g);
                    self.0.writable.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.0.readable.wait_timeout(g, deadline - now).unwrap();
                g = guard;
            }
        }

        /// Returns the next value if one is queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.0.inner.lock().unwrap();
            if let Some(v) = g.queue.pop_front() {
                drop(g);
                self.0.writable.notify_one();
                return Ok(v);
            }
            if g.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.0.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Iterates until every sender has been dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Borrowing iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning iterator over received values.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.iter()
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel: `send` blocks while `cap` values are
    /// queued. `cap` must be at least 1 (crossbeam's zero-capacity
    /// rendezvous channel is not modeled).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "rendezvous channels are not modeled by the shim");
        with_capacity(Some(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
        });
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let taken = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for r in [&rx, &rx2] {
                s.spawn(|| {
                    while r.recv().is_ok() {
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
        });
        assert_eq!(taken.load(Ordering::Relaxed), 100, "each value taken once");
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // The third send must block until the receiver drains one slot.
        std::thread::scope(|s| {
            let t = s.spawn(|| tx.send(3).unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert!(!t.is_finished(), "send must block while full");
            assert_eq!(rx.recv().unwrap(), 1);
        });
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn disconnection_is_observable() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(7).is_err(), "send fails with no receivers");
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded::<u8>();
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap(), 9);
    }
}
