//! Offline stub of `crossbeam` (see `shims/README.md`).
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`. The
//! live-thread harness uses a single receiver with cloned senders, which is
//! exactly the mpsc shape, so no behavioral gap exists for this workspace.

/// Multi-producer channels, mirroring the used subset of `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    pub use std::sync::mpsc::SendError;

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next value; `Err` once all senders are dropped.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Returns the next value if one is queued.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates until every sender has been dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
        });
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
