//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! API-compatible stubs for its external dependencies (see `shims/README.md`).
//! This proc-macro crate accepts `#[derive(Serialize, Deserialize)]` and the
//! `#[serde(...)]` helper attributes and expands to nothing: the workspace
//! never serializes through serde at runtime (the trace codec is a purpose
//! built text format), it only keeps types *annotated* so the real serde can
//! be dropped in when a registry is available.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` field attributes);
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` field attributes);
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
