//! Offline stub of `serde` (see `shims/README.md`).
//!
//! Exposes the `Serialize`/`Deserialize` trait names and the derive macros so
//! that `use serde::{Deserialize, Serialize}` plus `#[derive(...)]` compile
//! unchanged. No serialization machinery is provided — the workspace's only
//! on-disk format is the purpose-built trace codec in `aid_trace::codec`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. The stub derive does not implement
/// it; nothing in the workspace takes `T: Serialize` bounds.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
}
