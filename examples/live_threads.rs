//! The intervention vocabulary on **real OS threads** (`aid-sim`'s `live`
//! module): instrumented closures, wall-clock traces, and a serializing
//! lock injected around the racing methods — the paper's actual mechanism,
//! demonstrated without the deterministic VM.
//!
//! ```sh
//! cargo run --example live_threads
//! ```

use aid::prelude::*;
use aid::sim::live::LiveHarness;

fn main() {
    let mut harness = LiveHarness::new(&["len", "next"]);
    let reader = harness.method("Reader", |ctx| {
        let len = ctx.read(0) + 10;
        ctx.pause(300);
        let next = ctx.read(1);
        if next > len {
            return Err("IndexOutOfRange".into());
        }
        Ok(Some(next))
    });
    let writer = harness.method("Writer", |ctx| {
        ctx.pause(150);
        ctx.write(1, 11);
        Ok(None)
    });

    // Without intervention: real scheduling decides; the race fires often.
    let set = harness.collect(&[reader, writer], 30);
    let (ok, fail) = set.counts();
    println!("uninstrumented: {ok} ok / {fail} failed (OS scheduling dependent)");

    // Inject the paper's lock repair and watch the overlap (and failure)
    // disappear.
    harness.set_plan(InterventionPlan::single(Intervention::SerializeMethods {
        a: reader,
        b: writer,
    }));
    let set = harness.collect(&[reader, writer], 30);
    let (ok, fail) = set.counts();
    println!("serialized:     {ok} ok / {fail} failed");
    for t in set.traces.iter().take(3) {
        let r = t.events.iter().find(|e| e.method == reader).unwrap();
        let w = t.events.iter().find(|e| e.method == writer).unwrap();
        println!(
            "  reader [{:>6},{:>6}]µs writer [{:>6},{:>6}]µs — disjoint: {}",
            r.start,
            r.end,
            w.start,
            w.end,
            r.end <= w.start || w.end <= r.start
        );
    }
    println!(
        "\nNote: real threads are not seedable — this is exactly why the \
         deterministic VM is the workhorse of the reproduction (DESIGN.md)."
    );
}
