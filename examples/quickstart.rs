//! Quickstart: debug an intermittently failing concurrent program from
//! scratch — build it, collect runs, and let AID name the root cause.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use aid::prelude::*;

fn main() {
    // A miniature atomicity violation: the writer updates `len` and `slot`
    // as a pair; the reader snapshots `len` and later bounds-checks `slot`
    // against the snapshot. Only when the writer's pair lands *inside* the
    // reader's window does the run crash.
    let mut b = ProgramBuilder::new("quickstart");
    let flag = b.object("flag", 0);
    let len = b.object("len", 10);
    let slot = b.object("slot", 10);
    let reader = b.method("Reader", |m| {
        m.write(flag, Expr::Const(1))
            .read(len, Reg(0))
            .jitter(5, 40)
            .throw_if_obj(slot, Cmp::Gt, Expr::Reg(Reg(0)), "IndexOutOfRange");
    });
    let writer = b.method("Writer", |m| {
        m.jitter(1, 10)
            .write(len, Expr::Const(20))
            .write(slot, Expr::Const(11));
    });
    let writer_entry = b.method("WriterEntry", |m| {
        m.wait_until(Expr::Obj(flag), Cmp::Eq, Expr::Const(1))
            .jitter(0, 30)
            .call(writer);
    });
    let main_m = b.method("Main", |m| {
        m.spawn_named("t1").spawn_named("t2").join(1).join(2);
    });
    b.thread("main", main_m, true);
    b.thread("t1", reader, false);
    b.thread("t2", writer_entry, false);
    let program = b.build();

    // Phase 1 — observation: run the program many times, label runs.
    let sim = Simulator::new(program);
    let logs = sim.collect_balanced(50, 50, 20_000);
    let (ok, fail) = logs.counts();
    println!("collected {ok} successful and {fail} failed runs");

    // Phase 2 — statistical debugging + the approximate causal DAG.
    let analysis = analyze(&logs, &ExtractionConfig::default());
    println!(
        "SD found {} fully-discriminative predicates; AC-DAG has {} nodes",
        analysis.sd_predicate_count(),
        analysis.dag.len()
    );

    // Phase 3 — causal interventions.
    let mut executor = SimExecutor::new(
        sim,
        analysis.extraction.catalog.clone(),
        analysis.extraction.failure,
        10,
        1_000_000,
    );
    let result = discover(&analysis.dag, &mut executor, Strategy::Aid, 0);
    println!();
    print!("{}", render_explanation(&analysis, &result, &logs));
    println!(
        "\n(AID needed {} interventions; plain SD would have dumped {} suspects on you.)",
        result.rounds,
        analysis.sd_predicate_count()
    );
}
