//! Flaky-test triage: the paper's motivating setting (§3, Assumption 1).
//! A test suite fails intermittently in *two different ways*; failure
//! signatures (the stand-in for stack-trace metadata from failure
//! trackers) split the runs into per-bug groups, and AID debugs each group
//! in isolation — the single-root-cause assumption holds per signature,
//! not per suite.
//!
//! ```sh
//! cargo run --example flaky_test_triage
//! ```

use aid::prelude::*;

fn main() {
    // A "test suite" with two independent intermittent bugs:
    // 1. a transient-fault timing bug that trips a deadline check;
    // 2. a random-collision bug in an id allocator.
    let mut b = ProgramBuilder::new("suite");
    let fetch = b.method("FetchFixture", |m| {
        m.set(Reg(1), Expr::Now)
            .flaky_delay(0.3, 80)
            .compute(5)
            .set(Reg(2), Expr::sub(Expr::Now, Expr::Reg(Reg(1))));
    });
    let deadline = b.method("AssertDeadline", |m| {
        m.throw_if(
            Expr::Reg(Reg(2)),
            Cmp::Gt,
            Expr::Const(60),
            "DeadlineExceeded",
        );
    });
    let alloc_a = b.pure_method("AllocA", |m| {
        m.rand_range(Reg(3), 0, 5).ret(Expr::Reg(Reg(3)));
    });
    let alloc_b = b.pure_method("AllocB", |m| {
        m.rand_range(Reg(4), 0, 5).ret(Expr::Reg(Reg(4)));
    });
    let uniq = b.method("AssertUnique", |m| {
        m.throw_if(Expr::Reg(Reg(3)), Cmp::Eq, Expr::Reg(Reg(4)), "DuplicateId");
    });
    let main_m = b.method("TestMain", |m| {
        m.call(fetch)
            .call(deadline)
            .call(alloc_a)
            .call(alloc_b)
            .call(uniq);
    });
    b.thread("main", main_m, true);
    let sim = Simulator::new(b.build());

    // Collect a big batch of suite runs and triage by signature.
    let logs = sim.collect(600);
    let (ok, fail) = logs.counts();
    println!("suite: {ok} passing runs, {fail} flaky failures");
    let groups = failure_signatures(&logs);
    for (sig, count) in &groups {
        println!("  signature {sig}: {count} failures");
    }

    // Debug each signature group independently.
    for (sig, _) in &groups {
        let grouped = logs.filter_failures_by_signature(sig);
        let analysis = analyze(&grouped, &ExtractionConfig::default());
        let mut exec = SimExecutor::new(
            sim.clone(),
            analysis.extraction.catalog.clone(),
            analysis.extraction.failure,
            40, // both bugs are sub-50% probability: demand confidence
            1_000_000,
        );
        let result = discover(&analysis.dag, &mut exec, Strategy::Aid, 1);
        println!("\n=== group {sig} ===");
        print!("{}", render_explanation(&analysis, &result, &grouped));
    }
    println!(
        "\nEach group got its own root cause — running AID on the mixed logs \
         would violate the single-root-cause assumption (Assumption 1)."
    );
}
