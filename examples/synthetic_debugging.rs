//! Synthetic-workload showcase (the Figure 8 machinery, in miniature):
//! generate applications with known ground truth, compare all four
//! strategies, and validate one of them end to end by compiling it into a
//! real runnable program.
//!
//! ```sh
//! cargo run --example synthetic_debugging
//! ```

use aid::prelude::*;
use aid::synth::{compile_to_program, generate, SynthParams};

fn main() {
    let params = SynthParams {
        max_threads: 16,
        ..Default::default()
    };

    println!("strategy comparison over 25 generated applications (MAXt = 16):");
    println!(
        "{:<10} {:>10} {:>10}",
        "strategy", "avg rounds", "max rounds"
    );
    for strategy in Strategy::PAPER_SET {
        let mut total = 0usize;
        let mut worst = 0usize;
        for seed in 0..25 {
            let app = generate(&params, seed);
            let mut oracle = OracleExecutor::new(app.truth.clone());
            let r = discover(&app.dag, &mut oracle, strategy, seed);
            // Sanity: every strategy must recover the exact causal set.
            assert_eq!(
                r.causal,
                app.truth.path_ids(),
                "{} failed on seed {seed}",
                strategy.name()
            );
            total += r.rounds;
            worst = worst.max(r.rounds);
        }
        println!(
            "{:<10} {:>10.1} {:>10}",
            strategy.name(),
            total as f64 / 25.0,
            worst
        );
    }

    // Now compile one ground truth into an actual program and push it
    // through the full pipeline: traces → predicates → SD → AC-DAG →
    // simulator-backed interventions.
    println!("\nend-to-end validation on a compiled synthetic app:");
    let truth = aid::core::figure4_ground_truth();
    let app = compile_to_program(&truth);
    let sim = Simulator::new(app.program.clone());
    let logs = sim.collect_balanced(40, 40, 4_000);
    let mut cfg = ExtractionConfig::default();
    for m in app.program.pure_methods() {
        cfg.pure_methods.insert(m);
    }
    let analysis = analyze(&logs, &cfg);
    let mut exec = SimExecutor::new(
        sim,
        analysis.extraction.catalog.clone(),
        analysis.extraction.failure,
        10,
        1_000_000,
    );
    let result = discover(&analysis.dag, &mut exec, Strategy::Aid, 7);
    print!("{}", render_explanation(&analysis, &result, &logs));
    println!(
        "ground truth path was node chain {:?} — the Figure 4 walkthrough's P1 → P2 → P11.",
        truth.path
    );
}
