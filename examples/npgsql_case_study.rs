//! The paper's flagship case study (Example 1, §7.1.1, Figure 9): the
//! Npgsql connector-pool data race, end to end, with the AC-DAG rendered
//! as GraphViz DOT and the full intervention schedule narrated.
//!
//! ```sh
//! cargo run --example npgsql_case_study
//! ```

use aid::cases::{self, analyze_case, collect_logs};
use aid::prelude::*;

fn main() {
    let case = cases::npgsql::case();
    println!("case:      {}", case.name);
    println!("reference: {}", case.reference);
    println!("bug:       {}\n", case.summary);

    let logs = collect_logs(&case);
    let (ok, fail) = logs.counts();
    println!("collected {ok} successful / {fail} failed executions");

    let analysis = analyze_case(&case, &logs);
    println!(
        "plain SD reports {} fully-discriminative predicates (paper: {})",
        analysis.sd_predicate_count(),
        case.paper.sd_predicates
    );

    println!("\n--- approximate causal DAG (GraphViz) ---");
    print!(
        "{}",
        analysis.dag.to_dot(&analysis.extraction.catalog, &logs)
    );

    let sim = Simulator::new(case.program.clone());
    let mut executor = SimExecutor::new(
        sim,
        analysis.extraction.catalog.clone(),
        analysis.extraction.failure,
        case.runs_per_round,
        1_000_000,
    );
    let result = discover(&analysis.dag, &mut executor, Strategy::Aid, 1);

    println!("--- intervention schedule ---");
    for (i, round) in result.log.iter().enumerate() {
        let names: Vec<String> = round
            .intervened
            .iter()
            .map(|&p| analysis.extraction.catalog.describe(p, &logs))
            .collect();
        println!(
            "round {:>2} [{:?}] intervene on {} predicate(s): failure {}{}",
            i + 1,
            round.phase,
            names.len(),
            if round.stopped { "STOPPED" } else { "persists" },
            if round.pruned.is_empty() {
                String::new()
            } else {
                format!(" — pruned {} more without intervening", round.pruned.len())
            }
        );
        for n in names {
            println!("          · {n}");
        }
    }

    println!("\n--- verdict ---");
    print!("{}", render_explanation(&analysis, &result, &logs));
    println!(
        "\nAID: {} interventions (paper: {}); TAGT worst case: {} (paper: {})",
        result.rounds,
        case.paper.aid,
        aid::core::analytic_worst_case(analysis.dag.candidates().len(), result.causal.len()),
        case.paper.tagt
    );
    println!(
        "\nThe developer's explanation on GitHub: two threads race on an \
         index variable; one increments it while the other reads it and \
         accesses the array beyond its size; the IndexOutOfRange exception \
         crashes the application. AID's chain above matches it step for step."
    );
}
