//! Predicate design is orthogonal to AID (§3.2, Appendix A): the extractor
//! is deliberately conservative — a behaviour that also occurs in
//! successful runs is not a "deviation" and never materializes. When the
//! root cause is a *conjunction* (two conditions that are individually
//! survivable), a domain expert designs the predicates post-hoc, inserts
//! them into the catalog, and conjoins them — the compound predicate is
//! fully discriminative and intervenable like any built-in kind.
//!
//! ```sh
//! cargo run --example custom_predicates
//! ```

use aid::prelude::*;

fn main() {
    // Fails only when BOTH fetches draw the slow path: each individual
    // slow draw is survivable, the conjunction is not.
    let mut b = ProgramBuilder::new("conjunction");
    let t1 = b.pure_method("FetchPrimary", |m| {
        m.set(Reg(1), Expr::Now)
            .flaky_delay(0.5, 40)
            .compute(5)
            .set_if(
                Reg(2),
                Expr::sub(Expr::Now, Expr::Reg(Reg(1))),
                Cmp::Gt,
                Expr::Const(20),
                Expr::Const(1),
                Expr::Const(0),
            )
            .ret(Expr::Reg(Reg(2)));
    });
    let t2 = b.pure_method("FetchReplica", |m| {
        m.set(Reg(3), Expr::Now)
            .flaky_delay(0.5, 40)
            .compute(5)
            .set_if(
                Reg(4),
                Expr::sub(Expr::Now, Expr::Reg(Reg(3))),
                Cmp::Gt,
                Expr::Const(20),
                Expr::Const(1),
                Expr::Const(0),
            )
            .ret(Expr::Reg(Reg(4)));
    });
    let check = b.method("Deadline", |m| {
        m.throw_if(
            Expr::add(Expr::Reg(Reg(2)), Expr::Reg(Reg(4))),
            Cmp::Eq,
            Expr::Const(2),
            "DeadlineExceeded",
        );
    });
    let main_m = b.method("Main", |m| {
        m.call(t1).call(t2).call(check);
    });
    b.thread("main", main_m, true);
    let program = b.build();

    let sim = Simulator::new(program);
    let logs = sim.collect_balanced(50, 50, 20_000);
    let ex = extract(&logs, &ExtractionConfig::default());

    // The expert designs per-task "fetch was slow" predicates the
    // conservative extractor would not materialize (slowness also happens
    // in successful runs — it is not a deviation on its own).
    let mut catalog = ex.catalog.clone();
    let slow_a = catalog.insert(Predicate {
        kind: PredicateKind::WrongReturn {
            site: MethodInstance::new(MethodId::from_raw(0), 0),
            expected: 0,
        },
        safe: true,
        action: Some(InterventionAction::ForceReturn {
            site: MethodInstance::new(MethodId::from_raw(0), 0),
            value: 0,
        }),
    });
    let slow_b = catalog.insert(Predicate {
        kind: PredicateKind::WrongReturn {
            site: MethodInstance::new(MethodId::from_raw(1), 0),
            expected: 0,
        },
        safe: true,
        action: Some(InterventionAction::ForceReturn {
            site: MethodInstance::new(MethodId::from_raw(1), 0),
            value: 0,
        }),
    });
    let both = catalog.conjoin(slow_a, slow_b);

    let observations: Vec<_> = logs.traces.iter().map(|t| evaluate(&catalog, t)).collect();
    let report = SdReport::analyze(&catalog, &observations);
    println!("designed predicates:");
    for &p in &[slow_a, slow_b, both] {
        let s = report.scores[p.index()];
        println!(
            "  {:<55} precision {:.2} recall {:.2} fully discriminative: {}",
            catalog.describe(p, &logs),
            s.precision(),
            s.recall(),
            s.fully_discriminative()
        );
    }
    assert!(!report.scores[slow_a.index()].fully_discriminative());
    assert!(!report.scores[slow_b.index()].fully_discriminative());
    assert!(report.scores[both.index()].fully_discriminative());

    // The compound predicate is intervenable: repairing one conjunct
    // (forcing the primary fetch's slow bit to its good value) eliminates
    // the failure.
    let plan = aid::sim::plan_for(&catalog, &[both]);
    let repaired = sim.collect_with(10_000..10_150, &plan);
    println!(
        "\nunder the compound repair: {} failures in {} runs",
        repaired.counts().1,
        repaired.traces.len()
    );
    assert_eq!(repaired.counts().1, 0);
    println!("AID can now treat the conjunction as a single root-cause candidate (§3.2).");
}
