//! Cross-crate property tests on the framework's structural invariants:
//! scheduler determinism, trace well-formedness, AC-DAG acyclicity for
//! arbitrary observation logs, and codec round-trips.

use aid::prelude::*;
use proptest::prelude::*;

// `proptest::prelude` also exports a `Strategy` trait; ours wins explicitly.
use aid::core::Strategy;

/// A small parameterized racy program (jitter bounds vary per case).
fn program(jr: (u64, u64), jw: (u64, u64)) -> Program {
    let mut b = ProgramBuilder::new("prop");
    let flag = b.object("flag", 0);
    let len = b.object("len", 10);
    let slot = b.object("slot", 10);
    let reader = b.method("Reader", |m| {
        m.write(flag, Expr::Const(1))
            .read(len, Reg(0))
            .jitter(jr.0, jr.1)
            .throw_if_obj(slot, Cmp::Gt, Expr::Reg(Reg(0)), "Boom");
    });
    let writer = b.method("Writer", |m| {
        m.jitter(jw.0, jw.1)
            .write(len, Expr::Const(20))
            .write(slot, Expr::Const(11));
    });
    let entry = b.method("WriterEntry", |m| {
        m.wait_until(Expr::Obj(flag), Cmp::Eq, Expr::Const(1))
            .jitter(0, 20)
            .call(writer);
    });
    let main_m = b.method("Main", |m| {
        m.spawn_named("t1").spawn_named("t2").join(1).join(2);
    });
    b.thread("main", main_m, true);
    b.thread("t1", reader, false);
    b.thread("t2", entry, false);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed ⇒ identical trace; the scheduler has no hidden state.
    #[test]
    fn prop_runs_are_deterministic_per_seed(
        seed in 0u64..5_000,
        jr in (1u64..20, 20u64..50),
        jw in (1u64..10, 10u64..30),
    ) {
        let sim = Simulator::new(program(jr, jw));
        let a = sim.run(seed, &InterventionPlan::empty());
        let b = sim.run(seed, &InterventionPlan::empty());
        prop_assert_eq!(a, b);
    }

    /// Every trace is well-formed: windows ordered, accesses inside their
    /// event's window, timestamps within the run, instances dense per
    /// method, events sorted by start time.
    #[test]
    fn prop_traces_are_well_formed(seed in 0u64..5_000) {
        let sim = Simulator::new(program((5, 40), (1, 10)));
        let t = sim.run(seed, &InterventionPlan::empty());
        let mut counts = std::collections::BTreeMap::new();
        let mut last_start = 0;
        for e in &t.events {
            prop_assert!(e.start <= e.end);
            prop_assert!(e.end <= t.duration);
            prop_assert!(e.start >= last_start, "events sorted by start");
            last_start = e.start;
            for a in &e.accesses {
                prop_assert!(a.at >= e.start && a.at <= e.end,
                    "access at {} outside [{}, {}]", a.at, e.start, e.end);
            }
            let c = counts.entry(e.method.raw()).or_insert(0u32);
            prop_assert_eq!(e.instance, *c, "instances dense per method");
            *c += 1;
        }
    }

    /// The AC-DAG built from real logs is acyclic (reachability is a strict
    /// partial order) and F is the unique sink of every candidate.
    #[test]
    fn prop_acdag_is_a_strict_partial_order(lo in 1u64..15, hi in 20u64..60) {
        let sim = Simulator::new(program((lo, hi), (1, 10)));
        let logs = sim.collect(120);
        if logs.counts().0 == 0 || logs.counts().1 == 0 {
            return Ok(()); // need both labels for an analysis
        }
        let analysis = analyze(&logs, &ExtractionConfig::default());
        let dag = &analysis.dag;
        for &p in dag.nodes() {
            prop_assert!(!dag.reaches(p, p), "irreflexive");
            for &q in dag.nodes() {
                if dag.reaches(p, q) {
                    prop_assert!(!dag.reaches(q, p), "antisymmetric");
                    for &r in dag.nodes() {
                        if dag.reaches(q, r) {
                            prop_assert!(dag.reaches(p, r), "transitive");
                        }
                    }
                }
            }
        }
        for &p in dag.candidates() {
            prop_assert!(dag.reaches(p, dag.failure()), "every candidate reaches F");
        }
    }

    /// Codec round-trip for arbitrary collected trace sets.
    #[test]
    fn prop_codec_roundtrip(seed in 0u64..500) {
        let sim = Simulator::new(program((5, 40), (1, 10)));
        let logs = sim.collect_with(seed..seed + 7, &InterventionPlan::empty());
        let text = aid::trace::codec::encode(&logs);
        let back = aid::trace::codec::decode(&text).unwrap();
        prop_assert_eq!(logs.traces, back.traces);
    }

    /// Serializing the racing methods eliminates the failure for any
    /// timing parameters — the intervention's guarantee is structural, not
    /// tuned.
    #[test]
    fn prop_serialization_always_repairs(
        lo in 1u64..15, hi in 20u64..60, wlo in 1u64..8, whi in 8u64..25,
    ) {
        let sim = Simulator::new(program((lo, hi), (wlo, whi)));
        let plan = InterventionPlan::single(Intervention::SerializeMethods {
            a: MethodId::from_raw(0),
            b: MethodId::from_raw(1),
        });
        let set = sim.collect_with(0..60, &plan);
        prop_assert_eq!(set.counts().1, 0, "no failures under serialization");
    }
}

#[test]
fn strategies_partition_candidates_on_real_pipeline() {
    // On the simulator-backed pipeline (not just the oracle), every
    // strategy decides every candidate exactly once.
    let sim = Simulator::new(program((5, 40), (1, 10)));
    let logs = sim.collect_balanced(30, 30, 20_000);
    let analysis = analyze(&logs, &ExtractionConfig::default());
    for strategy in [Strategy::Aid, Strategy::AidPB] {
        let mut exec = SimExecutor::new(
            sim.clone(),
            analysis.extraction.catalog.clone(),
            analysis.extraction.failure,
            10,
            3_000_000,
        );
        let r = discover(&analysis.dag, &mut exec, strategy, 5);
        assert_eq!(
            r.causal.len() + r.spurious.len(),
            analysis.dag.candidates().len(),
            "{}",
            strategy.name()
        );
    }
}
