//! End-to-end pipeline tests across crates: simulator traces → codec →
//! extraction → SD → AC-DAG → simulator-backed interventions → explanation.

use aid::prelude::*;

/// The quickstart program: an atomicity violation with a serializable race.
fn racy_program() -> Program {
    let mut b = ProgramBuilder::new("e2e");
    let flag = b.object("flag", 0);
    let len = b.object("len", 10);
    let slot = b.object("slot", 10);
    let reader = b.method("Reader", |m| {
        m.write(flag, Expr::Const(1))
            .read(len, Reg(0))
            .jitter(5, 40)
            .throw_if_obj(slot, Cmp::Gt, Expr::Reg(Reg(0)), "IndexOutOfRange");
    });
    let writer = b.method("Writer", |m| {
        m.jitter(1, 10)
            .write(len, Expr::Const(20))
            .write(slot, Expr::Const(11));
    });
    let writer_entry = b.method("WriterEntry", |m| {
        m.wait_until(Expr::Obj(flag), Cmp::Eq, Expr::Const(1))
            .jitter(0, 30)
            .call(writer);
    });
    let main_m = b.method("Main", |m| {
        m.spawn_named("t1").spawn_named("t2").join(1).join(2);
    });
    b.thread("main", main_m, true);
    b.thread("t1", reader, false);
    b.thread("t2", writer_entry, false);
    let _ = writer;
    b.build()
}

#[test]
fn full_pipeline_names_the_race_and_repairs_it() {
    let sim = Simulator::new(racy_program());
    let logs = sim.collect_balanced(40, 40, 20_000);
    let analysis = analyze(&logs, &ExtractionConfig::default());

    // The race must be a candidate and reach the failure in the AC-DAG.
    let race = analysis
        .candidates
        .iter()
        .copied()
        .find(|&q| {
            matches!(
                analysis.extraction.catalog.get(q).kind,
                PredicateKind::DataRace { .. }
            )
        })
        .expect("race candidate");
    assert!(analysis.dag.reaches(race, analysis.extraction.failure));

    let mut exec = SimExecutor::new(
        sim.clone(),
        analysis.extraction.catalog.clone(),
        analysis.extraction.failure,
        10,
        1_000_000,
    );
    let result = discover(&analysis.dag, &mut exec, Strategy::Aid, 3);
    assert_eq!(
        result.root_cause(),
        Some(race),
        "the race is the root cause"
    );

    // Applying the root cause's repair eliminates the failure entirely.
    let plan = aid::sim::plan_for(&analysis.extraction.catalog, &[race]);
    let repaired = sim.collect_with(5_000..5_200, &plan);
    assert_eq!(repaired.counts().1, 0, "no failures under the repair");

    let text = render_explanation(&analysis, &result, &logs);
    assert!(text.contains("Root cause: data race"), "{text}");
}

#[test]
fn trace_codec_roundtrips_simulator_output() {
    let sim = Simulator::new(racy_program());
    let logs = sim.collect(25);
    let encoded = aid::trace::codec::encode(&logs);
    let decoded = aid::trace::codec::decode(&encoded).expect("decode");
    assert_eq!(decoded.traces.len(), logs.traces.len());
    for (a, b) in logs.traces.iter().zip(&decoded.traces) {
        assert_eq!(a, b, "codec must preserve traces bit for bit");
    }
    // Predicate extraction sees identical logs either way.
    let ex1 = extract(&logs, &ExtractionConfig::default());
    let ex2 = extract(&decoded, &ExtractionConfig::default());
    assert_eq!(ex1.catalog.len(), ex2.catalog.len());
}

#[test]
fn failure_signature_grouping_isolates_one_bug_at_a_time() {
    // A program with two distinct intermittent failures: AID runs once per
    // signature group (Assumption 1).
    let mut b = ProgramBuilder::new("twobugs");
    let first = b.method("First", |m| {
        m.set(Reg(1), Expr::Now).flaky_delay(0.3, 50).throw_if(
            Expr::sub(Expr::Now, Expr::Reg(Reg(1))),
            Cmp::Gt,
            Expr::Const(40),
            "SlowPath",
        );
    });
    let second = b.method("Second", |m| {
        m.rand_range(Reg(2), 0, 4)
            .throw_if(Expr::Reg(Reg(2)), Cmp::Eq, Expr::Const(0), "BadDraw");
    });
    let main_m = b.method("Main", |m| {
        m.try_call(first).call(second);
    });
    b.thread("main", main_m, true);
    // `First`'s failure is absorbed by try_call, so only `Second` crashes
    // the run — but make both visible by crashing First sometimes too:
    let program = b.build();

    let sim = Simulator::new(program);
    let logs = sim.collect(400);
    let signatures = failure_signatures(&logs);
    assert!(!signatures.is_empty());
    // Group by the dominant signature and run the analysis on that group.
    let (sig, _) = &signatures[0];
    let grouped = logs.filter_failures_by_signature(sig);
    let analysis = analyze(&grouped, &ExtractionConfig::default());
    assert_eq!(
        analysis.extraction.signature, *sig,
        "analysis binds to the grouped signature"
    );
}

#[test]
fn deterministic_analysis_across_repeated_runs() {
    let sim = Simulator::new(racy_program());
    let logs1 = sim.collect_balanced(30, 30, 20_000);
    let logs2 = sim.collect_balanced(30, 30, 20_000);
    let a1 = analyze(&logs1, &ExtractionConfig::default());
    let a2 = analyze(&logs2, &ExtractionConfig::default());
    assert_eq!(a1.extraction.catalog.len(), a2.extraction.catalog.len());
    assert_eq!(a1.candidates, a2.candidates);
    assert_eq!(a1.dag.nodes(), a2.dag.nodes());
}
