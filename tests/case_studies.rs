//! Figure 7 shape assertions: all six case studies, measured against the
//! paper's rows. Absolute round counts vary with tie-breaking seeds; the
//! *shape* — who wins, path lengths, predicate counts — must hold.

use aid::cases::{all_cases, run_case};

#[test]
fn figure7_shape_holds_for_all_six_cases() {
    for case in all_cases() {
        let report = run_case(&case, 11);
        // Root cause identified and of the right kind.
        assert!(
            report.root_matches,
            "{}: wrong root cause {:?}",
            case.name, report.root_description
        );
        // Column 3: fully-discriminative predicate count near the paper's.
        let sd_lo = (case.paper.sd_predicates as f64 * 0.8) as usize;
        let sd_hi = (case.paper.sd_predicates as f64 * 1.25) as usize;
        assert!(
            (sd_lo..=sd_hi).contains(&report.sd_predicates),
            "{}: SD count {} outside [{}, {}] (paper {})",
            case.name,
            report.sd_predicates,
            sd_lo,
            sd_hi,
            case.paper.sd_predicates
        );
        // Column 4: causal path length within ±2 of the paper.
        assert!(
            report.causal_path.abs_diff(case.paper.causal_path) <= 2,
            "{}: path {} vs paper {}",
            case.name,
            report.causal_path,
            case.paper.causal_path
        );
        // Columns 5/6: AID beats TAGT (the paper's headline).
        assert!(
            report.aid_rounds < report.tagt_rounds,
            "{}: AID {} !< TAGT {}",
            case.name,
            report.aid_rounds,
            report.tagt_rounds
        );
        // AID also beats the analytic TAGT worst case.
        assert!(
            report.aid_rounds < report.tagt_analytic.max(report.tagt_rounds),
            "{}: AID {} vs analytic {}",
            case.name,
            report.aid_rounds,
            report.tagt_analytic
        );
    }
}

#[test]
fn explanations_match_developer_stories() {
    for case in all_cases() {
        let report = run_case(&case, 23);
        let needle = match case.name {
            "Npgsql" | "HealthTelemetry" => "data race",
            "Kafka" | "CosmosDB" => "runs too slow",
            "Network" => "colliding values",
            "BuildAndTest" => "no longer precedes",
            other => panic!("unknown case {other}"),
        };
        assert!(
            report.explanation.contains(needle),
            "{}: explanation lacks {:?}:\n{}",
            case.name,
            needle,
            report.explanation
        );
        assert!(
            report.explanation.contains("FAILURE"),
            "{}: path must end at the failure",
            case.name
        );
    }
}
