//! Workspace smoke test: the facade's front-page pipeline, as a regular
//! integration test.
//!
//! This mirrors the doctest on `src/lib.rs` line for line so the end-to-end
//! `aid::prelude` path (build program → simulate → extract → AC-DAG →
//! discover) stays covered even in environments that skip doctests
//! (e.g. `cargo test --all-targets`, which excludes them).

use aid::prelude::*;

/// Builds the demo program from the facade doctest: a reader snapshots a
/// bound, a writer bumps it mid-window — an intermittent atomicity
/// violation.
fn demo_program() -> Program {
    let mut b = ProgramBuilder::new("demo");
    let flag = b.object("flag", 0);
    let len = b.object("len", 10);
    let slot = b.object("slot", 10);
    let reader = b.method("Reader", |m| {
        m.write(flag, Expr::Const(1))
            .read(len, Reg(0))
            .jitter(5, 40)
            .throw_if_obj(slot, Cmp::Gt, Expr::Reg(Reg(0)), "IndexOutOfRange");
    });
    let writer = b.method("Writer", |m| {
        m.jitter(1, 10)
            .write(len, Expr::Const(20))
            .write(slot, Expr::Const(11));
    });
    let writer_entry = b.method("WriterEntry", |m| {
        m.wait_until(Expr::Obj(flag), Cmp::Eq, Expr::Const(1))
            .jitter(0, 30)
            .call(writer);
    });
    let main = b.method("Main", |m| {
        m.spawn_named("t1").spawn_named("t2").join(1).join(2);
    });
    b.thread("main", main, true);
    b.thread("t1", reader, false);
    b.thread("t2", writer_entry, false);
    b.build()
}

#[test]
fn facade_doctest_pipeline_runs_end_to_end() {
    let sim = Simulator::new(demo_program());
    let logs = sim.collect_balanced(30, 30, 20_000);
    let analysis = analyze(&logs, &ExtractionConfig::default());
    let mut executor = SimExecutor::new(
        sim,
        analysis.extraction.catalog.clone(),
        analysis.extraction.failure,
        10,
        1_000_000,
    );
    let result = discover(&analysis.dag, &mut executor, Strategy::Aid, 0);

    // The doctest's assertion...
    assert!(result.root_cause().is_some());
    // ...plus the structural invariants the front page promises: discovery
    // decides every candidate exactly once, and the causal path is rendered
    // from the discovered root cause.
    assert_eq!(
        result.causal.len() + result.spurious.len(),
        analysis.dag.candidates().len(),
        "causal and spurious must partition the candidates"
    );
    let explanation = render_explanation(&analysis, &result, &logs);
    assert!(
        !explanation.is_empty(),
        "a discovered root cause must render a non-empty explanation"
    );
}

#[test]
fn facade_exposes_the_scenario_lab() {
    // One generated scenario through the full conformance harness, via the
    // prelude path (the CI lab job covers scale; this pins the wiring).
    let conf = Conformance::default();
    let (scenario, corpus) = aid::lab::generate_validated(&conf.params, 5);
    assert_eq!(scenario.spec.bug_class, BugClass::LostDelivery);
    let report = aid::lab::check_scenario_on(&scenario, &corpus, &conf);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.root_found);
}
