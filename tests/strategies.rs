//! Soundness and completeness of the discovery strategies, over randomly
//! generated ground truths (property-based), plus robustness under a flaky
//! observation oracle.

use aid::prelude::*;
use aid::synth::{generate, SynthParams};
use proptest::prelude::*;

// `proptest::prelude` also exports a `Strategy` trait; ours wins explicitly.
use aid::core::Strategy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy recovers exactly the true causal path on arbitrary
    /// generated applications (soundness + completeness, Definition 1).
    #[test]
    fn prop_all_strategies_recover_exact_truth(seed in 0u64..10_000, maxt in 2u32..24) {
        let params = SynthParams { max_threads: maxt, ..Default::default() };
        let app = generate(&params, seed);
        let want = app.truth.path_ids();
        for strategy in Strategy::PAPER_SET {
            let mut oracle = OracleExecutor::new(app.truth.clone());
            let r = discover(&app.dag, &mut oracle, strategy, seed);
            prop_assert_eq!(
                &r.causal, &want,
                "{} diverged on seed {}", strategy.name(), seed
            );
            // Causal and spurious partition the candidates.
            prop_assert_eq!(r.causal.len() + r.spurious.len(), app.n);
        }
    }

    /// Pruning is an optimization: AID never *loses* to its unpruned
    /// variants by more than tie-breaking noise, and interventional
    /// pruning never discards a true-path predicate.
    #[test]
    fn prop_pruning_never_discards_causal(seed in 0u64..10_000) {
        let params = SynthParams { max_threads: 12, ..Default::default() };
        let app = generate(&params, seed);
        let mut oracle = OracleExecutor::new(app.truth.clone());
        let r = discover(&app.dag, &mut oracle, Strategy::Aid, seed);
        for p in app.truth.path_ids() {
            prop_assert!(
                !r.spurious.contains(&p),
                "true-path predicate {:?} was pruned", p
            );
        }
    }
}

#[test]
fn aid_beats_tagt_on_average_across_workloads() {
    // Mirrors Figure 8's average panel at one setting.
    let params = SynthParams {
        max_threads: 18,
        ..Default::default()
    };
    let mut aid_total = 0usize;
    let mut tagt_total = 0usize;
    for seed in 0..60 {
        let app = generate(&params, seed);
        let mut oracle = OracleExecutor::new(app.truth.clone());
        aid_total += discover(&app.dag, &mut oracle, Strategy::Aid, seed).rounds;
        let mut oracle = OracleExecutor::new(app.truth.clone());
        tagt_total += discover(&app.dag, &mut oracle, Strategy::Tagt, seed).rounds;
    }
    assert!(
        aid_total < tagt_total,
        "AID {aid_total} must beat TAGT {tagt_total} in aggregate"
    );
}

#[test]
fn flaky_observations_paper_rule_vs_quorum() {
    // Observation noise flips symptom bits with 3% probability per run.
    // The paper's single-counter-example pruning rule (quorum = 1) is
    // brittle under such noise: one flipped bit anywhere wrongly prunes a
    // predicate. A majority quorum over the round's records restores
    // robustness. Either way the root cause is safe: it reaches every
    // intervened predicate in the AC-DAG, so Definition 2's ancestor guard
    // never lets it be pruned, and discovery always terminates with a
    // complete partition.
    let truth = aid::core::figure4_ground_truth();
    let dag = {
        let p = |i: u32| PredicateId::from_raw(i);
        let edges: Vec<_> = vec![
            (p(0), p(1)),
            (p(1), p(2)),
            (p(2), p(3)),
            (p(3), p(4)),
            (p(4), p(5)),
            (p(2), p(6)),
            (p(6), p(7)),
            (p(7), p(8)),
            (p(6), p(10)),
            (p(5), p(9)),
            (p(10), p(9)),
            (p(9), p(11)),
            (p(5), p(11)),
            (p(8), p(11)),
        ];
        AcDag::from_edges(&truth.candidates(), truth.failure(), &edges)
    };
    let mut exact_paper = 0;
    let mut exact_quorum = 0;
    for seed in 0..20 {
        let mut flaky = FlakyOracle::new(truth.clone(), 0.03, 7, seed);
        let r = discover(&dag, &mut flaky, Strategy::Aid, seed);
        assert_eq!(r.causal.len() + r.spurious.len(), truth.n);
        assert_eq!(
            r.root_cause().map(|p| p.raw()),
            Some(0),
            "root survives noise"
        );
        if r.causal == truth.path_ids() {
            exact_paper += 1;
        }

        let mut flaky = FlakyOracle::new(truth.clone(), 0.03, 7, seed);
        let r = discover_with_options(
            &dag,
            &mut flaky,
            Strategy::Aid,
            seed,
            DiscoverOptions { prune_quorum: 5 },
        );
        assert_eq!(r.causal.len() + r.spurious.len(), truth.n);
        if r.causal == truth.path_ids() {
            exact_quorum += 1;
        }
    }
    assert!(
        exact_quorum >= 16,
        "majority quorum must be robust: {exact_quorum}/20"
    );
    assert!(
        exact_quorum >= exact_paper,
        "quorum ({exact_quorum}) must not underperform the paper rule ({exact_paper})"
    );
}

#[test]
fn counting_executor_budget_catches_runaways() {
    let truth = aid::core::figure4_ground_truth();
    let candidates = truth.candidates();
    let failure = truth.failure();
    let edges: Vec<_> = candidates.iter().map(|&c| (c, failure)).collect();
    let dag = AcDag::from_edges(&candidates, failure, &edges);
    let oracle = OracleExecutor::new(truth);
    let mut counted = CountingExecutor::with_budget(oracle, 500);
    let r = discover(&dag, &mut counted, Strategy::Tagt, 0);
    assert!(counted.rounds >= r.rounds);
    assert!(counted.rounds <= 500);
}
