//! Reproduces the paper's Section 5.2 walkthrough (Figure 4) exactly: the
//! 11-predicate AC-DAG, the true causal path P1 → P2 → P11 → F, and the
//! 8-intervention discovery schedule.

use aid::prelude::*;

fn p(i: u32) -> PredicateId {
    PredicateId::from_raw(i)
}

/// The Figure 4(a) AC-DAG (ids: P1=0 … P11=10, F=11), from Hasse edges.
fn figure4_dag() -> AcDag {
    let truth = aid::core::figure4_ground_truth();
    let edges = vec![
        (p(0), p(1)),
        (p(1), p(2)),
        (p(2), p(3)),
        (p(3), p(4)),
        (p(4), p(5)),
        (p(2), p(6)),
        (p(6), p(7)),
        (p(7), p(8)),
        (p(6), p(10)),
        (p(5), p(9)),
        (p(10), p(9)),
        (p(9), p(11)),
        (p(5), p(11)),
        (p(8), p(11)),
    ];
    AcDag::from_edges(&truth.candidates(), truth.failure(), &edges)
}

#[test]
fn causal_path_is_p1_p2_p11_f() {
    let truth = aid::core::figure4_ground_truth();
    let dag = figure4_dag();
    for seed in 0..25 {
        let mut oracle = OracleExecutor::new(truth.clone());
        let r = discover(&dag, &mut oracle, Strategy::Aid, seed);
        assert_eq!(
            r.path().iter().map(|q| q.raw()).collect::<Vec<_>>(),
            vec![0, 1, 10, 11],
            "P1 → P2 → P11 → F must hold for every tie-breaking seed"
        );
    }
}

#[test]
fn eight_intervention_schedules_exist_and_dominate() {
    let truth = aid::core::figure4_ground_truth();
    let dag = figure4_dag();
    let mut counts = std::collections::BTreeMap::new();
    for seed in 0..60 {
        let mut oracle = OracleExecutor::new(truth.clone());
        let r = discover(&dag, &mut oracle, Strategy::Aid, seed);
        *counts.entry(r.rounds).or_insert(0usize) += 1;
    }
    assert!(
        counts.contains_key(&8),
        "the paper's 8-round schedule must be reachable: {counts:?}"
    );
    // "na\u{ef}vely we would have needed 11 — one for each predicate."
    assert!(
        counts.keys().all(|&k| k < 11),
        "every schedule must beat one-at-a-time: {counts:?}"
    );
}

#[test]
fn branch_pruning_resolves_both_junctions_in_two_rounds() {
    let truth = aid::core::figure4_ground_truth();
    let dag = figure4_dag();
    for seed in 0..10 {
        let mut oracle = OracleExecutor::new(truth.clone());
        let mut state = aid::core::DiscoveryState::new(&dag, true, seed);
        aid::core::branch_prune(&mut state, &mut oracle);
        assert_eq!(state.rounds(), 2, "steps ① and ② of the walkthrough");
        // P4, P5, P6 (ids 3, 4, 5) and P8, P9 (ids 7, 8) are always gone.
        for gone in [3u32, 4, 5, 7, 8] {
            assert!(
                state.spurious.contains(&p(gone)),
                "P{} must be branch-pruned (seed {seed})",
                gone + 1
            );
        }
    }
}

#[test]
fn search_space_matches_example_3() {
    // Figure 5(a): CPD has 15 valid solutions, GT has 2^6 = 64.
    let closure = aid::theory::closure_from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
    assert_eq!(aid::theory::chain_count(&closure), Some(15));
    assert_eq!(aid::theory::gt_search_space_log2(6), 6.0);
    assert_eq!(aid::theory::symmetric_cpd_search_space(1, 2, 3), Some(15));
}
