//! Section 6's theory, validated against measured behaviour: measured
//! intervention counts respect the information-theoretic lower bounds and
//! the pruning/branch upper bounds; the search-space DP agrees with the
//! closed forms.

use aid::prelude::*;
use aid::synth::{generate, SynthParams};
use aid::theory;

#[test]
fn measured_worst_case_respects_information_lower_bound() {
    // The information-theoretic bound log2(C(N, D)) constrains an
    // algorithm's *worst case* — a lucky instance can finish early, the
    // decision tree cannot be uniformly shallow. Check TAGT's worst case
    // over many tie-breaking schedules on fixed applications.
    let params = SynthParams {
        max_threads: 10,
        ..Default::default()
    };
    for app_seed in 0..6 {
        let app = generate(&params, app_seed);
        let lower = theory::gt_lower_bound(app.n as u64, app.d as u64);
        let worst = (0..40)
            .map(|tie_seed| {
                let mut oracle = OracleExecutor::new(app.truth.clone());
                discover(&app.dag, &mut oracle, Strategy::Tagt, tie_seed).rounds
            })
            .max()
            .unwrap();
        assert!(
            (worst as f64) >= lower.floor(),
            "app {app_seed}: TAGT worst {} below log2 C({}, {}) = {:.1}",
            worst,
            app.n,
            app.d,
            lower
        );
    }
}

#[test]
fn aid_stays_within_branch_and_pruning_upper_bounds() {
    // §6.3.1: AID ≤ J·log2(T) + D·log2(N_M) + slack. Our generator bounds
    // J ≤ 3 and branch width by the thread count; N_M ≤ N. Verify against
    // the loose composite bound J·log2(T) + D·log2(N) + D (slack for
    // singleton-confirmation rounds).
    let params = SynthParams {
        max_threads: 16,
        ..Default::default()
    };
    for seed in 0..30 {
        let app = generate(&params, seed);
        let mut oracle = OracleExecutor::new(app.truth.clone());
        let aid = discover(&app.dag, &mut oracle, Strategy::Aid, seed);
        let bound =
            theory::aid_branch_upper_bound(3, app.threads as u64, app.n as u64, app.d as u64)
                + app.d as f64;
        assert!(
            (aid.rounds as f64) <= bound.ceil() + 2.0,
            "seed {seed}: AID {} above bound {:.1} (N={}, D={}, T={})",
            aid.rounds,
            bound,
            app.n,
            app.d,
            app.threads
        );
    }
}

#[test]
fn figure6_table_is_internally_consistent() {
    for (j, b, n) in [(1u64, 2u64, 3u64), (2, 4, 4), (3, 8, 5), (4, 16, 3)] {
        let total = j * b * n;
        let d = (total as f64 / (total as f64).log2()).floor().max(1.0) as u64;
        let row = theory::figure6_row(j, b, n, d.min(j * n), 2, 2);
        assert!(row.cpd_search_log2 < row.gt_search_log2);
        assert!(row.cpd_lower <= row.gt_lower + 1e-9);
        assert!(row.aid_upper <= row.tagt_upper + 1e-9);
    }
}

#[test]
fn chain_count_matches_symmetric_closed_form() {
    // Build the symmetric AC-DAG explicitly and compare the DP against
    // (B(2^n − 1) + 1)^J.
    for (j, bwidth, n) in [(1usize, 2usize, 3usize), (2, 3, 2), (3, 2, 2)] {
        let mut edges = Vec::new();
        let mut next = 0usize;
        let mut prev_tails: Vec<usize> = Vec::new();
        for _ in 0..j {
            let mut tails = Vec::new();
            for _ in 0..bwidth {
                let ids: Vec<usize> = (next..next + n).collect();
                next += n;
                for w in ids.windows(2) {
                    edges.push((w[0], w[1]));
                }
                for &t in &prev_tails {
                    edges.push((t, ids[0]));
                }
                tails.push(*ids.last().unwrap());
            }
            prev_tails = tails;
        }
        let closure = theory::closure_from_edges(next, &edges);
        let dp = theory::chain_count(&closure).unwrap();
        let formula =
            theory::symmetric_cpd_search_space(j as u32, bwidth as u32, n as u32).unwrap();
        assert_eq!(dp, formula, "J={j} B={bwidth} n={n}");
    }
}

#[test]
fn interventional_pruning_reduces_rounds_with_symptom_mass() {
    // The more symptoms hang off the causal path, the more Definition 2
    // pruning pays off: AID with pruning beats AID-P on aggregate.
    let params = SynthParams {
        max_threads: 20,
        symptom_prob: 0.9,
        ..Default::default()
    };
    let mut with = 0usize;
    let mut without = 0usize;
    for seed in 100..160 {
        let app = generate(&params, seed);
        let mut oracle = OracleExecutor::new(app.truth.clone());
        with += discover(&app.dag, &mut oracle, Strategy::Aid, seed).rounds;
        let mut oracle = OracleExecutor::new(app.truth.clone());
        without += discover(&app.dag, &mut oracle, Strategy::AidP, seed).rounds;
    }
    assert!(
        with <= without,
        "pruning must not hurt: AID {with} vs AID-P {without}"
    );
}
