//! The `AID_OBS=off` zero-overhead path: histograms and spans become
//! no-ops while counters (the stats-struct source of truth) advance by
//! exactly what was recorded.
//!
//! This lives in its own test binary with a single `#[test]` so the env
//! var is set before anything reads the process-wide gate (the gate is
//! cached on first use by design — one branch on the hot path).

use aid_obs::MetricsRegistry;

#[test]
fn aid_obs_off_disables_histograms_and_spans_but_not_counters() {
    std::env::set_var("AID_OBS", "off");

    assert!(!aid_obs::spans_enabled());
    let registry = MetricsRegistry::from_env();
    assert!(!registry.is_enabled());

    const N: u64 = 10_000;
    let counter = registry.counter("gate.ops");
    let histogram = registry.histogram("gate.lat_us");
    let before = counter.get();
    for i in 0..N {
        counter.inc();
        histogram.record(i);
        let _span = aid_obs::span!("gate.tick");
    }

    // Counters: exactly N, no skew from the disabled plane.
    assert_eq!(counter.get() - before, N);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("gate.ops"), Some(N));

    // Histograms: the disabled path recorded no observation at all.
    let h = snap.histogram("gate.lat_us").expect("registered");
    assert_eq!(h.count, 0);
    assert_eq!(h.sum, 0);
    assert!(h.buckets.is_empty());

    // Spans: the journal stayed empty.
    let timeline = aid_obs::drain_timeline();
    assert_eq!(timeline.named("gate.tick").count(), 0);
}
