//! Snapshot-consistency hammer: writers flood one histogram while a
//! reader snapshots — every snapshot must be internally consistent
//! (bucket sum == recorded count; counts monotone across snapshots).

use aid_obs::{MetricValue, MetricsRegistry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn hammered_histogram_snapshots_are_never_torn() {
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 50_000;

    let registry = Arc::new(MetricsRegistry::enabled());
    let histogram = registry.histogram("hammer.lat_us");
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let h = histogram.clone();
            std::thread::spawn(move || {
                // Values spread across many buckets so torn bucket reads
                // would actually show up as sum/count mismatches.
                for i in 0..PER_WRITER {
                    h.record((i ^ (w as u64) << 7) % 1_000_000);
                }
            })
        })
        .collect();

    let reader = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            let mut last_count = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = registry.snapshot();
                let h = snap.histogram("hammer.lat_us").expect("registered");
                let bucket_sum: u64 = h.buckets.iter().map(|&(_, n)| n).sum();
                assert_eq!(
                    bucket_sum, h.count,
                    "torn snapshot: buckets sum to {bucket_sum}, count says {}",
                    h.count
                );
                assert!(
                    h.count >= last_count,
                    "count went backwards: {last_count} -> {}",
                    h.count
                );
                last_count = h.count;
                snapshots += 1;
            }
            snapshots
        })
    };

    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().expect("reader");
    assert!(snapshots > 0, "reader never snapshotted");

    // Quiescent: the final snapshot accounts for every record exactly.
    let total = (WRITERS as u64) * PER_WRITER;
    let snap = registry.snapshot();
    let h = snap.histogram("hammer.lat_us").unwrap();
    assert_eq!(h.count, total);
    assert_eq!(h.buckets.iter().map(|&(_, n)| n).sum::<u64>(), total);
    assert!(h.max < 1_000_000);
    assert!(h.quantile(0.99) <= h.max.next_power_of_two());
}

#[test]
fn snapshot_freezes_counters_and_histograms_together() {
    let registry = MetricsRegistry::enabled();
    let c = registry.counter("pair.ops");
    let h = registry.histogram("pair.lat_us");
    for i in 0..1000 {
        c.inc();
        h.record(i);
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("pair.ops"), Some(1000));
    assert_eq!(snap.histogram("pair.lat_us").unwrap().count, 1000);
    // The snapshot is a frozen copy: later traffic doesn't move it.
    c.add(50);
    h.record(1);
    assert_eq!(snap.counter("pair.ops"), Some(1000));
    match snap.get("pair.lat_us") {
        Some(MetricValue::Histogram(frozen)) => assert_eq!(frozen.count, 1000),
        other => panic!("expected histogram, got {other:?}"),
    }
}
