//! The metrics registry: named counters, gauges, and log-scale latency
//! histograms with consistent snapshots.
//!
//! # Naming scheme
//!
//! Metric names are dotted paths, `tier.component.metric`, with the unit
//! as a suffix where one applies (`serve.frame_us`,
//! `engine.shard0.cache.lease_wait_us`, `store.refresh_us`). Sharded
//! components embed the shard index in the path segment (`shard0`,
//! `shard1`, …) so a snapshot is a flat, greppable namespace. The
//! Prometheus renderer maps any character outside `[a-zA-Z0-9_]` to `_`.
//!
//! # Histogram layout
//!
//! Histograms are fixed arrays of [`HISTOGRAM_BUCKETS`] = 64 power-of-two
//! buckets: value `v` lands in bucket `bit_length(v)` (bucket 0 holds
//! only 0; bucket `i ≥ 1` holds `[2^(i-1), 2^i - 1]`; bucket 63 is the
//! overflow tail). Quantiles are answered with the matched bucket's
//! inclusive upper bound, so a reported p99 is exact to within 2x —
//! enough to tell 100 µs from 10 ms, which is what latency telemetry is
//! for — while recording costs three `Relaxed` adds and one `Release`
//! add, no floats, no allocation.
//!
//! # Snapshot consistency
//!
//! Writers publish bucket → sum → max → count, with the count increment
//! a `Release` store; the reader loads the count (`Acquire`), copies the
//! buckets, and re-loads the count. A snapshot is accepted only when
//! both count reads and the copied buckets' sum all agree — otherwise a
//! record was in flight mid-copy and the copy retries. After a bounded
//! number of failed attempts under sustained contention the
//! snapshot derives its count *from the copied buckets*, so the
//! invariant "bucket sum == count" holds for every snapshot ever
//! returned, torn or not.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two buckets per histogram (covers all of `u64`).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Consistent-copy attempts before deriving the count from the buckets.
const SNAPSHOT_RETRIES: usize = 64;

/// A monotonically increasing named counter. Always live (counters back
/// the legacy stats structs), cheap to clone, lock-free to bump.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (starts at 0).
    pub fn detached() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    /// A detached cell — [`Counter::detached`].
    fn default() -> Counter {
        Counter::detached()
    }
}

/// A named value that can move in both directions (in-flight counts,
/// high-water marks). Always live.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry (starts at 0).
    pub fn detached() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to at least `v` (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Atomically transforms the value, CAS-loop style; returns the
    /// *previous* value on success (admission reservations use this to
    /// claim a slot against a cap without overshooting).
    pub fn fetch_update(&self, f: impl FnMut(u64) -> Option<u64>) -> Result<u64, u64> {
        self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, f)
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCell {
    enabled: bool,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
    count: AtomicU64,
}

impl HistogramCell {
    fn new(enabled: bool) -> HistogramCell {
        HistogramCell {
            enabled,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a recorded value: its bit length, clamped into the
/// top (overflow) bucket.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (what quantiles report).
pub(crate) fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        63 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A fixed-bucket log-scale latency histogram handle. Recording is
/// lock-free and allocation-free; a disabled registry turns `record`
/// into a single branch on a cached bool.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached(enabled: bool) -> Histogram {
        Histogram(Arc::new(HistogramCell::new(enabled)))
    }

    /// Whether this histogram records at all (the `AID_OBS` gate, cached
    /// at registration).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.enabled
    }

    /// Records one observation. The final count increment is the
    /// `Release` publication the snapshot reader synchronizes with.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.0.enabled {
            return;
        }
        let cell = &*self.0;
        cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
        cell.max.fetch_max(v, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Release);
    }

    /// Records a `Duration` in whole microseconds (the workspace's
    /// latency unit; sub-microsecond observations land in bucket 0).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Acquire)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let cell = &*self.0;
        let mut copy = [0u64; HISTOGRAM_BUCKETS];
        let mut consistent = false;
        for _ in 0..SNAPSHOT_RETRIES {
            let before = cell.count.load(Ordering::Acquire);
            for (slot, bucket) in copy.iter_mut().zip(cell.buckets.iter()) {
                *slot = bucket.load(Ordering::Relaxed);
            }
            let after = cell.count.load(Ordering::Acquire);
            let total: u64 = copy.iter().sum();
            if before == after && total == before {
                consistent = true;
                break;
            }
        }
        // Fallback under sustained write pressure: the copy is still a
        // set of individually atomic bucket reads; deriving the count
        // from it keeps the bucket-sum == count invariant unconditional.
        let count = if consistent {
            cell.count.load(Ordering::Acquire).min(copy.iter().sum())
        } else {
            copy.iter().sum()
        };
        let buckets = copy
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u8, n))
            .collect();
        HistogramSnapshot {
            count,
            sum: cell.sum.load(Ordering::Relaxed),
            max: cell.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A frozen histogram: sparse nonzero buckets plus count/sum/max.
/// Invariant: the bucket counts sum to `count`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations captured.
    pub count: u64,
    /// Sum of observed values (mean = sum / count).
    pub sum: u64,
    /// Largest observed value, exact.
    pub max: u64,
    /// `(bucket index, observations)` for every nonzero bucket,
    /// ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q ∈ [0, 1]`, reported as the inclusive
    /// upper bound of the bucket holding that rank (within 2x of the
    /// true order statistic). 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // The top bucket's true ceiling is the recorded max.
                return bucket_bound(i as usize).min(self.max.max(1));
            }
        }
        self.max
    }

    /// Arithmetic mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A snapshot entry's value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(u64),
    /// A histogram's frozen buckets.
    Histogram(HistogramSnapshot),
}

/// One named metric in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricEntry {
    /// The registered dotted name.
    pub name: String,
    /// The frozen value.
    pub value: MetricValue,
}

/// A consistent point-in-time copy of a registry, sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All registered metrics, ascending by name.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// A counter's value, if `name` is a registered counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// A gauge's value, if `name` is a registered gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// A histogram's frozen buckets, if `name` is a registered histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Dotted names are flattened (`.` → `_`); histograms expose
    /// cumulative `_bucket{le=...}` series plus `_count`/`_sum`/`_max`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            let name = sanitize(&entry.name);
            match &entry.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for &(i, n) in &h.buckets {
                        cumulative += n;
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                            bucket_bound(i as usize)
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n{name}_max {}\n",
                        h.count, h.sum, h.count, h.max
                    ));
                }
            }
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A registry of named metrics. One registry per server (or per
/// free-standing engine/store/watcher) — instruments registered under
/// the same name return the *same* underlying cell, so tiers that share
/// a registry aggregate naturally and re-registration is idempotent.
pub struct MetricsRegistry {
    enabled: bool,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.enabled)
            .field(
                "metrics",
                &self.metrics.lock().expect("registry lock").len(),
            )
            .finish()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::from_env()
    }
}

impl MetricsRegistry {
    /// A registry whose histogram/span gate follows the `AID_OBS`
    /// environment variable (`off`/`0`/`false` disable; default on).
    pub fn from_env() -> MetricsRegistry {
        MetricsRegistry::new(env_enabled())
    }

    /// A registry with histograms unconditionally on (tests, scrapes).
    pub fn enabled() -> MetricsRegistry {
        MetricsRegistry::new(true)
    }

    /// A registry with histograms unconditionally off: counters and
    /// gauges stay live (stats structs depend on them), `record` is a
    /// single branch.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry::new(false)
    }

    fn new(enabled: bool) -> MetricsRegistry {
        MetricsRegistry {
            enabled,
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether histograms registered here record.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or re-fetches) a counter. Panics if `name` is already
    /// registered as a different kind — names are a flat namespace and a
    /// kind collision is a programming error, not load-dependent state.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::detached()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers (or re-fetches) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::detached()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers (or re-fetches) a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::detached(self.enabled)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Freezes every registered metric. Histogram copies are consistent
    /// (bucket sum == count) even while writers are recording.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("registry lock");
        let entries = metrics
            .iter()
            .map(|(name, metric)| MetricEntry {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// The process-wide `AID_OBS` gate (histograms and spans; counters are
/// never gated). Read once.
pub(crate) fn env_enabled() -> bool {
    use std::sync::OnceLock;
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("AID_OBS").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every bucket's bound is inside the bucket that indexes it.
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn quantiles_come_back_within_one_bucket() {
        let h = Histogram::detached(true);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max, 1000);
        let p50 = snap.quantile(0.50);
        assert!((500..=1023).contains(&p50), "p50={p50}");
        let p99 = snap.quantile(0.99);
        assert!((990..=1023).contains(&p99), "p99={p99}");
        assert_eq!(snap.quantile(1.0), 1000);
        assert!((snap.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let registry = MetricsRegistry::enabled();
        let a = registry.counter("x.hits");
        let b = registry.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(registry.snapshot().counter("x.hits"), Some(3));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_collisions_panic() {
        let registry = MetricsRegistry::enabled();
        registry.counter("x");
        registry.histogram("x");
    }

    #[test]
    fn disabled_histograms_record_nothing_counters_stay_live() {
        let registry = MetricsRegistry::disabled();
        let h = registry.histogram("lat_us");
        let c = registry.counter("hits");
        for i in 0..100 {
            h.record(i);
            c.inc();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("lat_us").unwrap().count, 0);
        assert_eq!(snap.counter("hits"), Some(100));
    }

    #[test]
    fn gauge_fetch_update_reserves_against_a_cap() {
        let g = Gauge::detached();
        let cap = 3u64;
        let mut admitted = 0;
        for _ in 0..5 {
            if g.fetch_update(|v| (v < cap).then_some(v + 1)).is_ok() {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 3);
        assert_eq!(g.get(), 3);
        g.sub(1);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn prometheus_rendering_is_parseable_shaped() {
        let registry = MetricsRegistry::enabled();
        registry.counter("serve.frames_in").add(7);
        let h = registry.histogram("serve.frame_us");
        h.record(3);
        h.record(700);
        let text = registry.snapshot().render_prometheus();
        assert!(text.contains("# TYPE serve_frames_in counter"));
        assert!(text.contains("serve_frames_in 7"));
        assert!(text.contains("serve_frame_us_count 2"));
        assert!(text.contains("serve_frame_us_sum 703"));
        assert!(text.contains("le=\"+Inf\"} 2"));
    }

    #[test]
    fn snapshot_name_lookup_uses_sorted_order() {
        let registry = MetricsRegistry::enabled();
        for name in ["z.last", "a.first", "m.mid"] {
            registry.counter(name).inc();
        }
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
        assert_eq!(snap.counter("m.mid"), Some(1));
        assert_eq!(snap.counter("missing"), None);
    }
}
