//! Lightweight span tracing: RAII guards over a bounded per-thread ring
//! journal.
//!
//! A [`span!`](crate::span!) guard records `(name, start, duration)` on
//! drop into the calling thread's journal — a fixed-capacity ring buffer
//! registered once per thread, so the hot path is one `Instant::now()`
//! at entry and one uncontended mutex push at exit, with no allocation
//! after the journal's first use. [`drain_timeline`] collects and clears
//! every thread's journal into one time-ordered [`Timeline`]; spans a
//! ring overwrote (beyond [`JOURNAL_CAPACITY`] undrained per thread) are
//! counted, not silently lost.
//!
//! Span names are `&'static str` by design: interning is the compiler's
//! job, and the journal stays `Copy`-plain.
//!
//! The whole plane honors the same `AID_OBS` gate as histograms: when
//! off, `span!` returns an inert guard and records nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Spans retained per thread between drains; older spans are overwritten
/// (and counted as dropped) once a ring wraps.
pub const JOURNAL_CAPACITY: usize = 4096;

/// One completed span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The static span name (`tier.stage`, e.g. `"engine.execute"`).
    pub name: &'static str,
    /// Start time in nanoseconds since the journal epoch (first use of
    /// the span plane in this process).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// An opaque id distinguishing recording threads.
    pub thread: u64,
}

struct Ring {
    slots: Vec<SpanRecord>,
    /// Next write position; wraps at capacity.
    head: usize,
    /// True once the ring has wrapped at least once since the last drain.
    wrapped: bool,
}

struct ThreadJournal {
    ring: Mutex<Ring>,
    id: u64,
}

struct Plane {
    journals: Mutex<Vec<Arc<ThreadJournal>>>,
    epoch: Instant,
    next_thread: AtomicU64,
    dropped: AtomicU64,
}

fn plane() -> &'static Plane {
    static PLANE: OnceLock<Plane> = OnceLock::new();
    PLANE.get_or_init(|| Plane {
        journals: Mutex::new(Vec::new()),
        epoch: Instant::now(),
        next_thread: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
    })
}

thread_local! {
    static JOURNAL: Arc<ThreadJournal> = {
        let plane = plane();
        let journal = Arc::new(ThreadJournal {
            ring: Mutex::new(Ring {
                slots: Vec::with_capacity(JOURNAL_CAPACITY),
                head: 0,
                wrapped: false,
            }),
            id: plane.next_thread.fetch_add(1, Ordering::Relaxed),
        });
        plane.journals.lock().expect("span journal list").push(Arc::clone(&journal));
        journal
    };
}

/// Whether `span!` records (the `AID_OBS` gate, read once per process).
pub fn spans_enabled() -> bool {
    crate::registry::env_enabled()
}

/// An RAII span: records its name and wall time into the thread journal
/// when dropped. Construct through the [`span!`](crate::span!) macro.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Starts a span (inert when the plane is disabled).
    pub fn enter(name: &'static str) -> SpanGuard {
        SpanGuard {
            name,
            start: spans_enabled().then(Instant::now),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let plane = plane();
        let start_ns = start.saturating_duration_since(plane.epoch).as_nanos() as u64;
        JOURNAL.with(|journal| {
            let record = SpanRecord {
                name: self.name,
                start_ns,
                dur_ns,
                thread: journal.id,
            };
            let mut ring = journal.ring.lock().expect("span ring");
            if ring.slots.len() < JOURNAL_CAPACITY {
                ring.slots.push(record);
            } else {
                let head = ring.head;
                ring.slots[head] = record;
                ring.wrapped = true;
                plane.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.head = (ring.head + 1) % JOURNAL_CAPACITY;
        });
    }
}

/// Starts a [`SpanGuard`] measuring the enclosing scope:
/// `let _span = span!("engine.probe");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

/// Every thread's journal, drained and cleared, merged into start-time
/// order.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// All drained spans, ascending by `start_ns`.
    pub spans: Vec<SpanRecord>,
    /// Spans overwritten (ring wrap) since the previous drain, across
    /// all threads.
    pub dropped: u64,
}

impl Timeline {
    /// The drained spans carrying `name`, in start order.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> + 'a {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Total recorded duration of the spans carrying `name`.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.named(name).map(|s| s.dur_ns).sum()
    }

    /// A one-line-per-span rendering (start µs, duration µs, thread,
    /// name), for logs and debugging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&format!(
                "{:>12} +{:<10} t{:<3} {}\n",
                s.start_ns / 1_000,
                s.dur_ns / 1_000,
                s.thread,
                s.name
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("({} spans dropped by ring wrap)\n", self.dropped));
        }
        out
    }
}

/// Drains and clears every thread's span journal into one [`Timeline`].
/// Process-global: intended for one consumer at a time (a test, a
/// post-run dump); concurrent drains split the spans between them.
pub fn drain_timeline() -> Timeline {
    let plane = plane();
    let mut spans = Vec::new();
    let journals = plane.journals.lock().expect("span journal list");
    for journal in journals.iter() {
        let mut ring = journal.ring.lock().expect("span ring");
        if ring.wrapped {
            // Oldest-first: the slice after head is older than the slice
            // before it once the ring has wrapped.
            let head = ring.head;
            spans.extend_from_slice(&ring.slots[head..]);
            spans.extend_from_slice(&ring.slots[..head]);
        } else {
            spans.extend_from_slice(&ring.slots);
        }
        ring.slots.clear();
        ring.head = 0;
        ring.wrapped = false;
    }
    drop(journals);
    spans.sort_by_key(|s| s.start_ns);
    Timeline {
        spans,
        dropped: plane.dropped.swap(0, Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The span plane is process-global; these tests serialize on one
    // mutex so drains don't steal each other's spans.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_record_and_drain_in_time_order() {
        let _serial = serial();
        drain_timeline();
        {
            let _outer = crate::span!("test.outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            let _inner = crate::span!("test.inner");
        }
        let timeline = drain_timeline();
        if !spans_enabled() {
            assert!(timeline.spans.is_empty());
            return;
        }
        assert_eq!(timeline.named("test.outer").count(), 1);
        assert_eq!(timeline.named("test.inner").count(), 1);
        // Inner closed first but outer *started* first.
        let outer = timeline.named("test.outer").next().unwrap();
        let inner = timeline.named("test.inner").next().unwrap();
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert!(timeline.total_ns("test.outer") >= 1_000_000);
        assert!(timeline.render().contains("test.outer"));
    }

    #[test]
    fn journal_is_bounded_and_counts_drops() {
        let _serial = serial();
        drain_timeline();
        if !spans_enabled() {
            return;
        }
        for _ in 0..(JOURNAL_CAPACITY + 100) {
            let _span = crate::span!("test.flood");
        }
        let timeline = drain_timeline();
        let flood = timeline.named("test.flood").count();
        assert!(flood <= JOURNAL_CAPACITY, "ring exceeded capacity: {flood}");
        assert!(timeline.dropped >= 100, "dropped={}", timeline.dropped);
        // A drained journal starts empty again.
        assert_eq!(drain_timeline().named("test.flood").count(), 0);
    }

    #[test]
    fn cross_thread_spans_merge_with_thread_ids() {
        let _serial = serial();
        drain_timeline();
        if !spans_enabled() {
            return;
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _span = crate::span!("test.worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let timeline = drain_timeline();
        assert_eq!(timeline.named("test.worker").count(), 4);
        let mut threads: Vec<u64> = timeline.named("test.worker").map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4, "each worker thread gets its own id");
    }
}
