//! `aid_obs` — the unified telemetry plane.
//!
//! Every tier of the service — reactor, handler pool, sharded engine,
//! columnar store, watchers — used to report through its own ad-hoc
//! struct of counters. This crate replaces those with one substrate:
//!
//! 1. **A metrics registry** ([`MetricsRegistry`]) of named atomic
//!    counters, gauges, and fixed-bucket log-scale latency histograms.
//!    Registration is a cold-path operation under a lock; the handles it
//!    returns ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed
//!    and record with plain atomic stores — no locks, no allocation, no
//!    formatting on the hot path. [`MetricsRegistry::snapshot`] produces
//!    a *consistent* [`MetricsSnapshot`]: every histogram's bucket sum
//!    equals its recorded count (no torn reads), so p50/p90/p99/max are
//!    recoverable exactly from the frozen buckets.
//! 2. **Span tracing** ([`span!`], [`SpanGuard`]) — RAII guards that
//!    record `(name, start, duration)` into a bounded per-thread ring
//!    journal, drainable into a time-ordered [`Timeline`] so a discovery
//!    session's ingest → extract → schedule → execute → cache-fill
//!    stages can be read off one trace.
//! 3. **Exposition** — [`MetricsSnapshot::render_prometheus`] renders a
//!    snapshot in the Prometheus text format; `aid_serve` carries the
//!    same snapshot over the wire in its `Metrics`/`MetricsReply` frame
//!    pair so operators can scrape live servers.
//!
//! Histograms and spans honor the `AID_OBS` environment variable:
//! `AID_OBS=off` (or `0`/`false`) makes every `record` and `span!` a
//! no-op behind a single cached bool. Counters and gauges are *always*
//! live — they are the single source of truth behind the legacy stats
//! structs (`ServerStats`, `EngineStats`, `ColumnStats`, `WatchStats`),
//! which now read through registry handles rather than their own
//! atomics.
//!
//! ```
//! use aid_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::enabled();
//! let hits = registry.counter("engine.cache.hits");
//! let lat = registry.histogram("serve.frame_us");
//! hits.inc();
//! lat.record(250);
//! lat.record(90_000);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("engine.cache.hits"), Some(1));
//! let h = snap.histogram("serve.frame_us").unwrap();
//! assert_eq!(h.count, 2);
//! assert!(h.quantile(0.50) >= 250);
//! assert_eq!(h.max, 90_000);
//! ```

pub mod registry;
pub mod span;

pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricEntry, MetricValue, MetricsRegistry,
    MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use span::{drain_timeline, spans_enabled, SpanGuard, SpanRecord, Timeline, JOURNAL_CAPACITY};
