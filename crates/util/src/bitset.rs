//! A dense, fixed-universe bitset.
//!
//! Predicate universes in AID are small (tens to a few hundred predicates per
//! failure signature), so sets of predicates, reachability rows of the
//! AC-DAG's transitive closure, and per-run observation vectors are all
//! represented as dense `u64`-word bitsets. Operations are branch-light and
//! iteration order is always ascending index order, which keeps every
//! consumer deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense bitset over the universe `0..len`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DenseBitSet {
    len: usize,
    words: Vec<u64>,
}

const WORD_BITS: usize = 64;

impl DenseBitSet {
    /// Creates an empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        DenseBitSet {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates a set containing every element of the universe.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim();
        s
    }

    /// Creates a set from an iterator of element indices.
    pub fn from_indices(len: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(len);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Size of the universe (not the number of set bits).
    pub fn universe_len(&self) -> usize {
        self.len
    }

    /// Resizes the universe to `len`, keeping the membership of every
    /// surviving element. Growing adds absent elements; shrinking drops any
    /// element `>= len`. Append-only consumers (e.g. per-predicate
    /// occurrence bitmaps over an ever-growing trace store) grow their
    /// universes in place instead of reallocating fresh sets.
    pub fn resize(&mut self, len: usize) {
        self.len = len;
        self.words.resize(len.div_ceil(WORD_BITS), 0);
        self.trim();
    }

    /// Clears bits beyond `len` in the last word.
    fn trim(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Inserts element `i`. Returns whether the element was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of universe 0..{}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes element `i`. Returns whether the element was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of universe 0..{}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Tests membership of element `i`.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &DenseBitSet) {
        self.check(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &DenseBitSet) {
        self.check(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self -= other`).
    pub fn difference_with(&mut self, other: &DenseBitSet) {
        self.check(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `self ∪ other` as a new set.
    pub fn union(&self, other: &DenseBitSet) -> DenseBitSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns `self ∩ other` as a new set.
    pub fn intersection(&self, other: &DenseBitSet) -> DenseBitSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self − other` as a new set.
    pub fn difference(&self, other: &DenseBitSet) -> DenseBitSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Number of elements shared with `other`, without allocating.
    pub fn intersection_count(&self, other: &DenseBitSet) -> usize {
        self.check(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True if `self` and `other` share at least one element.
    pub fn intersects(&self, other: &DenseBitSet) -> bool {
        self.check(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &DenseBitSet) -> bool {
        self.check(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates set elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Collects the elements into a `Vec`, ascending.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    fn check(&self, other: &DenseBitSet) {
        assert_eq!(
            self.len, other.len,
            "bitset universe mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

impl fmt::Debug for DenseBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for DenseBitSet {
    /// Builds a set whose universe is just large enough for the max element.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        Self::from_indices(len, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DenseBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.to_vec(), vec![129]);
    }

    #[test]
    fn resize_preserves_surviving_members() {
        let mut s = DenseBitSet::from_indices(70, [0, 63, 64, 69]);
        s.resize(130);
        assert_eq!(s.to_vec(), vec![0, 63, 64, 69]);
        assert!(s.insert(129));
        s.resize(64);
        assert_eq!(s.to_vec(), vec![0, 63]);
        assert_eq!(s.universe_len(), 64);
        // Re-growing does not resurrect dropped elements.
        s.resize(130);
        assert_eq!(s.to_vec(), vec![0, 63]);
    }

    #[test]
    fn full_respects_universe() {
        let s = DenseBitSet::full(67);
        assert_eq!(s.count(), 67);
        assert_eq!(s.iter().last(), Some(66));
    }

    #[test]
    fn set_algebra_basics() {
        let a = DenseBitSet::from_indices(10, [1, 3, 5]);
        let b = DenseBitSet::from_indices(10, [3, 4]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 3, 4, 5]);
        assert_eq!(a.intersection(&b).to_vec(), vec![3]);
        assert_eq!(a.intersection_count(&b), 1);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 5]);
        assert!(a.intersects(&b));
        assert!(!a.is_subset(&b));
        assert!(DenseBitSet::new(10).is_subset(&a));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = DenseBitSet::from_indices(200, [199, 0, 64, 63, 65]);
        assert_eq!(s.to_vec(), vec![0, 63, 64, 65, 199]);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_range_panics() {
        DenseBitSet::new(4).insert(4);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in proptest::collection::btree_set(0usize..256, 0..40)) {
            let s = DenseBitSet::from_indices(256, v.iter().copied());
            prop_assert_eq!(s.to_vec(), v.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(s.count(), v.len());
        }

        #[test]
        fn prop_demorgan(
            a in proptest::collection::btree_set(0usize..128, 0..30),
            b in proptest::collection::btree_set(0usize..128, 0..30),
        ) {
            let sa = DenseBitSet::from_indices(128, a.iter().copied());
            let sb = DenseBitSet::from_indices(128, b.iter().copied());
            let full = DenseBitSet::full(128);
            // ¬(A ∪ B) == ¬A ∩ ¬B
            let left = full.difference(&sa.union(&sb));
            let right = full.difference(&sa).intersection(&full.difference(&sb));
            prop_assert_eq!(left, right);
        }

        #[test]
        fn prop_difference_disjoint(
            a in proptest::collection::btree_set(0usize..128, 0..30),
            b in proptest::collection::btree_set(0usize..128, 0..30),
        ) {
            let sa = DenseBitSet::from_indices(128, a.iter().copied());
            let sb = DenseBitSet::from_indices(128, b.iter().copied());
            let d = sa.difference(&sb);
            prop_assert!(!d.intersects(&sb) || d.intersection(&sb).is_empty());
            prop_assert!(d.is_subset(&sa));
        }
    }
}
