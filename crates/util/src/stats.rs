//! Small statistics helpers used by statistical debugging and the benchmark
//! harness (averages, min/max, percentile summaries over intervention
//! counts).

use serde::{Deserialize, Serialize};

/// Welford-style online accumulator for mean/min/max/variance.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// An exact summary over a stored sample: mean, min, max, and percentiles.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary { values: Vec::new() }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
    }

    /// Extends with many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        self.values.extend(xs);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Minimum (0 if empty).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum (0 if empty).
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Nearest-rank percentile, `p ∈ [0, 100]` (0 if empty).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary"));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        let sum = Summary::new();
        assert_eq!(sum.mean(), 0.0);
        assert_eq!(sum.percentile(50.0), 0.0);
    }

    #[test]
    fn summary_percentiles() {
        let mut s = Summary::new();
        s.extend((1..=100).map(f64::from));
        assert_eq!(s.count(), 100);
        assert!((s.mean() - 50.5).abs() < 1e-12);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        let med = s.percentile(50.0);
        assert!((49.0..=52.0).contains(&med));
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.min(), 1.0);
    }
}
