//! Interned-id arenas.
//!
//! Methods, objects, threads, and predicates are all referred to by dense
//! `u32` ids. An [`IdArena`] interns values (e.g. method names or structured
//! predicate keys) and hands out ids in insertion order, so two pipeline runs
//! that discover the same entities in the same order assign identical ids.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;

/// A typed dense identifier. `T` is a tag type that prevents mixing, say,
/// method ids with predicate ids.
#[derive(Serialize, Deserialize)]
pub struct Id<T> {
    raw: u32,
    #[serde(skip)]
    _tag: PhantomData<fn() -> T>,
}

impl<T> Id<T> {
    /// Wraps a raw index.
    pub fn from_raw(raw: u32) -> Self {
        Id {
            raw,
            _tag: PhantomData,
        }
    }

    /// The raw index.
    pub fn raw(self) -> u32 {
        self.raw
    }

    /// The raw index as a `usize`, for container indexing.
    pub fn index(self) -> usize {
        self.raw as usize
    }
}

impl<T> Clone for Id<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Id<T> {}
impl<T> PartialEq for Id<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for Id<T> {}
impl<T> PartialOrd for Id<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Id<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.raw.cmp(&other.raw)
    }
}
impl<T> std::hash::Hash for Id<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<T> fmt::Debug for Id<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.raw)
    }
}
impl<T> fmt::Display for Id<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.raw)
    }
}

/// An interning arena: maps values to dense ids and back.
///
/// Ids are assigned in first-insertion order. Lookup by value uses an ordered
/// map so the arena itself is deterministic to serialize and debug-print.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IdArena<T: Ord + Clone, Tag = T> {
    items: Vec<T>,
    index: BTreeMap<T, u32>,
    #[serde(skip)]
    _tag: PhantomData<fn() -> Tag>,
}

impl<T: Ord + Clone, Tag> Default for IdArena<T, Tag> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Clone, Tag> IdArena<T, Tag> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        IdArena {
            items: Vec::new(),
            index: BTreeMap::new(),
            _tag: PhantomData,
        }
    }

    /// Interns `value`, returning its id (existing or fresh).
    pub fn intern(&mut self, value: T) -> Id<Tag> {
        if let Some(&raw) = self.index.get(&value) {
            return Id::from_raw(raw);
        }
        let raw = u32::try_from(self.items.len()).expect("arena overflow");
        self.items.push(value.clone());
        self.index.insert(value, raw);
        Id::from_raw(raw)
    }

    /// Looks up the id of `value` without interning.
    pub fn get(&self, value: &T) -> Option<Id<Tag>> {
        self.index.get(value).map(|&raw| Id::from_raw(raw))
    }

    /// Resolves an id back to its value.
    pub fn resolve(&self, id: Id<Tag>) -> &T {
        &self.items[id.index()]
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id<Tag>, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (Id::from_raw(i as u32), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MethodTag;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut a: IdArena<String, MethodTag> = IdArena::new();
        let foo = a.intern("foo".into());
        let bar = a.intern("bar".into());
        let foo2 = a.intern("foo".into());
        assert_eq!(foo, foo2);
        assert_ne!(foo, bar);
        assert_eq!(foo.raw(), 0);
        assert_eq!(bar.raw(), 1);
        assert_eq!(a.resolve(bar), "bar");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn ids_are_ordered_by_insertion() {
        let mut a: IdArena<u64> = IdArena::new();
        let ids: Vec<_> = [9u64, 3, 7, 3, 9].iter().map(|&v| a.intern(v)).collect();
        assert_eq!(ids[0], ids[4]);
        assert_eq!(ids[1], ids[3]);
        let order: Vec<u64> = a.iter().map(|(_, &v)| v).collect();
        assert_eq!(order, vec![9, 3, 7]);
    }

    #[test]
    fn get_does_not_intern() {
        let mut a: IdArena<&'static str> = IdArena::new();
        assert!(a.get(&"x").is_none());
        a.intern("x");
        assert!(a.get(&"x").is_some());
        assert_eq!(a.len(), 1);
    }
}
