//! Foundation utilities shared by every AID crate.
//!
//! The algorithms in this workspace must be **deterministic**: given the same
//! seed, a pipeline run must produce the same AC-DAG, the same intervention
//! schedule, and the same causal path. To that end the containers here are
//! index-based (`DenseBitSet`, [`IdArena`]) or ordered, and no algorithmic
//! path ever iterates a `std::collections::HashMap`.

pub mod bitset;
pub mod hash;
pub mod idarena;
pub mod stats;

pub use bitset::DenseBitSet;
pub use hash::{fnv1a, Fnv1a};
pub use idarena::{Id, IdArena};
pub use stats::{OnlineStats, Summary};
