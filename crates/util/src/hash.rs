//! Deterministic hashing for fingerprints and cache keys.
//!
//! `std::hash::DefaultHasher` is seeded per process via `RandomState`, so
//! its output cannot serve as a persistent fingerprint. FNV-1a is small,
//! fast for short keys, and fixed forever — every fingerprint in the
//! workspace (program structure, predicate catalogs, ground truths,
//! intervention-cache keys) routes through this one implementation so the
//! domains can never silently diverge.

/// Incremental 64-bit FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Feeds one little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
        let mut a = Fnv1a::new();
        a.write_u64(7);
        assert_eq!(a.finish(), fnv1a(&7u64.to_le_bytes()));
    }
}
