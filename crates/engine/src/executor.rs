//! Pooled, memoizing executors that plug the engine into `aid_core`.
//!
//! [`PooledSimExecutor`] is the simulator-backed workhorse: one
//! intervention batch becomes `groups × runs_per_round` single-run probes,
//! cache hits are peeled off, and only the misses are fanned across the
//! worker pool. Records are stitched back **in (group, run) order**, so the
//! answer is byte-identical to the serial `aid_sim::SimExecutor` with the
//! same `first_seed` — determinism is a structural property, not a test
//! hope.
//!
//! [`CachedOracleExecutor`] wraps the exact-counterfactual oracle for
//! synthetic (Figure 8) workloads: rounds are single deterministic records,
//! so there is nothing to fan out, but memoization still collapses repeated
//! sessions over the same ground truth.

use crate::cache::{CacheKey, InterventionCache, Lease, Leased, PendingSlot};
use crate::pool::WorkerPool;
use aid_core::{BatchExecutor, ExecutionRecord, Executor, GroundTruth, OracleExecutor};
use aid_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use aid_predicates::{evaluate, PredicateCatalog, PredicateId};
use aid_sim::{plan_for, InterventionPlan, Simulator, VmError};
use aid_util::Fnv1a;
use std::sync::Arc;
use std::time::Instant;

/// Engine-wide execution counters (shared by every session's executor).
/// Backed by `aid_obs` handles so an engine built with a registry exposes
/// them as `{prefix}.*` metrics; a default-constructed set is detached.
#[derive(Debug)]
pub struct EngineCounters {
    /// Real executions performed (cache misses that ran).
    pub executions: Counter,
    /// Sessions completed.
    pub sessions: Counter,
    /// Sessions that ended in a typed error (a VM trap or a panic) instead
    /// of a result.
    pub failed: Counter,
    /// Non-blocking submissions refused (saturation or shutdown).
    pub rejected: Counter,
    /// Highest number of simultaneously pending sessions observed.
    pub peak_pending: Gauge,
    /// Wall time of each real execution (a simulator run or an oracle
    /// round); cache hits never record here.
    pub run_us: Histogram,
}

impl Default for EngineCounters {
    fn default() -> Self {
        EngineCounters {
            executions: Counter::detached(),
            sessions: Counter::detached(),
            failed: Counter::detached(),
            rejected: Counter::detached(),
            peak_pending: Gauge::detached(),
            run_us: Histogram::detached(false),
        }
    }
}

impl EngineCounters {
    /// Counters registered in `metrics` under `{prefix}.*` (the engine
    /// uses `engine.shard{i}` prefixes, one set per tier).
    pub fn with_metrics(metrics: &MetricsRegistry, prefix: &str) -> Self {
        EngineCounters {
            executions: metrics.counter(&format!("{prefix}.executions")),
            sessions: metrics.counter(&format!("{prefix}.sessions_completed")),
            failed: metrics.counter(&format!("{prefix}.sessions_failed")),
            rejected: metrics.counter(&format!("{prefix}.sessions_rejected")),
            peak_pending: metrics.gauge(&format!("{prefix}.peak_pending")),
            run_us: metrics.histogram(&format!("{prefix}.exec.run_us")),
        }
    }

    pub(crate) fn record_peak(&self, pending: u64) {
        self.peak_pending.record_max(pending);
    }
}

/// A [`BatchExecutor`] that runs simulator probes on the worker pool and
/// memoizes every (fingerprint, intervention set, seed) run.
///
/// Seed schedule: round `r`, run `i` uses seed
/// `first_seed + r * runs_per_round + i` — the same stream the serial
/// `SimExecutor` consumes, but computed positionally so that runs can
/// execute in any order on any worker without perturbing it.
pub struct PooledSimExecutor {
    sim: Arc<Simulator>,
    catalog: Arc<PredicateCatalog>,
    failure: PredicateId,
    runs_per_round: usize,
    first_seed: u64,
    rounds_issued: u64,
    fingerprint: u64,
    pool: Arc<WorkerPool>,
    cache: Arc<InterventionCache>,
    counters: Arc<EngineCounters>,
}

/// The (program, catalog, failure) fingerprint that keys simulator-backed
/// cache entries. It must cover everything a record depends on: the
/// program/config (run behavior), the catalog (raw predicate ids name
/// catalog entries, and `observed` is evaluated against it), and the
/// failure indicator. Two sessions over the same program with catalogs
/// from different observation phases must never share entries.
///
/// `aid_engine::job_fingerprint` routes jobs across engine shards with the
/// same hash, so a recipe's shard and its cache partition coincide by
/// construction.
pub fn sim_fingerprint(sim: &Simulator, catalog: &PredicateCatalog, failure: PredicateId) -> u64 {
    Fnv1a::new()
        .write_u64(sim.fingerprint())
        .write(format!("{catalog:?}").as_bytes())
        .write_u64(failure.raw() as u64)
        .finish()
}

impl PooledSimExecutor {
    /// Builds the executor; `first_seed` should be disjoint from the seeds
    /// used for observation runs (same rule as `SimExecutor::new`).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        sim: Arc<Simulator>,
        catalog: Arc<PredicateCatalog>,
        failure: PredicateId,
        runs_per_round: usize,
        first_seed: u64,
        pool: Arc<WorkerPool>,
        cache: Arc<InterventionCache>,
        counters: Arc<EngineCounters>,
    ) -> Self {
        assert!(runs_per_round >= 1);
        let fingerprint = sim_fingerprint(&sim, &catalog, failure);
        PooledSimExecutor {
            sim,
            catalog,
            failure,
            runs_per_round,
            first_seed,
            rounds_issued: 0,
            fingerprint,
            pool,
            cache,
            counters,
        }
    }

    /// Rounds issued so far.
    pub fn rounds_issued(&self) -> u64 {
        self.rounds_issued
    }

    /// The (program, catalog, failure) fingerprint keying this executor's
    /// cache entries.
    pub fn cache_fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

impl PooledSimExecutor {
    fn execute_one(&self, seed: u64, plan: &InterventionPlan) -> Result<ExecutionRecord, VmError> {
        let started = Instant::now();
        let trace = self.sim.try_run(seed, plan)?;
        self.counters.run_us.record_duration(started.elapsed());
        let obs = evaluate(&self.catalog, &trace);
        Ok(ExecutionRecord {
            failed: obs.holds(self.failure),
            observed: obs.observed,
        })
    }
}

impl BatchExecutor for PooledSimExecutor {
    fn intervene_batch(&mut self, groups: &[Vec<PredicateId>]) -> Vec<Vec<ExecutionRecord>> {
        let runs = self.runs_per_round;
        let mut results: Vec<Vec<Option<ExecutionRecord>>> =
            groups.iter().map(|_| vec![None; runs]).collect();
        // Phase 1 — lease every probe. Ready records land immediately;
        // leased misses become `owned` (we must execute them); keys another
        // session is executing right now become `waiting` (single-flight
        // coalescing: concurrent sessions over one program produce one
        // execution per run, not N).
        let mut owned: Vec<(usize, usize, Lease, u64, Arc<InterventionPlan>)> = Vec::new();
        let mut waiting: Vec<(usize, usize, Arc<PendingSlot>, u64, Arc<InterventionPlan>)> =
            Vec::new();
        for (gi, group) in groups.iter().enumerate() {
            let round = self.rounds_issued + gi as u64;
            // Lowered lazily: a fully-warm group (the common case on repeat
            // sessions) never pays for plan construction.
            let mut plan: Option<Arc<InterventionPlan>> = None;
            for (ri, slot) in results[gi].iter_mut().enumerate() {
                let seed = self.first_seed + round * runs as u64 + ri as u64;
                let key = CacheKey::new(self.fingerprint, group, seed);
                let lazy_plan = |plan: &mut Option<Arc<InterventionPlan>>| {
                    Arc::clone(plan.get_or_insert_with(|| Arc::new(plan_for(&self.catalog, group))))
                };
                match self.cache.lease(key) {
                    Leased::Ready(rec) => *slot = Some(rec),
                    Leased::Owner(lease) => {
                        let p = lazy_plan(&mut plan);
                        owned.push((gi, ri, lease, seed, p));
                    }
                    Leased::Waiter(pending) => {
                        let p = lazy_plan(&mut plan);
                        waiting.push((gi, ri, pending, seed, p));
                    }
                }
            }
        }
        // Phase 2 — execute everything we own on the pool and publish it.
        // Owners never wait before filling all their leases, so coalescing
        // cannot deadlock (no wait cycle can include an unfilled owner).
        // A probe that traps the VM (e.g. a return-value intervention on an
        // impure method) comes back as a *value* `Err`, not a panic: the
        // other probes' leases are still filled, and only then does this
        // session abort with the typed error. Trapped probes' leases drop
        // unfilled, so coalesced waiters fall back to executing inline and
        // observe the trap themselves.
        let mut trapped: Option<VmError> = None;
        if !owned.is_empty() {
            let jobs: Vec<Box<dyn FnOnce() -> Result<ExecutionRecord, VmError> + Send>> = owned
                .iter()
                .map(|&(_, _, _, seed, ref plan)| {
                    let sim = Arc::clone(&self.sim);
                    let catalog = Arc::clone(&self.catalog);
                    let plan = Arc::clone(plan);
                    let failure = self.failure;
                    let run_us = self.counters.run_us.clone();
                    Box::new(move || {
                        let started = Instant::now();
                        let trace = sim.try_run(seed, &plan)?;
                        run_us.record_duration(started.elapsed());
                        let obs = evaluate(&catalog, &trace);
                        Ok(ExecutionRecord {
                            failed: obs.holds(failure),
                            observed: obs.observed,
                        })
                    })
                        as Box<dyn FnOnce() -> Result<ExecutionRecord, VmError> + Send>
                })
                .collect();
            let records = self.pool.run_batch(jobs);
            for ((gi, ri, lease, _, _), rec) in owned.into_iter().zip(records) {
                match rec {
                    Ok(rec) => {
                        self.counters.executions.inc();
                        lease.fill(rec.clone());
                        results[gi][ri] = Some(rec);
                    }
                    Err(e) => {
                        drop(lease);
                        trapped.get_or_insert(e);
                    }
                }
            }
        }
        // Phase 3 — collect coalesced records. An abandoned slot (the
        // owner's job panicked or trapped) degrades to executing inline;
        // correctness never depends on another session's health.
        for (gi, ri, pending, seed, plan) in waiting {
            let waited = Instant::now();
            let published = pending.wait();
            self.cache.lease_wait_us().record_duration(waited.elapsed());
            match published
                .map(Ok)
                .unwrap_or_else(|| self.execute_one(seed, &plan))
            {
                Ok(rec) => results[gi][ri] = Some(rec),
                Err(e) => {
                    trapped.get_or_insert(e);
                }
            }
        }
        if let Some(e) = trapped {
            // Unwind with the typed error as payload; the engine's session
            // wrapper downcasts it back into a `SessionError::Trap`, so the
            // trap quarantines this session without poisoning the pool.
            std::panic::panic_any(e);
        }
        self.rounds_issued += groups.len() as u64;
        results
            .into_iter()
            .map(|group| {
                group
                    .into_iter()
                    .map(|r| r.expect("every probe is either a hit or an executed miss"))
                    .collect()
            })
            .collect()
    }
}

/// Fingerprint of a ground truth, for oracle-backed cache keys. FNV-1a over
/// the structure (n, parent forest, causal path).
pub fn truth_fingerprint(truth: &GroundTruth) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(truth.n as u64);
    for p in &truth.parent {
        h.write_u64(p.map_or(u64::MAX, |v| v as u64));
    }
    h.write_u64(truth.path.len() as u64);
    for &p in &truth.path {
        h.write_u64(p as u64);
    }
    h.finish()
}

/// A memoizing wrapper around the deterministic [`OracleExecutor`].
///
/// Only sound for the *exact* oracle: `aid_core::FlakyOracle` draws fresh
/// noise per call, so memoizing it would freeze the first draw — which is
/// why this type takes a [`GroundTruth`] and constructs the exact oracle
/// itself rather than accepting an arbitrary executor.
pub struct CachedOracleExecutor {
    oracle: OracleExecutor,
    fingerprint: u64,
    cache: Arc<InterventionCache>,
    counters: Arc<EngineCounters>,
}

impl CachedOracleExecutor {
    /// Wraps (and validates) a ground truth.
    pub fn new(
        truth: GroundTruth,
        cache: Arc<InterventionCache>,
        counters: Arc<EngineCounters>,
    ) -> Self {
        let fingerprint = truth_fingerprint(&truth);
        CachedOracleExecutor {
            oracle: OracleExecutor::new(truth),
            fingerprint,
            cache,
            counters,
        }
    }
}

impl Executor for CachedOracleExecutor {
    fn intervene(&mut self, predicates: &[PredicateId]) -> Vec<ExecutionRecord> {
        // One oracle round = one deterministic record; seed slot is 0.
        let key = CacheKey::new(self.fingerprint, predicates, 0);
        if let Some(rec) = self.cache.get(&key) {
            return vec![rec];
        }
        let started = Instant::now();
        let records = self.oracle.intervene(predicates);
        self.counters.run_us.record_duration(started.elapsed());
        self.counters.executions.inc();
        self.cache.insert(key, records[0].clone());
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_core::figure4_ground_truth;

    /// Same simulator, different catalogs (or failure ids) ⇒ different
    /// cache key spaces. Guards against serving one observation phase's
    /// records to a session extracted from another.
    #[test]
    fn cache_fingerprint_covers_catalog_and_failure() {
        use aid_predicates::{Predicate, PredicateKind};
        use aid_sim::ProgramBuilder;

        let mut b = ProgramBuilder::new("fp");
        let main = b.method("Main", |m| {
            m.compute(1);
        });
        b.thread("main", main, true);
        let sim = Arc::new(Simulator::new(b.build()));
        let pool = Arc::new(WorkerPool::new(1));
        let cache = Arc::new(InterventionCache::new(1));
        let counters = Arc::new(EngineCounters::default());

        let failure_pred = |name: &str| Predicate {
            kind: PredicateKind::Failure {
                signature: aid_trace::FailureSignature {
                    kind: name.into(),
                    method: aid_trace::MethodId::from_raw(0),
                },
            },
            safe: true,
            action: None,
        };
        let mut catalog_a = PredicateCatalog::new();
        let fail_a = catalog_a.insert(failure_pred("Boom"));
        let mut catalog_b = PredicateCatalog::new();
        let fail_b = catalog_b.insert(failure_pred("Crash"));

        let mk = |catalog: &PredicateCatalog, failure: PredicateId| {
            PooledSimExecutor::new(
                Arc::clone(&sim),
                Arc::new(catalog.clone()),
                failure,
                1,
                0,
                Arc::clone(&pool),
                Arc::clone(&cache),
                Arc::clone(&counters),
            )
            .cache_fingerprint()
        };
        let a = mk(&catalog_a, fail_a);
        assert_eq!(a, mk(&catalog_a, fail_a), "stable");
        assert_ne!(a, mk(&catalog_b, fail_b), "catalog is part of the key");
    }

    #[test]
    fn truth_fingerprint_distinguishes_structures() {
        let a = figure4_ground_truth();
        let mut b = figure4_ground_truth();
        assert_eq!(truth_fingerprint(&a), truth_fingerprint(&b));
        b.parent[3] = Some(4);
        assert_ne!(truth_fingerprint(&a), truth_fingerprint(&b));
    }

    #[test]
    fn cached_oracle_answers_repeats_from_memory() {
        let cache = Arc::new(InterventionCache::new(2));
        let counters = Arc::new(EngineCounters::default());
        let mut exec = CachedOracleExecutor::new(
            figure4_ground_truth(),
            Arc::clone(&cache),
            Arc::clone(&counters),
        );
        let p0 = [PredicateId::from_raw(0)];
        let first = exec.intervene(&p0);
        let again = exec.intervene(&p0);
        assert_eq!(first, again);
        assert_eq!(counters.executions.get(), 1, "second round cached");
        assert_eq!(cache.stats().hits, 1);
    }
}
