//! `aid_engine` — a concurrent multi-session discovery engine with a
//! memoizing intervention cache.
//!
//! AID's cost model is dominated by re-executions (§5 of the paper exists
//! to minimize intervention *rounds*). This crate attacks the remaining
//! axes the library alone leaves on the table:
//!
//! * **Within a round** — a round is `runs_per_round` independent
//!   re-executions; [`PooledSimExecutor`] fans them (and, via
//!   [`aid_core::BatchExecutor`], the runs of whole multi-round batches)
//!   across a fixed [`WorkerPool`] of OS threads, joining records by
//!   submission index so results never depend on completion order.
//! * **Across rounds and sessions** — every execution here is a pure
//!   function of (program fingerprint, intervention set, seed), so the
//!   sharded [`InterventionCache`] memoizes single runs; repeated probes
//!   (TAGT's contamination re-tests) and repeated sessions over the same
//!   program never re-execute.
//! * **Across programs** — an [`Engine`] schedules many named
//!   [`DiscoveryJob`]s over one pool with bounded backpressure and reports
//!   an [`EngineStats`] telemetry snapshot (executions run, cache hits,
//!   wall-batch counts, per-worker utilization).
//!
//! Determinism is structural, not incidental: a session's
//! [`DiscoveryResult`](aid_core::DiscoveryResult) is identical whatever the
//! worker count — `tests/determinism.rs` pins this for all six case
//! studies, and the seed schedule of [`PooledSimExecutor`] matches the
//! serial `aid_sim::SimExecutor` exactly.
//!
//! ```
//! use aid_engine::{DiscoveryJob, Engine};
//! use aid_core::{figure4_ground_truth, Strategy};
//! use aid_causal::AcDag;
//! use std::sync::Arc;
//!
//! // Queue the Figure 4 walkthrough twice: the second session is answered
//! // entirely from the intervention cache. (The AC-DAG mirrors the ground
//! // truth's topological structure, as §4 guarantees.)
//! let truth = figure4_ground_truth();
//! let mut edges: Vec<_> = truth
//!     .parent
//!     .iter()
//!     .enumerate()
//!     .filter_map(|(q, p)| p.map(|p| (truth.candidates()[p], truth.candidates()[q])))
//!     .collect();
//! edges.extend(truth.candidates().iter().map(|&c| (c, truth.failure())));
//! let dag = Arc::new(AcDag::from_edges(&truth.candidates(), truth.failure(), &edges));
//! let engine = Engine::with_workers(2);
//! let results = engine.run_all(vec![
//!     DiscoveryJob::oracle("first", Arc::clone(&dag), truth.clone(), Strategy::Aid, 7),
//!     DiscoveryJob::oracle("second", dag, truth, Strategy::Aid, 7),
//! ]);
//! assert_eq!(results[0].result, results[1].result);
//! let stats = engine.stats();
//! assert!(stats.cache_hits > 0, "the repeat session hit the cache");
//! ```

pub mod cache;
pub mod executor;
pub mod pool;
pub mod session;
pub mod workload;

pub use cache::{CacheKey, CacheStats, InterventionCache, Lease, Leased, PendingSlot};
pub use executor::{
    sim_fingerprint, truth_fingerprint, CachedOracleExecutor, EngineCounters, PooledSimExecutor,
};
pub use pool::WorkerPool;
pub use session::{
    job_fingerprint, jump_hash, DiscoveryJob, Engine, EngineConfig, EngineHandle, EngineStats,
    JobSource, Saturated, Session, SessionError, SessionErrorKind, SessionPoll, SessionResult,
    ShardedEngine,
};

/// The engine shares these across OS threads; pin the auto-traits at
/// compile time so a regression (e.g. an `Rc` slipping into the program
/// model) fails the build here, with context, rather than deep inside a
/// spawn call.
#[allow(dead_code)]
fn assert_shared_types_are_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<aid_sim::Simulator>();
    check::<aid_sim::Program>();
    check::<aid_sim::InterventionPlan>();
    check::<aid_predicates::PredicateCatalog>();
    check::<aid_causal::AcDag>();
    check::<aid_core::GroundTruth>();
    check::<InterventionCache>();
    check::<WorkerPool>();
    check::<EngineHandle>();
}
