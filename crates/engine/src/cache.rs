//! The sharded, memoizing intervention cache.
//!
//! Every execution in this workspace is a pure function of
//! `(program fingerprint, intervention set, seed)` — the simulator is
//! seed-deterministic and the oracle is exactly counterfactual. The cache
//! exploits that: repeated probes of the same group (common under TAGT's
//! contamination re-tests) and repeated sessions over the same program
//! (common in CI-style triage sweeps) are answered from memory and **never
//! re-execute**.
//!
//! Keys are canonical: the intervention set is sorted and deduplicated, so
//! two groups naming the same predicates in different orders share an
//! entry. Shards are selected by an FNV hash of the full key, letting many
//! pool workers probe concurrently without contending on one lock.
//!
//! Correctness caveat, enforced by construction at the call sites: only
//! *deterministic* executors may be memoized. A noisy executor (e.g.
//! `aid_core::FlakyOracle`) draws fresh randomness per call, and caching it
//! would freeze the noise of the first draw.

use aid_core::ExecutionRecord;
use aid_obs::{Counter, Histogram, MetricsRegistry};
use aid_predicates::PredicateId;
use aid_util::Fnv1a;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Memoization key: one *run* of one intervention sequence.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Program (or ground-truth) fingerprint.
    pub fingerprint: u64,
    /// Raw predicate ids of the intervention group, **in group order**.
    ///
    /// The order is deliberately part of the key: plan lowering is
    /// order-sensitive (`aid_sim` assigns injected-lock identity by
    /// intervention index), so the same predicate *set* issued in a
    /// different order may execute differently. Collapsing orderings would
    /// let one session be served a record the other ordering produced —
    /// caching only exact sequences keeps the memo a pure function of what
    /// actually runs. Repeated sessions still hit 100%: discovery is
    /// deterministic, so identical jobs issue identical sequences.
    interventions: Vec<u32>,
    /// Scheduler seed of the run (0 for single-record oracle rounds).
    pub seed: u64,
}

impl CacheKey {
    /// Builds the key for intervening on `predicates` (order preserved).
    pub fn new(fingerprint: u64, predicates: &[PredicateId], seed: u64) -> Self {
        CacheKey {
            fingerprint,
            interventions: predicates.iter().map(|p| p.raw()).collect(),
            seed,
        }
    }

    /// FNV-1a over the key's bytes; deterministic across processes (unlike
    /// `DefaultHasher`'s per-process `RandomState`), so shard routing — and
    /// therefore lock-contention behavior — is reproducible.
    fn route(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.fingerprint)
            .write_u64(self.seed)
            .write_u64(self.interventions.len() as u64);
        for &p in &self.interventions {
            h.write_u64(p as u64);
        }
        h.finish()
    }
}

/// Aggregate cache telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that missed (and presumably led to a real execution).
    pub misses: u64,
    /// Lookups coalesced onto another session's in-flight execution.
    pub coalesced: u64,
    /// Shard flushes forced by the capacity bound.
    pub evictions: u64,
    /// Records currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A stored record, or a placeholder for one a session is computing.
#[derive(Clone)]
enum Slot {
    Ready(ExecutionRecord),
    Pending(Arc<PendingSlot>),
}

/// Rendezvous for sessions waiting on an in-flight execution.
#[derive(Debug)]
pub struct PendingSlot {
    state: Mutex<PendingState>,
    done: Condvar,
}

#[derive(Debug)]
enum PendingState {
    Computing,
    Done(ExecutionRecord),
    /// The owner unwound without filling (its job panicked); waiters must
    /// compute the record themselves.
    Abandoned,
}

impl PendingSlot {
    /// Blocks until the owner fills (Some) or abandons (None) the slot.
    pub fn wait(&self) -> Option<ExecutionRecord> {
        let mut state = self.state.lock().unwrap();
        loop {
            match &*state {
                PendingState::Computing => state = self.done.wait(state).unwrap(),
                PendingState::Done(rec) => return Some(rec.clone()),
                PendingState::Abandoned => return None,
            }
        }
    }
}

/// Exclusive right (and obligation) to execute one leased key. Filling
/// publishes the record to waiters and the cache; dropping unfilled (owner
/// panicked) wakes waiters with `Abandoned` so nobody blocks forever.
pub struct Lease {
    cache: Arc<InterventionCache>,
    key: CacheKey,
    slot: Arc<PendingSlot>,
    filled: bool,
}

impl Lease {
    /// Publishes the computed record.
    pub fn fill(mut self, record: ExecutionRecord) {
        self.filled = true;
        {
            let mut state = self.slot.state.lock().unwrap();
            *state = PendingState::Done(record.clone());
        }
        self.slot.done.notify_all();
        self.cache.insert(self.key.clone(), record);
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if self.filled {
            return;
        }
        {
            let mut state = self.slot.state.lock().unwrap();
            *state = PendingState::Abandoned;
        }
        self.slot.done.notify_all();
        // Drop the placeholder so a later session can lease the key anew.
        let mut shard = self.cache.shard(&self.key).lock().unwrap();
        if matches!(shard.get(&self.key), Some(Slot::Pending(_))) {
            shard.remove(&self.key);
        }
    }
}

/// Outcome of [`InterventionCache::lease`].
pub enum Leased {
    /// The record is cached; use it.
    Ready(ExecutionRecord),
    /// Nobody is computing this key: the caller now owns it and **must**
    /// execute and [`Lease::fill`] it.
    Owner(Lease),
    /// Another session is executing this key right now; `wait()` after
    /// finishing your own executions (never before — the lease→execute→wait
    /// phasing is what makes coalescing deadlock-free).
    Waiter(Arc<PendingSlot>),
}

/// A sharded map from [`CacheKey`] to the run's [`ExecutionRecord`], with
/// single-flight coalescing: concurrent sessions that miss on the same key
/// produce one execution, not N.
pub struct InterventionCache {
    shards: Vec<Mutex<HashMap<CacheKey, Slot>>>,
    /// Per-shard record bound (`None` = unbounded).
    shard_capacity: Option<usize>,
    hits: Counter,
    misses: Counter,
    coalesced: Counter,
    evictions: Counter,
    /// Time coalesced waiters spend blocked on another session's in-flight
    /// execution; recorded by the executor around [`PendingSlot::wait`].
    lease_wait_us: Histogram,
}

impl InterventionCache {
    /// Creates an **unbounded** cache with `shards` lock shards (rounded up
    /// to a power of two, minimum 1). Long-lived engines should prefer
    /// [`InterventionCache::with_capacity`].
    pub fn new(shards: usize) -> Self {
        Self::build(shards, None, None)
    }

    /// Creates a cache bounded to roughly `max_entries` records. Eviction
    /// is segmented: when a shard reaches its share of the bound, the
    /// shard's *completed* records are flushed (counted in
    /// [`CacheStats::evictions`]); in-flight placeholders survive, so
    /// single-flight owners and their waiters are never disturbed. Crude
    /// but O(1) amortized and sufficient to keep a service-shaped engine's
    /// memory flat — correctness never depends on residency, only speed.
    pub fn with_capacity(shards: usize, max_entries: usize) -> Self {
        Self::build(shards, Some(max_entries.max(1)), None)
    }

    /// A bounded cache whose telemetry registers in `metrics` under
    /// `{prefix}.cache.*` (e.g. `engine.shard0.cache.hits`, …,
    /// `engine.shard0.cache.lease_wait_us`).
    pub fn with_metrics(
        shards: usize,
        max_entries: usize,
        metrics: &MetricsRegistry,
        prefix: &str,
    ) -> Self {
        Self::build(shards, Some(max_entries.max(1)), Some((metrics, prefix)))
    }

    fn build(
        shards: usize,
        max_entries: Option<usize>,
        metrics: Option<(&MetricsRegistry, &str)>,
    ) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let counter = |metric: &str| match metrics {
            Some((m, prefix)) => m.counter(&format!("{prefix}.cache.{metric}")),
            None => Counter::detached(),
        };
        InterventionCache {
            shard_capacity: max_entries.map(|m| m.div_ceil(shards)),
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: counter("hits"),
            misses: counter("misses"),
            coalesced: counter("coalesced"),
            evictions: counter("evictions"),
            lease_wait_us: match metrics {
                Some((m, prefix)) => m.histogram(&format!("{prefix}.cache.lease_wait_us")),
                None => Histogram::detached(false),
            },
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, Slot>> {
        &self.shards[(key.route() as usize) & (self.shards.len() - 1)]
    }

    /// Looks `key` up, counting the hit or miss. In-flight keys read as
    /// misses here; use [`InterventionCache::lease`] to coalesce instead.
    pub fn get(&self, key: &CacheKey) -> Option<ExecutionRecord> {
        let found = match self.shard(key).lock().unwrap().get(key) {
            Some(Slot::Ready(rec)) => Some(rec.clone()),
            _ => None,
        };
        match found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        found
    }

    /// Single-flight lookup: a cached record is returned, an uncomputed key
    /// makes the caller the owning executor, and an in-flight key hands
    /// back the slot to wait on (see [`Leased`] for the phasing contract).
    pub fn lease(self: &Arc<Self>, key: CacheKey) -> Leased {
        let mut shard = self.shard(&key).lock().unwrap();
        match shard.get(&key) {
            Some(Slot::Ready(rec)) => {
                let rec = rec.clone();
                drop(shard);
                self.hits.inc();
                Leased::Ready(rec)
            }
            Some(Slot::Pending(slot)) => {
                let slot = Arc::clone(slot);
                drop(shard);
                self.coalesced.inc();
                Leased::Waiter(slot)
            }
            None => {
                // The placeholder counts toward the shard's share of the
                // capacity bound just like a record does: without this, an
                // engine that populates exclusively through leases (the
                // production executor path) would never evict at all.
                self.flush_if_full(&mut shard, &key);
                let slot = Arc::new(PendingSlot {
                    state: Mutex::new(PendingState::Computing),
                    done: Condvar::new(),
                });
                shard.insert(key.clone(), Slot::Pending(Arc::clone(&slot)));
                drop(shard);
                self.misses.inc();
                Leased::Owner(Lease {
                    cache: Arc::clone(self),
                    key,
                    slot,
                    filled: false,
                })
            }
        }
    }

    /// Stores the record of one executed run, flushing the target shard's
    /// completed records first if it is at its capacity share.
    pub fn insert(&self, key: CacheKey, record: ExecutionRecord) {
        let mut shard = self.shard(&key).lock().unwrap();
        self.flush_if_full(&mut shard, &key);
        shard.insert(key, Slot::Ready(record));
    }

    /// Flushes a full shard's `Ready` records (a segmented eviction) so
    /// `key` can be admitted. `Pending` placeholders are retained: evicting
    /// one would spawn a duplicate owner for the same in-flight key, and
    /// the placeholder's memory is bounded by pool concurrency anyway.
    fn flush_if_full(&self, shard: &mut HashMap<CacheKey, Slot>, key: &CacheKey) {
        if let Some(cap) = self.shard_capacity {
            if shard.len() >= cap && !shard.contains_key(key) {
                let before = shard.len();
                shard.retain(|_, slot| matches!(slot, Slot::Pending(_)));
                // A shard full of in-flight placeholders removes nothing;
                // that is not an eviction, so don't report one.
                if shard.len() < before {
                    self.evictions.inc();
                }
            }
        }
    }

    /// Number of stored records (including in-flight placeholders).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The histogram timing coalesced waiters (recorded by the executor
    /// around [`PendingSlot::wait`]; inert unless the cache was built
    /// through [`InterventionCache::with_metrics`] on an enabled registry).
    pub fn lease_wait_us(&self) -> &Histogram {
        &self.lease_wait_us
    }

    /// Snapshot of hit/miss/eviction/entry counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            coalesced: self.coalesced.get(),
            evictions: self.evictions.get(),
            entries: self.len(),
        }
    }

    /// Drops every cached record (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_util::DenseBitSet;

    fn rec(failed: bool) -> ExecutionRecord {
        ExecutionRecord {
            failed,
            observed: DenseBitSet::new(8),
        }
    }

    fn p(i: u32) -> PredicateId {
        PredicateId::from_raw(i)
    }

    #[test]
    fn keys_preserve_intervention_order() {
        let a = CacheKey::new(7, &[p(1), p(3)], 5);
        assert_eq!(a, CacheKey::new(7, &[p(1), p(3)], 5), "pure function");
        // Plan lowering is order-sensitive (injected-lock identity is the
        // intervention index), so orderings must NOT share an entry.
        assert_ne!(a, CacheKey::new(7, &[p(3), p(1)], 5), "order matters");
        assert_ne!(a, CacheKey::new(7, &[p(1), p(3)], 6), "seed matters");
        assert_ne!(a, CacheKey::new(8, &[p(1), p(3)], 5), "program matters");
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = InterventionCache::new(4);
        let key = CacheKey::new(1, &[p(0)], 0);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), rec(true));
        assert_eq!(cache.get(&key).unwrap(), rec(true));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn leases_coalesce_concurrent_misses() {
        let cache = Arc::new(InterventionCache::new(2));
        let key = CacheKey::new(3, &[p(1)], 7);
        let lease = match cache.lease(key.clone()) {
            Leased::Owner(l) => l,
            _ => panic!("first lease must own"),
        };
        let pending = match cache.lease(key.clone()) {
            Leased::Waiter(s) => s,
            _ => panic!("second lease must wait"),
        };
        let waiter = std::thread::spawn(move || pending.wait());
        lease.fill(rec(true));
        assert_eq!(waiter.join().unwrap(), Some(rec(true)));
        assert!(matches!(cache.lease(key), Leased::Ready(_)));
        assert_eq!(cache.stats().coalesced, 1);
    }

    #[test]
    fn abandoned_lease_releases_waiters_and_the_key() {
        let cache = Arc::new(InterventionCache::new(2));
        let key = CacheKey::new(4, &[p(2)], 9);
        let lease = match cache.lease(key.clone()) {
            Leased::Owner(l) => l,
            _ => panic!("first lease must own"),
        };
        let pending = match cache.lease(key.clone()) {
            Leased::Waiter(s) => s,
            _ => panic!("second lease must wait"),
        };
        drop(lease); // owner "panicked"
        assert_eq!(pending.wait(), None, "waiters are released, not stuck");
        assert!(
            matches!(cache.lease(key), Leased::Owner(_)),
            "the key is leasable again"
        );
    }

    #[test]
    fn capacity_bound_keeps_the_cache_flat() {
        let cache = InterventionCache::with_capacity(2, 64);
        for seed in 0..10_000u64 {
            cache.insert(CacheKey::new(1, &[p(0)], seed), rec(false));
        }
        let stats = cache.stats();
        assert!(
            stats.entries <= 64 + 2,
            "entries {} must stay near the bound",
            stats.entries
        );
        assert!(stats.evictions > 0, "flushes must have happened");
        // A re-inserted record is still retrievable (eviction is a speed
        // concern, never a correctness one).
        let key = CacheKey::new(1, &[p(0)], 9_999);
        assert_eq!(cache.get(&key).unwrap(), rec(false));
    }

    #[test]
    fn sharding_distributes_and_preserves_entries() {
        let cache = InterventionCache::new(8);
        assert_eq!(cache.shard_count(), 8);
        for seed in 0..200u64 {
            cache.insert(CacheKey::new(42, &[p(1), p(2)], seed), rec(seed % 2 == 0));
        }
        assert_eq!(cache.len(), 200);
        for seed in 0..200u64 {
            let got = cache.get(&CacheKey::new(42, &[p(1), p(2)], seed)).unwrap();
            assert_eq!(got.failed, seed % 2 == 0);
        }
        // 200 distinct keys over 8 shards: every shard must see traffic.
        let populated = cache
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().is_empty())
            .count();
        assert!(populated >= 6, "FNV routing should spread: {populated}/8");
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(InterventionCache::new(0).shard_count(), 1);
        assert_eq!(InterventionCache::new(5).shard_count(), 8);
    }
}
