//! A fixed pool of OS worker threads over crossbeam channels.
//!
//! The pool serves two layers at once: whole discovery *sessions* are
//! spawned onto it ([`WorkerPool::spawn`]), and each session's executor
//! fans the runs of an intervention batch back onto the same pool
//! ([`WorkerPool::run_batch`]). Nesting a blocking fan-out inside a worker
//! would deadlock a fixed pool, so `run_batch` uses *help-first joining*:
//! while its own results are pending, the joining thread drains queued
//! *probe* tasks from the shared injector and executes them inline
//! (stolen whole-session tasks are requeued for a real worker). Progress
//! is therefore guaranteed even on a single-worker pool, and results are
//! joined **by submission index** — the output order never depends on which
//! worker finished first.

use aid_obs::{Counter, MetricsRegistry};
use crossbeam::channel::{self, Receiver, RecvError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What a queued closure is, for the help-first policy: joiners inline
/// `Probe`s (single-run units of the batch they or a sibling fanned out)
/// but never `Session`s — stealing a whole discovery session while joining
/// a millisecond round would inflate that round's latency by an unrelated
/// session's entire runtime.
enum Task {
    /// One fanned-out batch unit (cheap, bounded).
    Probe(Box<dyn FnOnce() + Send + 'static>),
    /// A whole fire-and-forget job (potentially long).
    Session(Box<dyn FnOnce() + Send + 'static>),
}

impl Task {
    fn run(self) {
        let f = match self {
            Task::Probe(f) | Task::Session(f) => f,
        };
        // A panicking task must not kill its executor thread (the pool
        // would silently shrink and unrelated sessions would starve). The
        // panic still surfaces: the task's result sender drops without
        // sending, so its joiner observes a disconnected batch (run_batch
        // panics) or a dead session ticket (Session::wait panics).
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    }
}

struct PoolShared {
    /// The shared injector queue; workers and helping joiners pull from it.
    tasks: Receiver<Task>,
    /// Tasks executed per worker thread (utilization telemetry).
    per_worker: Vec<Counter>,
    /// Tasks executed inline by joining threads while they helped.
    inline: Counter,
    /// Wall-batches submitted through [`WorkerPool::run_batch`].
    batches: Counter,
}

/// A fixed-size worker pool with deterministic batch joins.
pub struct WorkerPool {
    tx: Option<Sender<Task>>,
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` OS threads (clamped to at least one) with
    /// detached (unregistered) utilization counters.
    pub fn new(workers: usize) -> Self {
        Self::build(workers, None)
    }

    /// Spawns `workers` OS threads whose utilization counters register in
    /// `metrics` under `engine.pool.*` (one `worker{w}.tasks` counter per
    /// thread, plus `inline_tasks` and `batches`).
    pub fn with_metrics(workers: usize, metrics: &MetricsRegistry) -> Self {
        Self::build(workers, Some(metrics))
    }

    fn build(workers: usize, metrics: Option<&MetricsRegistry>) -> Self {
        let workers = workers.max(1);
        let counter = |name: String| match metrics {
            Some(m) => m.counter(&name),
            None => Counter::detached(),
        };
        let (tx, rx) = channel::unbounded::<Task>();
        let shared = Arc::new(PoolShared {
            tasks: rx,
            per_worker: (0..workers)
                .map(|w| counter(format!("engine.pool.worker{w}.tasks")))
                .collect(),
            inline: counter("engine.pool.inline_tasks".into()),
            batches: counter("engine.pool.batches".into()),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aid-engine-worker-{w}"))
                    .spawn(move || {
                        while let Ok(task) = shared.tasks.recv() {
                            shared.per_worker[w].inc();
                            task.run();
                        }
                    })
                    .expect("failed to spawn engine worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            shared,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.per_worker.len()
    }

    /// Enqueues a fire-and-forget task (used for whole sessions). Only
    /// worker threads run these; help-first joiners skip them.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        self.sender()
            .send(Task::Session(Box::new(task)))
            .expect("pool is alive");
    }

    /// Fans `jobs` across the pool and joins the results **in submission
    /// order**, regardless of completion order. The calling thread helps
    /// execute queued tasks while it waits, so calling this from inside a
    /// pool task (nested fan-out) cannot deadlock.
    ///
    /// Panics if any job of the batch panicked (its result sender drops
    /// without sending, disconnecting the join) — a batch is
    /// all-or-nothing.
    pub fn run_batch<R: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
    ) -> Vec<R> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        self.shared.batches.inc();
        let (rtx, rrx) = channel::unbounded::<(usize, R)>();
        let tx = self.sender();
        for (i, job) in jobs.into_iter().enumerate() {
            let rtx = rtx.clone();
            tx.send(Task::Probe(Box::new(move || {
                // The joiner below keeps its receiver for the whole join,
                // so send errors are never fatal here.
                let _ = rtx.send((i, job()));
            })))
            .expect("pool is alive");
        }
        drop(rtx);

        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut joined = 0usize;
        let died = || panic!("a batch job panicked before returning its result");
        'join: while joined < n {
            // Drain every ready result without blocking.
            loop {
                match rrx.try_recv() {
                    Ok((i, r)) => {
                        debug_assert!(out[i].is_none(), "duplicate batch result");
                        out[i] = Some(r);
                        joined += 1;
                        if joined == n {
                            break 'join;
                        }
                    }
                    Err(TryRecvError::Disconnected) => died(),
                    Err(TryRecvError::Empty) => break,
                }
            }
            // Help-first: run one queued *probe* inline instead of blocking
            // a (possibly the only) execution thread. Stolen Sessions go
            // back to the queue for a real worker — inlining one would
            // stall this join for an unrelated session's entire runtime.
            // Inspection is bounded by the current queue length so a queue
            // holding only sessions cannot spin this loop.
            let mut inspect = self.shared.tasks.len();
            let mut helped = false;
            while inspect > 0 {
                match self.shared.tasks.try_recv() {
                    Ok(probe @ Task::Probe(_)) => {
                        self.shared.inline.inc();
                        probe.run();
                        helped = true;
                        break;
                    }
                    Ok(session @ Task::Session(_)) => {
                        inspect -= 1;
                        let _ = self.sender().send(session);
                    }
                    Err(_) => break,
                }
            }
            if helped {
                continue;
            }
            // No probe to help with: every outstanding job of this batch is
            // being executed by some live thread (probes never block, and
            // coalescing owners fill before they wait), so blocking for the
            // next result cannot deadlock. A panicked executor surfaces as
            // disconnection, not a hang.
            match rrx.recv() {
                Ok((i, r)) => {
                    debug_assert!(out[i].is_none(), "duplicate batch result");
                    out[i] = Some(r);
                    joined += 1;
                }
                Err(RecvError) => died(),
            }
        }
        out.into_iter()
            .map(|r| r.expect("joined == n implies every slot is filled"))
            .collect()
    }

    /// Tasks executed by each worker thread so far.
    pub fn tasks_per_worker(&self) -> Vec<u64> {
        self.shared.per_worker.iter().map(Counter::get).collect()
    }

    /// Tasks executed inline by joining threads (help-first steals).
    pub fn inline_tasks(&self) -> u64 {
        self.shared.inline.get()
    }

    /// Wall-batches fanned through [`WorkerPool::run_batch`] so far.
    pub fn batches(&self) -> u64 {
        self.shared.batches.get()
    }

    fn sender(&self) -> &Sender<Task> {
        self.tx.as_ref().expect("sender lives until drop")
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector lets every worker's recv() error out once the
        // queue is drained; join so no task outlives the pool.
        self.tx.take();
        let me = std::thread::current().id();
        for h in self.handles.drain(..) {
            if h.thread().id() == me {
                // The last pool reference was dropped *by a worker task*
                // (e.g. an engine handle released mid-session): a thread
                // cannot join itself, so detach — it exits on its own the
                // moment its current task (this drop) returns, because the
                // injector is already closed.
                continue;
            }
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn batch_results_join_in_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| {
                Box::new(move || {
                    // Earlier jobs sleep longer: completion order is roughly
                    // reversed, the join order must not be.
                    std::thread::sleep(Duration::from_micros(((32 - i) * 50) as u64));
                    i * i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = pool.run_batch(jobs);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_batches_make_progress_on_one_worker() {
        let pool = Arc::new(WorkerPool::new(1));
        let inner_pool = Arc::clone(&pool);
        let out = pool.run_batch(vec![Box::new(move || {
            // Fan out again from inside the single worker: only the
            // help-first join lets this terminate.
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
                .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> u32 + Send>)
                .collect();
            inner_pool.run_batch(jobs).iter().sum::<u32>()
        }) as Box<dyn FnOnce() -> u32 + Send>]);
        assert_eq!(out, vec![36]);
        assert!(pool.inline_tasks() > 0, "the worker must have helped");
    }

    #[test]
    fn utilization_accounts_for_every_task() {
        let pool = WorkerPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..50)
            .map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send>)
            .collect();
        pool.run_batch(jobs);
        let counted: u64 = pool.tasks_per_worker().iter().sum::<u64>() + pool.inline_tasks();
        assert_eq!(counted, 50);
        assert_eq!(pool.batches(), 1);
        assert_eq!(pool.workers(), 3);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = WorkerPool::new(2);
        let out: Vec<u8> = pool.run_batch(Vec::new());
        assert!(out.is_empty());
        assert_eq!(pool.batches(), 0);
    }
}
