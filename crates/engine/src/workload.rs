//! The Figure-8 synthetic workload, compiled to runnable programs.
//!
//! Shared by the engine's acceptance tests (`tests/determinism.rs`) and the
//! `aid_bench` throughput bench so both measure exactly the same workload:
//! ground truths from `aid_synth::generate`, filtered to structures the
//! register-allocating compiler accepts, lowered to real simulator programs
//! and pushed through the observation phase.

use aid_core::{analyze, AidAnalysis};
use aid_predicates::ExtractionConfig;
use aid_sim::Simulator;
use aid_synth::{
    compile_to_program_with_cost, generate, symptom_lineages, SynthParams, MAX_SYMPTOM_LINEAGES,
};
use std::sync::Arc;

/// One prepared Figure-8 application: analyzed and ready to discover over.
pub struct Figure8App {
    /// The runnable program wrapped in a simulator.
    pub sim: Arc<Simulator>,
    /// Observation-phase output (catalog, failure indicator, AC-DAG).
    pub analysis: AidAnalysis,
}

/// Generates `count` compilable Figure-8 apps with per-node compute cost
/// `node_cost` (see `compile_to_program_with_cost`: a realistic per-call
/// cost keeps cache-hit economics honest). Deterministic: the generator
/// walks seeds from 0 and keeps the first `count` structures that fit the
/// compiler's register budget.
pub fn compiled_figure8_apps(count: usize, node_cost: u64) -> Vec<Figure8App> {
    let params = SynthParams {
        max_threads: 6,
        max_predicates: 18,
        ..SynthParams::default()
    };
    let mut apps = Vec::new();
    let mut seed = 0u64;
    while apps.len() < count {
        let app = generate(&params, seed);
        seed += 1;
        if symptom_lineages(&app.truth) > MAX_SYMPTOM_LINEAGES || app.truth.n < 6 {
            continue;
        }
        let compiled = compile_to_program_with_cost(&app.truth, node_cost);
        let sim = Simulator::new(compiled.program.clone());
        let set = sim.collect_balanced(30, 30, 8_000);
        let mut cfg = ExtractionConfig::default();
        for m in compiled.program.pure_methods() {
            cfg.pure_methods.insert(m);
        }
        let analysis = analyze(&set, &cfg);
        apps.push(Figure8App {
            sim: Arc::new(sim),
            analysis,
        });
    }
    apps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_discoverable() {
        let a = compiled_figure8_apps(2, 4);
        let b = compiled_figure8_apps(2, 4);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sim.fingerprint(), y.sim.fingerprint());
            assert!(x.analysis.dag.candidates().len() >= 6);
        }
    }
}
