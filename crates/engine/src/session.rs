//! The engine: named discovery sessions scheduled over one worker pool.
//!
//! An [`Engine`] owns the pool, the shared intervention cache, and the
//! telemetry counters. Cloneable [`EngineHandle`]s queue named
//! [`DiscoveryJob`]s; each submission returns a [`Session`] ticket whose
//! [`Session::wait`] yields the per-session [`DiscoveryResult`].
//! Submission applies
//! backpressure: when `max_pending` sessions are already queued or running,
//! `submit` blocks the producer until capacity frees up — the engine never
//! buffers unboundedly.
//!
//! Determinism: a session's result is a pure function of its
//! [`DiscoveryJob`] (executors are seed-deterministic, and batch joins are
//! ordered by submission index), so results are identical across worker
//! counts and scheduling orders. The multi-worker vs single-worker tests in
//! `tests/determinism.rs` pin this for all six case studies.

use crate::cache::InterventionCache;
use crate::executor::{CachedOracleExecutor, EngineCounters, PooledSimExecutor};
use crate::pool::WorkerPool;
use aid_causal::AcDag;
use aid_core::{discover_with_options, DiscoverOptions, DiscoveryResult, GroundTruth, Strategy};
use aid_predicates::{PredicateCatalog, PredicateId};
use aid_sim::Simulator;
use crossbeam::channel::{self, Receiver};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Condvar, Mutex};

/// Engine sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Lock shards of the intervention cache (rounded to a power of two).
    pub cache_shards: usize,
    /// Record bound of the intervention cache (segmented eviction above
    /// it), so a long-lived engine's memory stays flat.
    pub cache_capacity: usize,
    /// Backpressure bound: maximum sessions queued-or-running before
    /// [`EngineHandle::submit`] blocks the producer.
    pub max_pending: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            cache_shards: 16,
            // ~1M single-run records; a record is a bitset over the catalog
            // plus a flag, so this keeps steady-state memory modest while
            // comfortably covering many concurrent programs.
            cache_capacity: 1 << 20,
            max_pending: 8,
        }
    }
}

/// Where a session's executions come from.
pub enum JobSource {
    /// Simulator-backed discovery (the production pipeline): probes fan
    /// across the pool and memoize per (program, intervention set, seed).
    Sim {
        /// The program under test plus machine configuration.
        simulator: Arc<Simulator>,
        /// Predicate catalog from the observation phase.
        catalog: Arc<PredicateCatalog>,
        /// The grouped failure indicator.
        failure: PredicateId,
        /// Runs per intervention round (footnote 1 of the paper).
        runs_per_round: usize,
        /// First intervention seed (disjoint from observation seeds).
        first_seed: u64,
    },
    /// Exact-counterfactual oracle (synthetic / Figure 8 workloads).
    Oracle {
        /// The known causal structure.
        truth: GroundTruth,
    },
}

/// One named discovery session: program + strategy + options.
pub struct DiscoveryJob {
    /// Session name (returned on the matching [`SessionResult`]).
    pub name: String,
    /// The AC-DAG to discover over.
    pub dag: Arc<AcDag>,
    /// Discovery strategy.
    pub strategy: Strategy,
    /// Tie-breaking seed for the discovery algorithms.
    pub seed: u64,
    /// Extra discovery tuning.
    pub options: DiscoverOptions,
    /// Execution substrate.
    pub source: JobSource,
}

impl DiscoveryJob {
    /// A simulator-backed job with default options.
    #[allow(clippy::too_many_arguments)]
    pub fn sim(
        name: impl Into<String>,
        dag: Arc<AcDag>,
        simulator: Arc<Simulator>,
        catalog: Arc<PredicateCatalog>,
        failure: PredicateId,
        runs_per_round: usize,
        first_seed: u64,
        strategy: Strategy,
        seed: u64,
    ) -> Self {
        DiscoveryJob {
            name: name.into(),
            dag,
            strategy,
            seed,
            options: DiscoverOptions::default(),
            source: JobSource::Sim {
                simulator,
                catalog,
                failure,
                runs_per_round,
                first_seed,
            },
        }
    }

    /// An oracle-backed job with default options.
    pub fn oracle(
        name: impl Into<String>,
        dag: Arc<AcDag>,
        truth: GroundTruth,
        strategy: Strategy,
        seed: u64,
    ) -> Self {
        DiscoveryJob {
            name: name.into(),
            dag,
            strategy,
            seed,
            options: DiscoverOptions::default(),
            source: JobSource::Oracle { truth },
        }
    }
}

/// A finished session.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionResult {
    /// The job's name.
    pub name: String,
    /// The discovery outcome.
    pub result: DiscoveryResult,
}

/// Ticket for a queued session.
pub struct Session {
    name: String,
    rx: Receiver<SessionResult>,
}

impl Session {
    /// The job's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks until the session finishes and returns its result.
    pub fn wait(self) -> SessionResult {
        self.rx
            .recv()
            .expect("engine dropped a session without a result")
    }
}

/// Aggregate engine telemetry.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Real executions performed (cache misses that ran).
    pub executions: u64,
    /// Cache lookups answered from memory.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Shard flushes forced by the cache capacity bound.
    pub cache_evictions: u64,
    /// Records stored in the cache.
    pub cache_entries: usize,
    /// Wall-batches fanned across the pool.
    pub wall_batches: u64,
    /// Sessions completed.
    pub sessions_completed: u64,
    /// Tasks executed per worker thread (utilization).
    pub tasks_per_worker: Vec<u64>,
    /// Tasks executed inline by joining threads (help-first steals).
    pub inline_tasks: u64,
    /// Highest simultaneously-pending session count observed.
    pub peak_pending: u64,
}

impl EngineStats {
    /// Cache hit fraction in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

struct EngineShared {
    pool: Arc<WorkerPool>,
    cache: Arc<InterventionCache>,
    counters: Arc<EngineCounters>,
    pending: Mutex<usize>,
    capacity: Condvar,
    max_pending: usize,
}

/// The multi-session discovery engine.
pub struct Engine {
    shared: Arc<EngineShared>,
}

impl Engine {
    /// Builds an engine from the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            shared: Arc::new(EngineShared {
                pool: Arc::new(WorkerPool::new(config.workers)),
                cache: Arc::new(InterventionCache::with_capacity(
                    config.cache_shards,
                    config.cache_capacity,
                )),
                counters: Arc::new(EngineCounters::default()),
                pending: Mutex::new(0),
                capacity: Condvar::new(),
                max_pending: config.max_pending.max(1),
            }),
        }
    }

    /// Convenience: an engine with `workers` threads and default sizing.
    pub fn with_workers(workers: usize) -> Self {
        Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        })
    }

    /// A cloneable handle for submitting jobs (e.g. from other threads).
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Queues a named discovery job (see [`EngineHandle::submit`]).
    pub fn submit(&self, job: DiscoveryJob) -> Session {
        self.handle().submit(job)
    }

    /// Submits every job and waits for all of them, preserving input order.
    pub fn run_all(&self, jobs: Vec<DiscoveryJob>) -> Vec<SessionResult> {
        self.handle().run_all(jobs)
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> EngineStats {
        self.handle().stats()
    }

    /// The engine's worker pool, for co-located fan-out work (e.g. an
    /// `aid_store` ingesting trace batches on the same threads its
    /// discovery sessions run on, instead of spawning a second pool).
    pub fn pool(&self) -> Arc<WorkerPool> {
        Arc::clone(&self.shared.pool)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Drain before tearing down: every queued session still runs to
        // completion (tickets held by callers keep receiving results), so
        // dropping the engine never silently abandons work.
        let mut pending = self.shared.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.shared.capacity.wait(pending).unwrap();
        }
    }
}

/// A cloneable submission handle onto an [`Engine`].
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<EngineShared>,
}

impl EngineHandle {
    /// Queues a named discovery job, blocking while `max_pending` sessions
    /// are already in flight (backpressure), and returns the session
    /// ticket.
    pub fn submit(&self, job: DiscoveryJob) -> Session {
        let shared = &self.shared;
        {
            let mut pending = shared.pending.lock().unwrap();
            while *pending >= shared.max_pending {
                pending = shared.capacity.wait(pending).unwrap();
            }
            *pending += 1;
            shared.counters.record_peak(*pending as u64);
        }
        let (tx, rx) = channel::unbounded();
        let name = job.name.clone();
        let task_shared = Arc::clone(shared);
        shared.pool.spawn(move || {
            // Decrement `pending` even if the job panics (e.g. a malformed
            // DAG with a non-interventable predicate): a leaked count would
            // wedge backpressure and hang Engine::drop forever.
            struct PendingGuard(Arc<EngineShared>);
            impl Drop for PendingGuard {
                fn drop(&mut self) {
                    let mut pending = self.0.pending.lock().unwrap();
                    *pending -= 1;
                    drop(pending);
                    // notify_all, not notify_one: backpressured submitters
                    // and a draining Engine::drop wait on the same condvar,
                    // and waking only one of them can strand the other.
                    self.0.capacity.notify_all();
                }
            }
            let _guard = PendingGuard(Arc::clone(&task_shared));
            let result = execute(job, &task_shared);
            // Count completion *before* publishing the result, so a caller
            // that reads stats right after wait() observes the session.
            task_shared.counters.sessions.fetch_add(1, Relaxed);
            // The submitter may have dropped the ticket; that is not an
            // engine error.
            let _ = tx.send(result);
        });
        Session { name, rx }
    }

    /// Submits every job and waits for all of them, preserving input order.
    pub fn run_all(&self, jobs: Vec<DiscoveryJob>) -> Vec<SessionResult> {
        // Submit incrementally (each submit may block on backpressure) and
        // only then start waiting: workers drain the queue independently of
        // this thread, so no deadlock is possible.
        let sessions: Vec<Session> = jobs.into_iter().map(|j| self.submit(j)).collect();
        sessions.into_iter().map(Session::wait).collect()
    }

    /// The engine's worker pool (see [`Engine::pool`]).
    pub fn pool(&self) -> Arc<WorkerPool> {
        Arc::clone(&self.shared.pool)
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> EngineStats {
        let shared = &self.shared;
        let cache = shared.cache.stats();
        EngineStats {
            executions: shared.counters.executions.load(Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_entries: cache.entries,
            wall_batches: shared.pool.batches(),
            sessions_completed: shared.counters.sessions.load(Relaxed),
            tasks_per_worker: shared.pool.tasks_per_worker(),
            inline_tasks: shared.pool.inline_tasks(),
            peak_pending: shared.counters.peak_pending.load(Relaxed),
        }
    }
}

/// Runs one job to completion on the current (worker) thread; intervention
/// batches fan back onto the pool from here.
fn execute(job: DiscoveryJob, shared: &EngineShared) -> SessionResult {
    let result = match job.source {
        JobSource::Sim {
            simulator,
            catalog,
            failure,
            runs_per_round,
            first_seed,
        } => {
            let mut exec = PooledSimExecutor::new(
                simulator,
                catalog,
                failure,
                runs_per_round,
                first_seed,
                Arc::clone(&shared.pool),
                Arc::clone(&shared.cache),
                Arc::clone(&shared.counters),
            );
            discover_with_options(&job.dag, &mut exec, job.strategy, job.seed, job.options)
        }
        JobSource::Oracle { truth } => {
            let mut exec = CachedOracleExecutor::new(
                truth,
                Arc::clone(&shared.cache),
                Arc::clone(&shared.counters),
            );
            discover_with_options(&job.dag, &mut exec, job.strategy, job.seed, job.options)
        }
    };
    SessionResult {
        name: job.name,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_core::figure4_ground_truth;

    /// The Figure 4(a) AC-DAG (same Hasse edges as `aid_core`'s discovery
    /// tests — the flat "everything points at F" DAG is only sound for
    /// TAGT, which ignores structure).
    fn figure4_dag(truth: &GroundTruth) -> AcDag {
        let p = |i: u32| aid_predicates::PredicateId::from_raw(i);
        let edges = vec![
            (p(0), p(1)),
            (p(1), p(2)),
            (p(2), p(3)),
            (p(3), p(4)),
            (p(4), p(5)),
            (p(2), p(6)),
            (p(6), p(7)),
            (p(7), p(8)),
            (p(6), p(10)),
            (p(5), p(9)),
            (p(10), p(9)),
            (p(9), p(11)),
            (p(5), p(11)),
            (p(8), p(11)),
        ];
        AcDag::from_edges(&truth.candidates(), truth.failure(), &edges)
    }

    fn oracle_job(name: &str, seed: u64) -> DiscoveryJob {
        let truth = figure4_ground_truth();
        let dag = Arc::new(figure4_dag(&truth));
        DiscoveryJob::oracle(name, dag, truth, Strategy::Aid, seed)
    }

    #[test]
    fn sessions_come_back_named_and_correct() {
        let engine = Engine::with_workers(2);
        let results = engine.run_all(vec![oracle_job("a", 0), oracle_job("b", 1)]);
        assert_eq!(results[0].name, "a");
        assert_eq!(results[1].name, "b");
        for r in &results {
            let causal: Vec<u32> = r.result.causal.iter().map(|p| p.raw()).collect();
            assert_eq!(causal, vec![0, 1, 10]);
        }
        let stats = engine.stats();
        assert_eq!(stats.sessions_completed, 2);
        assert!(stats.executions > 0);
    }

    #[test]
    fn backpressure_bounds_pending_sessions() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            cache_shards: 2,
            max_pending: 2,
            ..EngineConfig::default()
        });
        let handle = engine.handle();
        let sessions: Vec<Session> = (0..12).map(|i| handle.submit(oracle_job("x", i))).collect();
        for s in sessions {
            s.wait();
        }
        let stats = engine.stats();
        assert_eq!(stats.sessions_completed, 12);
        assert!(
            stats.peak_pending <= 2,
            "backpressure must cap pending at 2, saw {}",
            stats.peak_pending
        );
    }

    /// A job that panics mid-discovery (non-interventable predicate → the
    /// executor's `plan_for` panics) must not wedge the engine: pending
    /// drains, later sessions run, and drop doesn't hang.
    #[test]
    fn panicking_job_does_not_wedge_the_engine() {
        use aid_predicates::{Predicate, PredicateCatalog, PredicateKind};
        use aid_sim::ProgramBuilder;

        let mut b = ProgramBuilder::new("bad");
        let main = b.method("Main", |m| {
            m.compute(1);
        });
        b.thread("main", main, true);
        let mut catalog = PredicateCatalog::new();
        let bad = catalog.insert(Predicate {
            kind: PredicateKind::Failure {
                signature: aid_trace::FailureSignature {
                    kind: "Boom".into(),
                    method: aid_trace::MethodId::from_raw(0),
                },
            },
            safe: true,
            action: None, // ⇒ plan_for panics the moment it is intervened on
        });
        let mut fail_catalog = catalog.clone();
        let failure = fail_catalog.insert(Predicate {
            kind: PredicateKind::Failure {
                signature: aid_trace::FailureSignature {
                    kind: "F".into(),
                    method: aid_trace::MethodId::from_raw(0),
                },
            },
            safe: true,
            action: None,
        });
        let dag = Arc::new(AcDag::from_edges(&[bad], failure, &[(bad, failure)]));

        let engine = Engine::new(EngineConfig {
            workers: 1,
            cache_shards: 2,
            max_pending: 2,
            ..EngineConfig::default()
        });
        let doomed = engine.submit(DiscoveryJob::sim(
            "doomed",
            dag,
            Arc::new(Simulator::new(b.build())),
            Arc::new(fail_catalog),
            failure,
            1,
            0,
            Strategy::Aid,
            0,
        ));
        // The doomed session dies without a result…
        assert!(std::panic::catch_unwind(move || doomed.wait()).is_err());
        // …but the engine keeps serving, and dropping it doesn't hang.
        let ok = engine.submit(oracle_job("survivor", 1)).wait();
        assert_eq!(ok.name, "survivor");
        let stats = engine.stats();
        assert_eq!(
            stats.sessions_completed, 1,
            "the panicked job is not counted"
        );
    }

    #[test]
    fn dropping_the_engine_drains_outstanding_sessions() {
        let kept;
        {
            let engine = Engine::with_workers(2);
            kept = engine.submit(oracle_job("kept", 5));
            // A fire-and-forget session: ticket dropped immediately.
            drop(engine.submit(oracle_job("forgotten", 6)));
            // Engine dropped here; both sessions must still complete.
        }
        let result = kept.wait();
        assert_eq!(result.name, "kept");
        let causal: Vec<u32> = result.result.causal.iter().map(|p| p.raw()).collect();
        assert_eq!(causal, vec![0, 1, 10]);
    }

    #[test]
    fn identical_sessions_share_the_cache() {
        let engine = Engine::with_workers(2);
        engine.run_all(vec![oracle_job("first", 3)]);
        let before = engine.stats();
        engine.run_all(vec![oracle_job("second", 3)]);
        let after = engine.stats();
        assert_eq!(
            after.executions, before.executions,
            "identical session must be fully memoized"
        );
        assert!(after.cache_hits > before.cache_hits);
    }
}
