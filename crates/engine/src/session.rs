//! The engine: named discovery sessions scheduled over one worker pool.
//!
//! An [`Engine`] owns the pool, the shared intervention cache, and the
//! telemetry counters. Cloneable [`EngineHandle`]s queue named
//! [`DiscoveryJob`]s; each submission returns a [`Session`] ticket whose
//! [`Session::wait`] yields the per-session [`DiscoveryResult`].
//! Submission applies
//! backpressure: when `max_pending` sessions are already queued or running,
//! `submit` blocks the producer until capacity frees up — the engine never
//! buffers unboundedly.
//!
//! Determinism: a session's result is a pure function of its
//! [`DiscoveryJob`] (executors are seed-deterministic, and batch joins are
//! ordered by submission index), so results are identical across worker
//! counts and scheduling orders. The multi-worker vs single-worker tests in
//! `tests/determinism.rs` pin this for all six case studies.

use crate::cache::InterventionCache;
use crate::executor::{
    sim_fingerprint, truth_fingerprint, CachedOracleExecutor, EngineCounters, PooledSimExecutor,
};
use crate::pool::WorkerPool;
use aid_causal::AcDag;
use aid_core::{discover_with_options, DiscoverOptions, DiscoveryResult, GroundTruth, Strategy};
use aid_obs::MetricsRegistry;
use aid_predicates::{PredicateCatalog, PredicateId};
use aid_sim::{Simulator, VmError};
use crossbeam::channel::{self, Receiver, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};

/// Engine sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Lock shards of the intervention cache (rounded to a power of two).
    pub cache_shards: usize,
    /// Record bound of the intervention cache (segmented eviction above
    /// it), so a long-lived engine's memory stays flat.
    pub cache_capacity: usize,
    /// Backpressure bound: maximum sessions queued-or-running before
    /// [`EngineHandle::submit`] blocks the producer.
    pub max_pending: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            cache_shards: 16,
            // ~1M single-run records; a record is a bitset over the catalog
            // plus a flag, so this keeps steady-state memory modest while
            // comfortably covering many concurrent programs.
            cache_capacity: 1 << 20,
            max_pending: 8,
        }
    }
}

/// Where a session's executions come from.
pub enum JobSource {
    /// Simulator-backed discovery (the production pipeline): probes fan
    /// across the pool and memoize per (program, intervention set, seed).
    Sim {
        /// The program under test plus machine configuration.
        simulator: Arc<Simulator>,
        /// Predicate catalog from the observation phase.
        catalog: Arc<PredicateCatalog>,
        /// The grouped failure indicator.
        failure: PredicateId,
        /// Runs per intervention round (footnote 1 of the paper).
        runs_per_round: usize,
        /// First intervention seed (disjoint from observation seeds).
        first_seed: u64,
    },
    /// Exact-counterfactual oracle (synthetic / Figure 8 workloads).
    Oracle {
        /// The known causal structure.
        truth: GroundTruth,
    },
}

/// One named discovery session: program + strategy + options.
pub struct DiscoveryJob {
    /// Session name (returned on the matching [`SessionResult`]).
    pub name: String,
    /// The AC-DAG to discover over.
    pub dag: Arc<AcDag>,
    /// Discovery strategy.
    pub strategy: Strategy,
    /// Tie-breaking seed for the discovery algorithms.
    pub seed: u64,
    /// Extra discovery tuning.
    pub options: DiscoverOptions,
    /// Execution substrate.
    pub source: JobSource,
}

impl DiscoveryJob {
    /// A simulator-backed job with default options.
    #[allow(clippy::too_many_arguments)]
    pub fn sim(
        name: impl Into<String>,
        dag: Arc<AcDag>,
        simulator: Arc<Simulator>,
        catalog: Arc<PredicateCatalog>,
        failure: PredicateId,
        runs_per_round: usize,
        first_seed: u64,
        strategy: Strategy,
        seed: u64,
    ) -> Self {
        DiscoveryJob {
            name: name.into(),
            dag,
            strategy,
            seed,
            options: DiscoverOptions::default(),
            source: JobSource::Sim {
                simulator,
                catalog,
                failure,
                runs_per_round,
                first_seed,
            },
        }
    }

    /// An oracle-backed job with default options.
    pub fn oracle(
        name: impl Into<String>,
        dag: Arc<AcDag>,
        truth: GroundTruth,
        strategy: Strategy,
        seed: u64,
    ) -> Self {
        DiscoveryJob {
            name: name.into(),
            dag,
            strategy,
            seed,
            options: DiscoverOptions::default(),
            source: JobSource::Oracle { truth },
        }
    }
}

/// The consistent-routing fingerprint of a job: for simulator jobs, the
/// same program+catalog+failure hash that keys its intervention-cache
/// entries ([`crate::executor::sim_fingerprint`]); for oracle jobs, the
/// ground-truth structure hash ([`truth_fingerprint`]). Because shard
/// routing and cache keying use the *same* hash, identical recipes from
/// any client land on the same shard **and** the same
/// [`InterventionCache`] partition — cross-client memoization survives
/// scale-out by construction.
pub fn job_fingerprint(job: &DiscoveryJob) -> u64 {
    match &job.source {
        JobSource::Sim {
            simulator,
            catalog,
            failure,
            ..
        } => sim_fingerprint(simulator, catalog, *failure),
        JobSource::Oracle { truth } => truth_fingerprint(truth),
    }
}

/// Jump consistent hash (Lamping & Veach 2014): maps `key` onto
/// `0..buckets` such that growing the bucket count moves only `1/n` of
/// the keys. Deterministic, allocation-free, and uniform enough for
/// fingerprint keys (which are already FNV-mixed).
pub fn jump_hash(mut key: u64, buckets: usize) -> usize {
    assert!(buckets > 0, "jump_hash needs at least one bucket");
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = (((b.wrapping_add(1)) as f64)
            * ((1u64 << 31) as f64 / ((key >> 33).wrapping_add(1) as f64))) as i64;
    }
    b as usize
}

/// A finished session.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionResult {
    /// The job's name.
    pub name: String,
    /// The discovery outcome.
    pub result: DiscoveryResult,
}

/// Why a session produced no [`SessionResult`].
#[derive(Clone, Debug, PartialEq)]
pub struct SessionError {
    /// The job's name.
    pub name: String,
    /// What killed it.
    pub kind: SessionErrorKind,
}

/// The failure class of a [`SessionError`].
#[derive(Clone, Debug, PartialEq)]
pub enum SessionErrorKind {
    /// An execution backend reported a typed per-run error (e.g. a
    /// return-value intervention on an impure method trapped the bytecode
    /// VM). The partial run was discarded; the engine and its pool stay
    /// healthy.
    Trap(VmError),
    /// The job panicked mid-discovery (e.g. a malformed DAG whose
    /// predicate has no intervention). The payload's message, when it was
    /// a string.
    Panic(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            SessionErrorKind::Trap(e) => write!(f, "session '{}' trapped: {e}", self.name),
            SessionErrorKind::Panic(msg) => write!(f, "session '{}' panicked: {msg}", self.name),
        }
    }
}

impl std::error::Error for SessionError {}

/// Ticket for a queued session.
pub struct Session {
    name: String,
    rx: Receiver<Result<SessionResult, SessionError>>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("name", &self.name).finish()
    }
}

impl Session {
    /// The job's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks until the session finishes and returns its result.
    ///
    /// # Panics
    ///
    /// Panics when the session ended in a [`SessionError`] (a VM trap or a
    /// job panic). Callers that need to survive failing jobs should use
    /// [`Session::join`], which reports them as a typed `Err` instead.
    pub fn wait(self) -> SessionResult {
        match self.join() {
            Ok(result) => result,
            Err(e) => panic!("{e}"),
        }
    }

    /// Blocks until the session finishes; a failing job comes back as a
    /// typed [`SessionError`] rather than a panic, so one poisoned session
    /// (e.g. an invalid intervention trapping the VM) never takes down a
    /// caller multiplexing many of them.
    pub fn join(self) -> Result<SessionResult, SessionError> {
        self.rx
            .recv()
            .expect("engine dropped a session without a result")
    }

    /// Non-blocking completion check, for callers that multiplex many
    /// sessions from one thread (e.g. a network server polling tickets
    /// between requests). Returns [`SessionPoll::Ready`] (or
    /// [`SessionPoll::Failed`] for a session that died with a typed error)
    /// exactly once; a later call observes the disconnected channel and
    /// reports [`SessionPoll::Lost`].
    pub fn try_wait(&self) -> SessionPoll {
        match self.rx.try_recv() {
            Ok(Ok(result)) => SessionPoll::Ready(result),
            Ok(Err(e)) => SessionPoll::Failed(e),
            Err(TryRecvError::Empty) => SessionPoll::Pending,
            Err(TryRecvError::Disconnected) => SessionPoll::Lost,
        }
    }
}

/// The outcome of a non-blocking [`Session::try_wait`].
#[derive(Clone, Debug)]
pub enum SessionPoll {
    /// The session finished; here is its result (delivered once).
    Ready(SessionResult),
    /// Still queued or running.
    Pending,
    /// The session ended in a typed error — a VM trap or a job panic —
    /// delivered once, like a result.
    Failed(SessionError),
    /// No result will ever arrive: the outcome was already taken by an
    /// earlier `try_wait`.
    Lost,
}

/// Returned by [`EngineHandle::try_submit`] when a job was not accepted.
/// Carries the job back so the caller can retry, queue it elsewhere, or
/// shed it with a typed rejection instead of losing it.
pub struct Saturated {
    /// The rejected job, returned intact (boxed so the error stays small
    /// on the happy path's `Result`).
    pub job: Box<DiscoveryJob>,
    /// True when the engine is draining after [`Engine::shutdown`] (the
    /// rejection is permanent); false when `max_pending` sessions were
    /// in flight (a retry may succeed).
    pub shutting_down: bool,
    /// Sessions queued-or-running at the moment of rejection.
    pub pending: usize,
}

impl std::fmt::Debug for Saturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Saturated")
            .field("job", &self.job.name)
            .field("shutting_down", &self.shutting_down)
            .finish()
    }
}

impl std::fmt::Display for Saturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.shutting_down {
            write!(
                f,
                "engine is shutting down; job '{}' refused",
                self.job.name
            )
        } else {
            write!(f, "engine saturated; job '{}' refused", self.job.name)
        }
    }
}

impl std::error::Error for Saturated {}

/// Aggregate engine telemetry.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Real executions performed (cache misses that ran).
    pub executions: u64,
    /// Cache lookups answered from memory.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Shard flushes forced by the cache capacity bound.
    pub cache_evictions: u64,
    /// Records stored in the cache.
    pub cache_entries: usize,
    /// Wall-batches fanned across the pool.
    pub wall_batches: u64,
    /// Sessions completed.
    pub sessions_completed: u64,
    /// Sessions that ended in a typed [`SessionError`] (VM trap or job
    /// panic) instead of a result.
    pub sessions_failed: u64,
    /// Non-blocking submissions refused ([`EngineHandle::try_submit`]
    /// returning [`Saturated`]), whether for saturation or shutdown.
    pub sessions_rejected: u64,
    /// Tasks executed per worker thread (utilization).
    pub tasks_per_worker: Vec<u64>,
    /// Tasks executed inline by joining threads (help-first steals).
    pub inline_tasks: u64,
    /// Highest simultaneously-pending session count observed.
    pub peak_pending: u64,
}

impl EngineStats {
    /// Cache hit fraction in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Submission state guarded by one lock: the in-flight count and the
/// drain flag must change together, or a submit racing a shutdown could
/// slip a job past the drain.
struct EngineQueue {
    pending: usize,
    shutting_down: bool,
}

struct EngineShared {
    pool: Arc<WorkerPool>,
    cache: Arc<InterventionCache>,
    counters: Arc<EngineCounters>,
    queue: Mutex<EngineQueue>,
    capacity: Condvar,
    max_pending: usize,
}

impl EngineShared {
    /// One engine tier: its own cache partition, counters, and admission
    /// queue over the given (possibly shared) worker pool. Telemetry
    /// registers in `metrics` under `engine.shard{shard}.*`, so a
    /// snapshot of the registry carries per-tier cache and session
    /// metrics side by side.
    fn build(
        config: &EngineConfig,
        pool: Arc<WorkerPool>,
        metrics: &MetricsRegistry,
        shard: usize,
    ) -> Arc<EngineShared> {
        let prefix = format!("engine.shard{shard}");
        Arc::new(EngineShared {
            pool,
            cache: Arc::new(InterventionCache::with_metrics(
                config.cache_shards,
                config.cache_capacity,
                metrics,
                &prefix,
            )),
            counters: Arc::new(EngineCounters::with_metrics(metrics, &prefix)),
            queue: Mutex::new(EngineQueue {
                pending: 0,
                shutting_down: false,
            }),
            capacity: Condvar::new(),
            max_pending: config.max_pending.max(1),
        })
    }
}

/// The multi-session discovery engine.
pub struct Engine {
    shared: Arc<EngineShared>,
    metrics: Arc<MetricsRegistry>,
}

impl Engine {
    /// Builds an engine from the given configuration, with its own
    /// `AID_OBS`-gated metrics registry.
    pub fn new(config: EngineConfig) -> Self {
        Engine::with_metrics(config, Arc::new(MetricsRegistry::from_env()))
    }

    /// Builds an engine whose telemetry registers in `metrics` (the
    /// single tier takes the `engine.shard0` prefix; the pool registers
    /// `engine.pool.*`). Servers pass their registry here so one snapshot
    /// covers every tier.
    pub fn with_metrics(config: EngineConfig, metrics: Arc<MetricsRegistry>) -> Self {
        let pool = Arc::new(WorkerPool::with_metrics(config.workers, &metrics));
        Engine {
            shared: EngineShared::build(&config, pool, &metrics, 0),
            metrics,
        }
    }

    /// Convenience: an engine with `workers` threads and default sizing.
    pub fn with_workers(workers: usize) -> Self {
        Engine::new(EngineConfig {
            workers,
            ..EngineConfig::default()
        })
    }

    /// The registry this engine's telemetry lives in.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A cloneable handle for submitting jobs (e.g. from server
    /// connection-handler threads).
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shards: vec![Arc::clone(&self.shared)],
        }
    }

    /// Queues a named discovery job (see [`EngineHandle::submit`]).
    pub fn submit(&self, job: DiscoveryJob) -> Session {
        self.handle().submit(job)
    }

    /// Non-blocking submission (see [`EngineHandle::try_submit`]).
    pub fn try_submit(&self, job: DiscoveryJob) -> Result<Session, Saturated> {
        self.handle().try_submit(job)
    }

    /// Graceful drain: refuses every subsequent submission (both
    /// [`EngineHandle::try_submit`], with `shutting_down = true`, and
    /// blocking [`EngineHandle::submit`], which panics) and blocks until
    /// every in-flight session has completed. Idempotent; callers holding
    /// [`Session`] tickets still receive their results.
    pub fn shutdown(&self) {
        drain_shard(&self.shared);
    }

    /// Submits every job and waits for all of them, preserving input order.
    pub fn run_all(&self, jobs: Vec<DiscoveryJob>) -> Vec<SessionResult> {
        self.handle().run_all(jobs)
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> EngineStats {
        self.handle().stats()
    }

    /// The engine's worker pool, for co-located fan-out work (e.g. an
    /// `aid_store` ingesting trace batches on the same threads its
    /// discovery sessions run on, instead of spawning a second pool).
    pub fn pool(&self) -> Arc<WorkerPool> {
        Arc::clone(&self.shared.pool)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Drain before tearing down: every queued session still runs to
        // completion (tickets held by callers keep receiving results), so
        // dropping the engine never silently abandons work.
        wait_idle(&self.shared);
    }
}

/// Graceful drain of one shard: set the flag, wake blocked submitters,
/// wait until the in-flight count reaches zero.
fn drain_shard(shared: &Arc<EngineShared>) {
    let mut q = shared.queue.lock().unwrap();
    q.shutting_down = true;
    // Wake submitters blocked on backpressure so they observe the
    // drain instead of sleeping forever.
    shared.capacity.notify_all();
    while q.pending > 0 {
        q = shared.capacity.wait(q).unwrap();
    }
}

/// Waits until a shard has no in-flight sessions (without refusing new
/// ones — the Drop path).
fn wait_idle(shared: &Arc<EngineShared>) {
    let mut q = shared.queue.lock().unwrap();
    while q.pending > 0 {
        q = shared.capacity.wait(q).unwrap();
    }
}

/// A cloneable submission handle onto one or more engine shards.
///
/// From [`Engine::handle`] it fronts a single shard and behaves exactly as
/// before. From [`ShardedEngine::handle`] it routes *every job* by
/// [`job_fingerprint`] (via [`jump_hash`]) — so a caller holding one
/// handle, including an `aid_watch::Watcher` submitting its internal
/// re-probes, lands each recipe on the same shard any other client's
/// identical recipe lands on.
#[derive(Clone)]
pub struct EngineHandle {
    shards: Vec<Arc<EngineShared>>,
}

impl EngineHandle {
    /// The shard a job routes to (index into this handle's shard list).
    pub fn route(&self, job: &DiscoveryJob) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            jump_hash(job_fingerprint(job), self.shards.len())
        }
    }

    fn shard_for(&self, job: &DiscoveryJob) -> &Arc<EngineShared> {
        &self.shards[self.route(job)]
    }

    /// Queues a named discovery job, blocking while `max_pending` sessions
    /// are already in flight on its shard (backpressure), and returns the
    /// session ticket.
    ///
    /// # Panics
    ///
    /// Panics if the engine has been [shut down](Engine::shutdown) —
    /// admission-controlled callers (servers, accept loops) should use
    /// [`EngineHandle::try_submit`], which reports the drain as a typed
    /// rejection instead.
    pub fn submit(&self, job: DiscoveryJob) -> Session {
        submit_on(self.shard_for(&job), job)
    }

    /// Non-blocking submission: returns the session ticket immediately, or
    /// [`Saturated`] (carrying the job back) when `max_pending` sessions
    /// are already queued-or-running on the job's shard or the engine is
    /// draining. This is the admission-control primitive — an accept
    /// thread can shed load with a typed rejection instead of blocking
    /// behind backpressure.
    pub fn try_submit(&self, job: DiscoveryJob) -> Result<Session, Saturated> {
        try_submit_on(self.shard_for(&job), job)
    }

    /// Submits every job and waits for all of them, preserving input order.
    pub fn run_all(&self, jobs: Vec<DiscoveryJob>) -> Vec<SessionResult> {
        // Submit incrementally (each submit may block on backpressure) and
        // only then start waiting: workers drain the queue independently of
        // this thread, so no deadlock is possible.
        let sessions: Vec<Session> = jobs.into_iter().map(|j| self.submit(j)).collect();
        sessions.into_iter().map(Session::wait).collect()
    }

    /// The engine's worker pool (see [`Engine::pool`]). Shards of a
    /// [`ShardedEngine`] share one pool, so any shard's is *the* pool.
    pub fn pool(&self) -> Arc<WorkerPool> {
        Arc::clone(&self.shards[0].pool)
    }

    /// Telemetry snapshot, folded across every shard this handle routes
    /// over (see `fold_stats` for the pool-metric caveat).
    pub fn stats(&self) -> EngineStats {
        fold_stats(&self.shards)
    }
}

/// Blocking submission onto one shard (see [`EngineHandle::submit`]).
fn submit_on(shared: &Arc<EngineShared>, job: DiscoveryJob) -> Session {
    let shutting_down = {
        let mut q = shared.queue.lock().unwrap();
        while q.pending >= shared.max_pending && !q.shutting_down {
            q = shared.capacity.wait(q).unwrap();
        }
        if !q.shutting_down {
            q.pending += 1;
            shared.counters.record_peak(q.pending as u64);
        }
        q.shutting_down
        // The guard drops here: panicking while holding it would
        // poison the queue mutex for every worker's PendingGuard and
        // for shutdown() itself, turning one caller's bug into an
        // engine-wide abort.
    };
    assert!(
        !shutting_down,
        "EngineHandle::submit on a shut-down engine (use try_submit)"
    );
    spawn_session_on(shared, job)
}

/// Non-blocking submission onto one shard (see
/// [`EngineHandle::try_submit`]).
fn try_submit_on(shared: &Arc<EngineShared>, job: DiscoveryJob) -> Result<Session, Saturated> {
    {
        let mut q = shared.queue.lock().unwrap();
        if q.shutting_down || q.pending >= shared.max_pending {
            let (shutting_down, pending) = (q.shutting_down, q.pending);
            drop(q);
            shared.counters.rejected.inc();
            return Err(Saturated {
                job: Box::new(job),
                shutting_down,
                pending,
            });
        }
        q.pending += 1;
        shared.counters.record_peak(q.pending as u64);
    }
    Ok(spawn_session_on(shared, job))
}

/// Spawns an already-admitted job (its `pending` slot is reserved).
fn spawn_session_on(shared: &Arc<EngineShared>, job: DiscoveryJob) -> Session {
    let (tx, rx) = channel::unbounded();
    let name = job.name.clone();
    let task_shared = Arc::clone(shared);
    shared.pool.spawn(move || {
        // Decrement `pending` even if the job panics (e.g. a malformed
        // DAG with a non-interventable predicate): a leaked count would
        // wedge backpressure and hang Engine::drop forever.
        struct PendingGuard(Arc<EngineShared>);
        impl Drop for PendingGuard {
            fn drop(&mut self) {
                let mut q = self.0.queue.lock().unwrap();
                q.pending -= 1;
                drop(q);
                // notify_all, not notify_one: backpressured submitters
                // and a draining Engine::drop wait on the same condvar,
                // and waking only one of them can strand the other.
                self.0.capacity.notify_all();
            }
        }
        let _guard = PendingGuard(Arc::clone(&task_shared));
        // Quarantine job failures: a VM trap unwinds out of the
        // executor carrying a typed `VmError` payload, and any other
        // panic is a job bug — both become a per-session
        // `SessionError` on this session's channel instead of killing
        // the ticket (and, transitively, whatever server thread polls
        // it).
        let name_for_err = job.name.clone();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(job, &task_shared)))
                .map_err(|payload| {
                    let kind = match payload.downcast::<VmError>() {
                        Ok(trap) => SessionErrorKind::Trap(*trap),
                        Err(payload) => SessionErrorKind::Panic(panic_message(&*payload)),
                    };
                    SessionError {
                        name: name_for_err,
                        kind,
                    }
                });
        // Count completion *before* publishing the result, so a caller
        // that reads stats right after wait() observes the session.
        match &outcome {
            Ok(_) => task_shared.counters.sessions.inc(),
            Err(_) => task_shared.counters.failed.inc(),
        };
        // The submitter may have dropped the ticket; that is not an
        // engine error.
        let _ = tx.send(outcome);
    });
    Session { name, rx }
}

/// Folds per-shard counters and cache stats into one [`EngineStats`].
///
/// Counter and cache fields sum across shards; pool fields
/// (`wall_batches`, `tasks_per_worker`, `inline_tasks`) are read from the
/// first shard only, because every shard of a [`ShardedEngine`] shares
/// one [`WorkerPool`] — summing them would multiply the same pool's work
/// by the shard count.
fn fold_stats(shards: &[Arc<EngineShared>]) -> EngineStats {
    let pool = &shards[0].pool;
    let mut stats = EngineStats {
        executions: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        cache_entries: 0,
        wall_batches: pool.batches(),
        sessions_completed: 0,
        sessions_failed: 0,
        sessions_rejected: 0,
        tasks_per_worker: pool.tasks_per_worker(),
        inline_tasks: pool.inline_tasks(),
        peak_pending: 0,
    };
    for shard in shards {
        let cache = shard.cache.stats();
        stats.executions += shard.counters.executions.get();
        stats.cache_hits += cache.hits;
        stats.cache_misses += cache.misses;
        stats.cache_evictions += cache.evictions;
        stats.cache_entries += cache.entries;
        stats.sessions_completed += shard.counters.sessions.get();
        stats.sessions_failed += shard.counters.failed.get();
        stats.sessions_rejected += shard.counters.rejected.get();
        // Peaks on different shards can coincide, so the sum is an upper
        // bound; the max is a sound lower bound. Report the max — the
        // stat answers "how deep did one admission queue get".
        stats.peak_pending = stats.peak_pending.max(shard.counters.peak_pending.get());
    }
    stats
}

/// N engine tiers over one worker pool.
///
/// Each shard owns its own [`InterventionCache`] partition, admission
/// queue, and counters; CPU work from every shard funnels into one shared
/// [`WorkerPool`]. Jobs route by [`job_fingerprint`] — the same
/// program+catalog+failure hash that keys cache entries — through
/// [`jump_hash`], so identical recipes from any client (or any standing
/// query's internal re-probe) always land on the same shard and hence the
/// same cache partition: cross-client memoization is preserved under
/// scale-out, and distinct programs spread across shards instead of
/// contending on one admission queue.
///
/// `max_pending` (and the cache capacity) from the [`EngineConfig`] apply
/// **per shard**: the admission bound is about queue depth and memory per
/// tier, and a shard only ever sees its own fingerprint slice.
pub struct ShardedEngine {
    shards: Vec<Arc<EngineShared>>,
    metrics: Arc<MetricsRegistry>,
}

impl ShardedEngine {
    /// Builds `shards` engine tiers sharing one pool of `config.workers`
    /// threads, with their own `AID_OBS`-gated metrics registry.
    pub fn new(config: EngineConfig, shards: usize) -> Self {
        ShardedEngine::with_metrics(config, shards, Arc::new(MetricsRegistry::from_env()))
    }

    /// Builds `shards` tiers whose telemetry registers in `metrics`: tier
    /// `i` takes the `engine.shard{i}` prefix and the shared pool
    /// registers `engine.pool.*`.
    pub fn with_metrics(
        config: EngineConfig,
        shards: usize,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        let shards = shards.max(1);
        let pool = Arc::new(WorkerPool::with_metrics(config.workers, &metrics));
        ShardedEngine {
            shards: (0..shards)
                .map(|i| EngineShared::build(&config, Arc::clone(&pool), &metrics, i))
                .collect(),
            metrics,
        }
    }

    /// The registry this engine's telemetry lives in.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A cloneable routing handle over every shard.
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shards: self.shards.clone(),
        }
    }

    /// Routed blocking submission (see [`EngineHandle::submit`]).
    pub fn submit(&self, job: DiscoveryJob) -> Session {
        self.handle().submit(job)
    }

    /// Routed non-blocking submission (see [`EngineHandle::try_submit`]).
    pub fn try_submit(&self, job: DiscoveryJob) -> Result<Session, Saturated> {
        self.handle().try_submit(job)
    }

    /// Graceful drain of every shard: refuses all subsequent submissions
    /// and blocks until every in-flight session on every shard completed.
    /// Idempotent.
    pub fn shutdown(&self) {
        // Flag every shard before waiting on any: routing is per-job, so
        // a drain that waited out shard 0 before flagging shard 1 would
        // let new work slip into the not-yet-flagged shards meanwhile.
        for shard in &self.shards {
            shard.queue.lock().unwrap().shutting_down = true;
            shard.capacity.notify_all();
        }
        for shard in &self.shards {
            drain_shard(shard);
        }
    }

    /// Folded telemetry across all shards (see `fold_stats`).
    pub fn stats(&self) -> EngineStats {
        fold_stats(&self.shards)
    }

    /// One shard's own telemetry (cache partition + admission counters).
    pub fn shard_stats(&self, shard: usize) -> EngineStats {
        fold_stats(&self.shards[shard..=shard])
    }

    /// The shard index a job routes to.
    pub fn route(&self, job: &DiscoveryJob) -> usize {
        self.handle().route(job)
    }

    /// The shared worker pool.
    pub fn pool(&self) -> Arc<WorkerPool> {
        Arc::clone(&self.shards[0].pool)
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        for shard in &self.shards {
            wait_idle(shard);
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job to completion on the current (worker) thread; intervention
/// batches fan back onto the pool from here.
fn execute(job: DiscoveryJob, shared: &EngineShared) -> SessionResult {
    let result = match job.source {
        JobSource::Sim {
            simulator,
            catalog,
            failure,
            runs_per_round,
            first_seed,
        } => {
            let mut exec = PooledSimExecutor::new(
                simulator,
                catalog,
                failure,
                runs_per_round,
                first_seed,
                Arc::clone(&shared.pool),
                Arc::clone(&shared.cache),
                Arc::clone(&shared.counters),
            );
            discover_with_options(&job.dag, &mut exec, job.strategy, job.seed, job.options)
        }
        JobSource::Oracle { truth } => {
            let mut exec = CachedOracleExecutor::new(
                truth,
                Arc::clone(&shared.cache),
                Arc::clone(&shared.counters),
            );
            discover_with_options(&job.dag, &mut exec, job.strategy, job.seed, job.options)
        }
    };
    SessionResult {
        name: job.name,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_core::figure4_ground_truth;

    /// The Figure 4(a) AC-DAG (same Hasse edges as `aid_core`'s discovery
    /// tests — the flat "everything points at F" DAG is only sound for
    /// TAGT, which ignores structure).
    fn figure4_dag(truth: &GroundTruth) -> AcDag {
        let p = |i: u32| aid_predicates::PredicateId::from_raw(i);
        let edges = vec![
            (p(0), p(1)),
            (p(1), p(2)),
            (p(2), p(3)),
            (p(3), p(4)),
            (p(4), p(5)),
            (p(2), p(6)),
            (p(6), p(7)),
            (p(7), p(8)),
            (p(6), p(10)),
            (p(5), p(9)),
            (p(10), p(9)),
            (p(9), p(11)),
            (p(5), p(11)),
            (p(8), p(11)),
        ];
        AcDag::from_edges(&truth.candidates(), truth.failure(), &edges)
    }

    fn oracle_job(name: &str, seed: u64) -> DiscoveryJob {
        let truth = figure4_ground_truth();
        let dag = Arc::new(figure4_dag(&truth));
        DiscoveryJob::oracle(name, dag, truth, Strategy::Aid, seed)
    }

    #[test]
    fn sessions_come_back_named_and_correct() {
        let engine = Engine::with_workers(2);
        let results = engine.run_all(vec![oracle_job("a", 0), oracle_job("b", 1)]);
        assert_eq!(results[0].name, "a");
        assert_eq!(results[1].name, "b");
        for r in &results {
            let causal: Vec<u32> = r.result.causal.iter().map(|p| p.raw()).collect();
            assert_eq!(causal, vec![0, 1, 10]);
        }
        let stats = engine.stats();
        assert_eq!(stats.sessions_completed, 2);
        assert!(stats.executions > 0);
    }

    #[test]
    fn backpressure_bounds_pending_sessions() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            cache_shards: 2,
            max_pending: 2,
            ..EngineConfig::default()
        });
        let handle = engine.handle();
        let sessions: Vec<Session> = (0..12).map(|i| handle.submit(oracle_job("x", i))).collect();
        for s in sessions {
            s.wait();
        }
        let stats = engine.stats();
        assert_eq!(stats.sessions_completed, 12);
        assert!(
            stats.peak_pending <= 2,
            "backpressure must cap pending at 2, saw {}",
            stats.peak_pending
        );
    }

    /// A job that panics mid-discovery (non-interventable predicate → the
    /// executor's `plan_for` panics) must not wedge the engine: pending
    /// drains, later sessions run, and drop doesn't hang.
    #[test]
    fn panicking_job_does_not_wedge_the_engine() {
        use aid_predicates::{Predicate, PredicateCatalog, PredicateKind};
        use aid_sim::ProgramBuilder;

        let mut b = ProgramBuilder::new("bad");
        let main = b.method("Main", |m| {
            m.compute(1);
        });
        b.thread("main", main, true);
        let mut catalog = PredicateCatalog::new();
        let bad = catalog.insert(Predicate {
            kind: PredicateKind::Failure {
                signature: aid_trace::FailureSignature {
                    kind: "Boom".into(),
                    method: aid_trace::MethodId::from_raw(0),
                },
            },
            safe: true,
            action: None, // ⇒ plan_for panics the moment it is intervened on
        });
        let mut fail_catalog = catalog.clone();
        let failure = fail_catalog.insert(Predicate {
            kind: PredicateKind::Failure {
                signature: aid_trace::FailureSignature {
                    kind: "F".into(),
                    method: aid_trace::MethodId::from_raw(0),
                },
            },
            safe: true,
            action: None,
        });
        let dag = Arc::new(AcDag::from_edges(&[bad], failure, &[(bad, failure)]));

        let engine = Engine::new(EngineConfig {
            workers: 1,
            cache_shards: 2,
            max_pending: 2,
            ..EngineConfig::default()
        });
        let doomed = engine.submit(DiscoveryJob::sim(
            "doomed",
            dag,
            Arc::new(Simulator::new(b.build())),
            Arc::new(fail_catalog),
            failure,
            1,
            0,
            Strategy::Aid,
            0,
        ));
        // The doomed session dies with a *typed* error, not a dead channel…
        let err = doomed.join().expect_err("job must fail");
        assert_eq!(err.name, "doomed");
        assert!(
            matches!(err.kind, SessionErrorKind::Panic(ref msg) if msg.contains("intervention")),
            "unexpected error: {err}"
        );
        // …but the engine keeps serving, and dropping it doesn't hang.
        let ok = engine.submit(oracle_job("survivor", 1)).wait();
        assert_eq!(ok.name, "survivor");
        let stats = engine.stats();
        assert_eq!(
            stats.sessions_completed, 1,
            "the panicked job is not counted"
        );
        assert_eq!(stats.sessions_failed, 1);
    }

    /// A program whose candidate intervention is *invalid* (premature
    /// return on an impure method) traps the bytecode VM. The trap must
    /// surface as a per-session [`SessionErrorKind::Trap`] with the VM's
    /// typed error — not a panic, not a wedged pool — and the engine must
    /// stay fully serviceable afterwards.
    #[test]
    fn vm_trap_quarantines_the_session_with_a_typed_error() {
        use aid_predicates::{InterventionAction, MethodInstance, Predicate, PredicateKind};
        use aid_sim::{Backend, Expr, ProgramBuilder, VmError};

        let mut b = ProgramBuilder::new("trapper");
        let x = b.object("x", 0);
        // Impure on purpose: a premature-return intervention on it is the
        // paper's "repair" misapplied, which the VM reports as a trap.
        let main = b.method("Main", |m| {
            m.write(x, Expr::Const(1)).compute(2);
        });
        b.thread("main", main, true);
        let program = b.build();
        let main_id = aid_trace::MethodId::from_raw(0);

        let mut catalog = PredicateCatalog::new();
        let candidate = catalog.insert(Predicate {
            kind: PredicateKind::RunsTooSlow {
                site: MethodInstance::new(main_id, 0),
                threshold: 1,
            },
            safe: true,
            action: Some(InterventionAction::PrematureReturn {
                site: MethodInstance::new(main_id, 0),
                value: 0,
            }),
        });
        let failure = catalog.insert(Predicate {
            kind: PredicateKind::Failure {
                signature: aid_trace::FailureSignature {
                    kind: "F".into(),
                    method: main_id,
                },
            },
            safe: true,
            action: None,
        });
        let dag = Arc::new(AcDag::from_edges(
            &[candidate],
            failure,
            &[(candidate, failure)],
        ));

        let engine = Engine::with_workers(2);
        let doomed = engine.submit(DiscoveryJob::sim(
            "trapped",
            dag,
            Arc::new(Simulator::new(program).with_backend(Backend::Bytecode)),
            Arc::new(catalog),
            failure,
            2,
            0,
            Strategy::Aid,
            0,
        ));
        let err = doomed.join().expect_err("the trap must fail the session");
        assert_eq!(err.name, "trapped");
        match &err.kind {
            SessionErrorKind::Trap(VmError::PrematureReturnImpure { method }) => {
                assert_eq!(method, "Main");
            }
            other => panic!("expected a PrematureReturnImpure trap, got {other:?}"),
        }
        // Quarantined, not poisoned: a healthy job still completes.
        let ok = engine.submit(oracle_job("after-trap", 9)).wait();
        assert_eq!(ok.name, "after-trap");
        let stats = engine.stats();
        assert_eq!(stats.sessions_failed, 1);
        assert_eq!(stats.sessions_completed, 1);
    }

    /// Cache keys are backend-independent: a session run on the tree-walk
    /// backend fully warms the cache for an identical session run on the
    /// bytecode backend (and their results are equal).
    #[test]
    fn sessions_share_the_cache_across_backends() {
        use aid_predicates::{InterventionAction, MethodInstance, Predicate, PredicateKind};
        use aid_sim::{Backend, Expr, ProgramBuilder};

        let mut b = ProgramBuilder::new("xbackend");
        let x = b.object("x", 0);
        let main = b.method("Main", |m| {
            m.write(x, Expr::Const(1)).compute(3).flaky_delay(0.5, 2);
        });
        b.thread("main", main, true);
        let program = b.build();
        let main_id = aid_trace::MethodId::from_raw(0);

        let mut catalog = PredicateCatalog::new();
        let candidate = catalog.insert(Predicate {
            kind: PredicateKind::RunsTooSlow {
                site: MethodInstance::new(main_id, 0),
                threshold: 3,
            },
            safe: true,
            action: Some(InterventionAction::SuppressFlaky {
                site: MethodInstance::new(main_id, 0),
            }),
        });
        let failure = catalog.insert(Predicate {
            kind: PredicateKind::Failure {
                signature: aid_trace::FailureSignature {
                    kind: "F".into(),
                    method: main_id,
                },
            },
            safe: true,
            action: None,
        });
        let catalog = Arc::new(catalog);
        let dag = Arc::new(AcDag::from_edges(
            &[candidate],
            failure,
            &[(candidate, failure)],
        ));

        let engine = Engine::with_workers(2);
        let job = |name: &str, backend: Backend| {
            DiscoveryJob::sim(
                name,
                Arc::clone(&dag),
                Arc::new(Simulator::new(program.clone()).with_backend(backend)),
                Arc::clone(&catalog),
                failure,
                3,
                0,
                Strategy::Aid,
                0,
            )
        };
        let tree = engine.submit(job("tree", Backend::TreeWalk)).wait();
        let warm = engine.stats();
        assert!(warm.executions > 0);
        let byte = engine.submit(job("byte", Backend::Bytecode)).wait();
        let after = engine.stats();
        assert_eq!(tree.result, byte.result, "backends agree end-to-end");
        assert_eq!(
            after.executions, warm.executions,
            "the bytecode session must be answered entirely from the tree-walk session's cache"
        );
    }

    #[test]
    fn dropping_the_engine_drains_outstanding_sessions() {
        let kept;
        {
            let engine = Engine::with_workers(2);
            kept = engine.submit(oracle_job("kept", 5));
            // A fire-and-forget session: ticket dropped immediately.
            drop(engine.submit(oracle_job("forgotten", 6)));
            // Engine dropped here; both sessions must still complete.
        }
        let result = kept.wait();
        assert_eq!(result.name, "kept");
        let causal: Vec<u32> = result.result.causal.iter().map(|p| p.raw()).collect();
        assert_eq!(causal, vec![0, 1, 10]);
    }

    /// `try_submit` must never block: with the single worker gated and the
    /// pending bound filled it rejects with `shutting_down = false`; after
    /// `shutdown` it rejects with `shutting_down = true`. Both rejections
    /// hand the job back and count in `sessions_rejected`.
    #[test]
    fn try_submit_rejects_on_saturation_and_shutdown() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            cache_shards: 2,
            max_pending: 2,
            ..EngineConfig::default()
        });
        // Gate the only worker so admitted sessions cannot start draining.
        let (gate_tx, gate_rx) = channel::unbounded::<()>();
        engine.pool().spawn(move || {
            let _ = gate_rx.recv();
        });
        let a = engine.try_submit(oracle_job("a", 0)).expect("slot 1 free");
        let b = engine.try_submit(oracle_job("b", 1)).expect("slot 2 free");
        let refused = engine
            .try_submit(oracle_job("c", 2))
            .expect_err("pending bound is 2");
        assert!(!refused.shutting_down);
        assert_eq!(refused.job.name, "c", "the job comes back intact");

        gate_tx.send(()).unwrap();
        a.wait();
        b.wait();
        engine.shutdown();
        let drained = engine
            .try_submit(*refused.job)
            .expect_err("draining engine refuses new work");
        assert!(drained.shutting_down);

        let stats = engine.stats();
        assert_eq!(stats.sessions_completed, 2);
        assert_eq!(stats.sessions_rejected, 2);
        // Shutdown is idempotent and Drop after shutdown must not hang.
        engine.shutdown();
    }

    #[test]
    fn try_wait_is_nonblocking_and_delivers_once() {
        let engine = Engine::with_workers(1);
        let session = engine.submit(oracle_job("polled", 4));
        // Spin until the result lands; every intermediate probe must be
        // Pending, never a panic or a block.
        let result = loop {
            match session.try_wait() {
                SessionPoll::Ready(r) => break r,
                SessionPoll::Pending => std::thread::yield_now(),
                SessionPoll::Failed(e) => panic!("session failed: {e}"),
                SessionPoll::Lost => panic!("session lost without a result"),
            }
        };
        assert_eq!(result.name, "polled");
        // The result was consumed; the channel now reports Lost.
        assert!(matches!(session.try_wait(), SessionPoll::Lost));
    }

    /// Jump hash is deterministic, in range, and minimally disruptive:
    /// growing the bucket count never moves a key between two *existing*
    /// buckets (it may only move to the new one).
    #[test]
    fn jump_hash_is_consistent() {
        for key in (0..2000u64).map(|k| k.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            let at4 = jump_hash(key, 4);
            assert!(at4 < 4);
            assert_eq!(at4, jump_hash(key, 4), "deterministic");
            let at5 = jump_hash(key, 5);
            assert!(
                at5 == at4 || at5 == 4,
                "growing 4→5 buckets may only move a key to the new bucket; \
                 key {key} moved {at4}→{at5}"
            );
        }
    }

    /// Identical recipes route to the same shard of a `ShardedEngine`, so
    /// a repeat session is answered from that shard's cache partition —
    /// the cross-client economics the single-engine tests pin, preserved
    /// under scale-out.
    #[test]
    fn sharded_engine_routes_identical_recipes_to_one_cache_partition() {
        let engine = ShardedEngine::new(
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
            4,
        );
        let shard = engine.route(&oracle_job("probe", 3));
        engine.submit(oracle_job("first", 3)).wait();
        let warm = engine.stats();
        assert!(warm.executions > 0);
        engine.submit(oracle_job("second", 3)).wait();
        let after = engine.stats();
        assert_eq!(
            after.executions, warm.executions,
            "the repeat session must be fully memoized across shards"
        );
        assert!(after.cache_hits > warm.cache_hits);
        assert_eq!(after.sessions_completed, 2, "fold sums across shards");
        // All the work landed on the routed shard; the others stayed cold.
        let hot = engine.shard_stats(shard);
        assert_eq!(hot.sessions_completed, 2);
        for other in (0..engine.shard_count()).filter(|&i| i != shard) {
            assert_eq!(engine.shard_stats(other).executions, 0);
        }
        engine.shutdown();
        let refused = engine
            .try_submit(oracle_job("late", 3))
            .expect_err("drained shards refuse");
        assert!(refused.shutting_down);
    }

    /// The handle from a sharded engine is what `aid_serve`/`aid_watch`
    /// hold: routed submission works through it, and its stats fold does
    /// not multiply the shared pool's batch counters by the shard count.
    #[test]
    fn sharded_handle_submits_and_folds_pool_stats_once() {
        let engine = ShardedEngine::new(
            EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
            2,
        );
        let handle = engine.handle();
        let results: Vec<SessionResult> =
            handle.run_all((0..4).map(|i| oracle_job("h", i)).collect());
        assert_eq!(results.len(), 4);
        let folded = handle.stats();
        assert_eq!(folded.sessions_completed, 4);
        let per_shard: u64 = (0..engine.shard_count())
            .map(|i| engine.shard_stats(i).sessions_completed)
            .sum();
        assert_eq!(per_shard, 4);
        assert_eq!(
            folded.wall_batches,
            engine.shard_stats(0).wall_batches,
            "pool metrics are shared, not summed"
        );
    }

    #[test]
    fn identical_sessions_share_the_cache() {
        let engine = Engine::with_workers(2);
        engine.run_all(vec![oracle_job("first", 3)]);
        let before = engine.stats();
        engine.run_all(vec![oracle_job("second", 3)]);
        let after = engine.stats();
        assert_eq!(
            after.executions, before.executions,
            "identical session must be fully memoized"
        );
        assert!(after.cache_hits > before.cache_hits);
    }
}
