//! Engine acceptance tests: scheduling must never change answers.
//!
//! * N workers vs 1 worker give identical `DiscoveryResult`s for all six
//!   case studies — and both match the serial `SimExecutor` path, pinning
//!   the engine's positional seed schedule to the library's sequential one.
//! * Repeated sessions over the same program are answered from the
//!   intervention cache without a single re-execution.
//! * On the Figure-8 synthetic workload (ground truths compiled to real
//!   simulator programs), a 4-worker engine beats serial re-execution by
//!   ≥2x wall-clock, because repeated sessions never re-execute and cold
//!   runs overlap across workers.

use aid_cases::{all_cases, CaseStudy};
use aid_core::{analyze, discover, AidAnalysis, DiscoveryResult, Strategy};
use aid_engine::workload::{compiled_figure8_apps, Figure8App};
use aid_engine::{DiscoveryJob, Engine, EngineConfig};
use aid_sim::{SimExecutor, Simulator};
use std::sync::Arc;
use std::time::Instant;

/// Runs per intervention round for the engine tests: enough to exercise the
/// multi-run fan-out, capped so six debug-mode case studies stay fast.
fn test_runs(case: &CaseStudy) -> usize {
    case.runs_per_round.min(8)
}

/// Observation phase for a case, reduced from the paper's 50/50 to keep the
/// suite quick; discovery determinism is independent of log size.
fn analyze_reduced(case: &CaseStudy) -> (Arc<Simulator>, AidAnalysis) {
    let sim = Simulator::new(case.program.clone());
    let set = sim.collect_balanced(30, 30, 60_000);
    let analysis = analyze(&set, &case.config);
    (Arc::new(sim), analysis)
}

fn sim_job(
    name: &str,
    sim: &Arc<Simulator>,
    analysis: &AidAnalysis,
    runs_per_round: usize,
    strategy: Strategy,
    seed: u64,
) -> DiscoveryJob {
    DiscoveryJob::sim(
        name,
        Arc::new(analysis.dag.clone()),
        Arc::clone(sim),
        Arc::new(analysis.extraction.catalog.clone()),
        analysis.extraction.failure,
        runs_per_round,
        1_000_000,
        strategy,
        seed,
    )
}

#[test]
fn multi_worker_equals_single_worker_on_all_six_cases() {
    let single = Engine::with_workers(1);
    let quad = Engine::with_workers(4);
    for case in all_cases() {
        let (sim, analysis) = analyze_reduced(&case);
        let runs = test_runs(&case);

        let from_single = single
            .submit(sim_job(case.name, &sim, &analysis, runs, Strategy::Aid, 11))
            .wait();
        let from_quad = quad
            .submit(sim_job(case.name, &sim, &analysis, runs, Strategy::Aid, 11))
            .wait();
        assert_eq!(
            from_single.result, from_quad.result,
            "{}: worker count changed the discovery result",
            case.name
        );
        // Byte-identical in the strictest sense available.
        assert_eq!(
            format!("{:?}", from_single.result),
            format!("{:?}", from_quad.result),
            "{}: debug renderings diverge",
            case.name
        );

        // The engine's positional seed schedule must match the serial
        // executor's sequential one exactly.
        let mut serial = SimExecutor::new(
            (*sim).clone(),
            analysis.extraction.catalog.clone(),
            analysis.extraction.failure,
            runs,
            1_000_000,
        );
        let reference = discover(&analysis.dag, &mut serial, Strategy::Aid, 11);
        assert_eq!(
            from_quad.result, reference,
            "{}: engine diverged from the serial executor",
            case.name
        );
    }
}

#[test]
fn repeated_sessions_are_answered_from_the_cache() {
    let case = all_cases().remove(0); // Npgsql
    let (sim, analysis) = analyze_reduced(&case);
    let runs = test_runs(&case);
    let engine = Engine::with_workers(2);

    let first = engine
        .submit(sim_job("warm", &sim, &analysis, runs, Strategy::Aid, 11))
        .wait();
    let after_first = engine.stats();
    assert!(after_first.executions > 0, "cold session must execute");
    assert_eq!(after_first.cache_hits, 0, "nothing to hit yet");

    for round in 0..2 {
        let again = engine
            .submit(sim_job("repeat", &sim, &analysis, runs, Strategy::Aid, 11))
            .wait();
        assert_eq!(first.result, again.result, "repeat {round} changed answer");
    }
    let after_repeats = engine.stats();
    assert_eq!(
        after_repeats.executions, after_first.executions,
        "repeated sessions must not re-execute a single run"
    );
    // Both repeats probed everything the first session executed.
    assert_eq!(after_repeats.cache_hits, 2 * after_first.executions);
    assert!(
        after_repeats.cache_hit_rate() > 0.6,
        "hit rate {:.2} too low",
        after_repeats.cache_hit_rate()
    );
}

/// The pooled executor's cross-group seed arithmetic: a two-group batch
/// must return exactly what the serial executor produces for the same two
/// rounds issued one at a time.
#[test]
fn pooled_multi_group_batch_matches_serial_executor() {
    use aid_core::{BatchExecutor, Executor};
    use aid_engine::{EngineCounters, InterventionCache, PooledSimExecutor, WorkerPool};

    let app = &compiled_figure8_apps(1, 4)[0];
    let candidates = app.analysis.dag.candidates();
    assert!(candidates.len() >= 3);
    let g1 = vec![candidates[0]];
    let g2 = vec![candidates[1], candidates[2]];
    let runs = 4;

    let mut serial = SimExecutor::new(
        (*app.sim).clone(),
        app.analysis.extraction.catalog.clone(),
        app.analysis.extraction.failure,
        runs,
        1_000_000,
    );
    let serial_r1 = serial.intervene(&g1);
    let serial_r2 = serial.intervene(&g2);

    let mut pooled = PooledSimExecutor::new(
        Arc::clone(&app.sim),
        Arc::new(app.analysis.extraction.catalog.clone()),
        app.analysis.extraction.failure,
        runs,
        1_000_000,
        Arc::new(WorkerPool::new(3)),
        Arc::new(InterventionCache::new(4)),
        Arc::new(EngineCounters::default()),
    );
    let batch = pooled.intervene_batch(&[g1, g2]);
    assert_eq!(batch, vec![serial_r1, serial_r2]);
}

#[test]
fn four_worker_engine_beats_serial_by_2x_on_figure8_workload() {
    const REPEATS: usize = 6;
    const RUNS_PER_ROUND: usize = 32;
    // Node cost 120: a re-execution costs what a real service call would,
    // so cache-hit economics are not drowned by per-round bookkeeping (the
    // ratio this test asserts is about *executions*). Calibrated for the
    // bytecode backend — the VM coalesces compute bursts, so the virtual
    // cost must be higher than the tree-walk era's 40 to keep the same
    // wall-clock weight per execution.
    let apps: Vec<Figure8App> = compiled_figure8_apps(3, 120);

    // The session list a triage service would see: every app probed
    // repeatedly (same program, same strategy — think re-runs across a
    // flaky CI day).
    let session_specs: Vec<(usize, String)> = (0..REPEATS)
        .flat_map(|r| {
            apps.iter()
                .enumerate()
                .map(move |(i, _)| (i, format!("app{i}-run{r}")))
        })
        .collect();

    // Serial baseline: a fresh executor per session, every run re-executed.
    let serial_start = Instant::now();
    let serial_results: Vec<DiscoveryResult> = session_specs
        .iter()
        .map(|(i, _)| {
            let app = &apps[*i];
            let mut exec = SimExecutor::new(
                (*app.sim).clone(),
                app.analysis.extraction.catalog.clone(),
                app.analysis.extraction.failure,
                RUNS_PER_ROUND,
                1_000_000,
            );
            discover(&app.analysis.dag, &mut exec, Strategy::Aid, 3)
        })
        .collect();
    let serial_elapsed = serial_start.elapsed();

    // Engine: same sessions through a 4-worker pool + shared cache.
    let engine = Engine::new(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });
    let jobs: Vec<DiscoveryJob> = session_specs
        .iter()
        .map(|(i, name)| {
            let app = &apps[*i];
            sim_job(
                name,
                &app.sim,
                &app.analysis,
                RUNS_PER_ROUND,
                Strategy::Aid,
                3,
            )
        })
        .collect();
    let engine_start = Instant::now();
    let engine_results = engine.run_all(jobs);
    let engine_elapsed = engine_start.elapsed();

    // Same answers, session by session.
    for (serial, pooled) in serial_results.iter().zip(&engine_results) {
        assert_eq!(serial, &pooled.result, "{} diverged", pooled.name);
    }

    let stats = engine.stats();
    assert!(
        stats.cache_hits > 0 && stats.executions < stats.cache_hits + stats.cache_misses,
        "repeats must be served from the cache: {stats:?}"
    );
    let speedup = serial_elapsed.as_secs_f64() / engine_elapsed.as_secs_f64();
    eprintln!(
        "figure-8 workload: serial {serial_elapsed:?}, 4-worker engine {engine_elapsed:?} \
         ({speedup:.2}x), {} executions / {} cache hits",
        stats.executions, stats.cache_hits
    );
    assert!(
        speedup >= 2.0,
        "4-worker engine speedup {speedup:.2}x < 2x \
         (serial {serial_elapsed:?}, engine {engine_elapsed:?}, stats {stats:?})"
    );
}
