//! `InterventionCache` under *tiny* capacities: segmented eviction must
//! never break the single-flight protocol or the telemetry accounting.
//!
//! * A waiter's rendezvous lives in the pending slot itself, so flushing
//!   the shard underneath an in-flight key must not strand the waiter.
//! * Every real execution is a cache miss that ran, so `executions ==
//!   cache_misses` stays true across arbitrarily many evictions — eviction
//!   trades speed, never consistency.
//! * Engine sessions stay deterministic when the cache is too small to
//!   retain anything useful.

use aid_causal::AcDag;
use aid_core::{figure4_ground_truth, ExecutionRecord, GroundTruth, Strategy};
use aid_engine::{CacheKey, DiscoveryJob, Engine, EngineConfig, InterventionCache, Leased};
use aid_predicates::PredicateId;
use aid_util::DenseBitSet;
use std::sync::Arc;

fn rec(failed: bool) -> ExecutionRecord {
    ExecutionRecord {
        failed,
        observed: DenseBitSet::new(4),
    }
}

fn p(i: u32) -> PredicateId {
    PredicateId::from_raw(i)
}

#[test]
fn waiters_survive_a_flush_of_their_pending_shard() {
    let cache = Arc::new(InterventionCache::with_capacity(1, 2));
    let key = CacheKey::new(7, &[p(0)], 1);
    let lease = match cache.lease(key.clone()) {
        Leased::Owner(l) => l,
        _ => panic!("first lease must own"),
    };
    let pending = match cache.lease(key.clone()) {
        Leased::Waiter(s) => s,
        _ => panic!("second lease must wait"),
    };
    let waiter = std::thread::spawn(move || pending.wait());
    // Blow the single shard several times over while the key is in flight.
    for seed in 100..200u64 {
        cache.insert(CacheKey::new(7, &[p(0)], seed), rec(false));
    }
    assert!(cache.stats().evictions > 0, "the shard must have flushed");
    lease.fill(rec(true));
    assert_eq!(
        waiter.join().unwrap(),
        Some(rec(true)),
        "the flush must not strand the coalesced waiter"
    );
    // The filled record is retrievable right after the fill (the fill wrote
    // it back post-flush); later inserts may evict it again — that is a
    // speed concern, not a correctness one.
    assert_eq!(cache.get(&key), Some(rec(true)));
}

#[test]
fn single_flight_still_coalesces_after_eviction() {
    let cache = Arc::new(InterventionCache::with_capacity(2, 4));
    // Fill → evict → the key must lease as a fresh single-flight owner
    // (not a stale Ready and not a stuck Waiter).
    for round in 0..50u64 {
        let key = CacheKey::new(9, &[p(1), p(2)], round);
        match cache.lease(key.clone()) {
            Leased::Owner(l) => l.fill(rec(round % 2 == 0)),
            _ => panic!("round {round}: evicted key must lease as owner"),
        }
        // Re-lease immediately: now it must be Ready.
        match cache.lease(key) {
            Leased::Ready(r) => assert_eq!(r, rec(round % 2 == 0)),
            _ => panic!("round {round}: just-filled key must be ready"),
        }
    }
    let stats = cache.stats();
    assert!(stats.evictions > 0, "tiny capacity must evict: {stats:?}");
    assert_eq!(stats.misses, 50, "every round missed once");
    assert_eq!(stats.hits, 50, "every round hit once");
    assert_eq!(stats.coalesced, 0);
    assert!(
        stats.entries <= 4 + 2,
        "entries {} must stay near 4",
        stats.entries
    );
}

/// The Figure 4(a) AC-DAG (mirrors `aid_engine::session` tests).
fn figure4_dag(truth: &GroundTruth) -> AcDag {
    let edges = vec![
        (p(0), p(1)),
        (p(1), p(2)),
        (p(2), p(3)),
        (p(3), p(4)),
        (p(4), p(5)),
        (p(2), p(6)),
        (p(6), p(7)),
        (p(7), p(8)),
        (p(6), p(10)),
        (p(5), p(9)),
        (p(10), p(9)),
        (p(9), p(11)),
        (p(5), p(11)),
        (p(8), p(11)),
    ];
    AcDag::from_edges(&truth.candidates(), truth.failure(), &edges)
}

#[test]
fn tiny_capacity_engine_stays_deterministic_and_consistent() {
    let truth = figure4_ground_truth();
    let dag = Arc::new(figure4_dag(&truth));
    let job =
        |name: &str| DiscoveryJob::oracle(name, Arc::clone(&dag), truth.clone(), Strategy::Aid, 7);

    // A capacity far below one session's working set: almost nothing is
    // retained between sessions.
    let engine = Engine::new(EngineConfig {
        workers: 2,
        cache_shards: 2,
        cache_capacity: 4,
        max_pending: 4,
    });
    let r1 = engine.run_all(vec![job("first")]).remove(0);
    let r2 = engine.run_all(vec![job("second")]).remove(0);
    let r3 = engine.run_all(vec![job("third")]).remove(0);
    assert_eq!(r1.result, r2.result, "eviction must not change answers");
    assert_eq!(r2.result, r3.result);
    let causal: Vec<u32> = r1.result.causal.iter().map(|q| q.raw()).collect();
    assert_eq!(causal, vec![0, 1, 10], "the Figure 4 ground truth");

    let stats = engine.stats();
    assert!(
        stats.cache_evictions > 0,
        "a 4-entry cache must evict across three sessions: {stats:?}"
    );
    assert!(
        stats.cache_entries <= 4 + 2,
        "entries {} must stay near the bound",
        stats.cache_entries
    );
    // The accounting identity eviction must preserve: every real execution
    // is exactly one cache miss that ran (hits and coalesced waits never
    // execute), no matter how many times the shards were flushed.
    assert_eq!(
        stats.executions, stats.cache_misses,
        "executions must equal misses: {stats:?}"
    );
    // With almost no retention, the repeat sessions mostly re-execute:
    // strictly more executions than one cold session needs.
    let reference = Engine::new(EngineConfig {
        workers: 2,
        cache_shards: 2,
        cache_capacity: 1 << 20,
        max_pending: 4,
    });
    let cold = reference.run_all(vec![job("cold")]).remove(0);
    assert_eq!(cold.result, r1.result);
    let full = reference.stats();
    assert!(
        stats.executions > full.executions,
        "tiny cache {} vs roomy cache {} executions",
        stats.executions,
        full.executions
    );
    assert_eq!(full.executions, full.cache_misses);
}
