//! The virtual machine: executes one run of a [`Program`] under an
//! [`InterventionPlan`], producing a [`Trace`].
//!
//! # Execution model
//!
//! * One global virtual clock. Every micro-step advances it by exactly one
//!   tick, so timestamps are unique and totally ordered within a run.
//! * At each step the scheduler picks a runnable thread uniformly at random
//!   (seeded RNG) — this is the runtime nondeterminism that makes the bug
//!   classes intermittent.
//! * `Compute`/`JitterCompute`/triggered `FlakyDelay` burn their ticks one
//!   micro-step at a time, so other threads can interleave *during* long
//!   work (essential for realistic overlap semantics).
//! * An exception unwinds the stack frame by frame; every method it escapes
//!   records `exception = Some(kind), caught = false`. A `TryCall` boundary
//!   or an injected [`Intervention::CatchException`] absorbs it (`caught =
//!   true` on that method's event) and the caller resumes. An exception
//!   escaping a thread root crashes the whole run (an intermittent failure),
//!   with a [`FailureSignature`] naming the kind and the method that threw.
//! * A cyclic lock/join wait is reported as a `Deadlock` failure; exceeding
//!   the step budget as a `Timeout` failure (models hangs).
//! * Liveness valve: if only `WaitUntil`/`ForceOrder`-blocked threads remain,
//!   the lowest-indexed one is forcibly released — interventions are best
//!   effort and must never wedge the run.

use crate::plan::{Intervention, InterventionPlan};
use crate::program::{Cond, Expr, InvariantMode, MethodDef, Op, Program, NUM_REGS};
use aid_trace::{
    AccessEvent, AccessKind, ChannelId, FailureSignature, MethodEvent, MethodId, MsgEvent, MsgKind,
    ObjectId, Outcome, ThreadId, Time, Trace,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Tuning knobs for a run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Step budget before the run is declared a `Timeout` failure.
    pub max_steps: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { max_steps: 200_000 }
    }
}

/// Exception kind used for deadlocked runs.
pub const DEADLOCK_KIND: &str = "Deadlock";
/// Exception kind used for runs exceeding the step budget.
pub const TIMEOUT_KIND: &str = "Timeout";

#[derive(Clone, Debug, PartialEq)]
enum ThreadState {
    NotStarted,
    Ready,
    BlockedLock(ObjectId),
    BlockedInjectedLock(usize),
    BlockedJoin(usize),
    Sleeping(Time),
    BlockedWait,
    BlockedOrder(MethodId),
    /// Blocked on a full bounded channel; wakes when a receive frees a slot.
    BlockedSend(ChannelId),
    /// Blocked on an empty mailbox; wakes on delivery or at the deadline
    /// (`Time::MAX` = wait forever). Unlike `BlockedWait`/`BlockedOrder`,
    /// channel waits are *not* freed by the liveness valve — a circular
    /// channel wait is a real deadlock and must fail as one.
    BlockedRecv {
        chan: ChannelId,
        deadline: Time,
    },
    Done,
}

/// A message either in transit or sitting in a mailbox.
struct Msg {
    seq: u32,
    value: i64,
    /// Sender's clock at send time.
    sent: Time,
    /// When the pump moves it from transit into the mailbox.
    deliver_at: Time,
    /// Sending thread (delivery events are attributed to it).
    sender: ThreadId,
    dup: bool,
}

/// Per-channel runtime state.
struct ChanRt {
    /// Sent but not yet delivered, unordered (the pump scans for due ones).
    transit: Vec<Msg>,
    /// Delivered and receiver-visible, in delivery order.
    mailbox: VecDeque<Msg>,
    next_seq: u32,
}

struct Frame {
    method: MethodId,
    instance: u32,
    pc: usize,
    /// Stamped lazily at the first executed body op, so the window excludes
    /// scheduling latency, injected start-delays, and lock waits.
    start: Time,
    started: bool,
    accesses: Vec<AccessEvent>,
    returned: Option<i64>,
    /// Remaining ticks of an in-progress Compute/JitterCompute/FlakyDelay.
    burn: u64,
    /// Whether an exception escaping this frame is absorbed at its boundary
    /// (program `TryCall` or injected `CatchException`).
    catch_boundary: bool,
    /// Injected serialize-lock ids acquired at entry (released at pop).
    injected_locks: Vec<usize>,
    /// Injected lock ids still to acquire at entry.
    pending_injected: Vec<usize>,
    /// Program locks acquired within this frame (released at pop).
    program_locks: Vec<ObjectId>,
    /// Remaining end-delay ticks to burn before the frame pops.
    end_delay: u64,
    /// True once the body finished and only the end-delay remains.
    in_epilogue: bool,
    /// Deadline of an in-progress timed `Recv` at this frame's current pc.
    /// Lets the re-executed op distinguish first execution (None) from a
    /// woken retry (Some, not yet due) from a timeout (Some, due).
    recv_deadline: Option<Time>,
}

struct ThreadRt {
    state: ThreadState,
    frames: Vec<Frame>,
    regs: [i64; NUM_REGS],
    entered: bool,
}

/// The machine for a single run.
pub struct Machine<'p> {
    program: &'p Program,
    plan: &'p InterventionPlan,
    config: SimConfig,
    seed: u64,
    clock: Time,
    shared: Vec<i64>,
    /// Program lock owners (indexed by object id).
    lock_owner: Vec<Option<usize>>,
    /// Injected lock state: (owner thread, reentrancy depth), keyed by
    /// intervention index.
    injected_locks: Vec<(usize, Option<usize>, u32)>,
    threads: Vec<ThreadRt>,
    started_instances: Vec<u32>,
    completed_instances: Vec<u32>,
    events: Vec<MethodEvent>,
    channels: Vec<ChanRt>,
    msgs: Vec<MsgEvent>,
    /// Per-invariant "has held at some observation point" flag (only
    /// meaningful for `Eventually` invariants).
    eventually_ok: Vec<bool>,
    failure: Option<FailureSignature>,
    rng_sched: StdRng,
    rng_prog: StdRng,
}

impl<'p> Machine<'p> {
    /// Prepares a machine for one run.
    pub fn new(
        program: &'p Program,
        plan: &'p InterventionPlan,
        config: SimConfig,
        seed: u64,
    ) -> Self {
        let threads = program
            .threads
            .iter()
            .map(|t| ThreadRt {
                state: if t.auto_start {
                    ThreadState::Ready
                } else {
                    ThreadState::NotStarted
                },
                frames: Vec::new(),
                regs: [0; NUM_REGS],
                entered: false,
            })
            .collect();
        let injected_locks = plan
            .serialize_pairs()
            .map(|(idx, _, _)| (idx, None, 0))
            .collect();
        Machine {
            program,
            plan,
            config,
            seed,
            clock: 0,
            shared: program.objects.iter().map(|o| o.initial).collect(),
            lock_owner: vec![None; program.objects.len()],
            injected_locks,
            threads,
            started_instances: vec![0; program.methods.len()],
            completed_instances: vec![0; program.methods.len()],
            events: Vec::new(),
            channels: program
                .channels
                .iter()
                .map(|_| ChanRt {
                    transit: Vec::new(),
                    mailbox: VecDeque::new(),
                    next_seq: 0,
                })
                .collect(),
            msgs: Vec::new(),
            eventually_ok: vec![false; program.invariants.len()],
            failure: None,
            rng_sched: StdRng::seed_from_u64(seed),
            rng_prog: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Runs to completion and returns the trace.
    pub fn run(mut self) -> Trace {
        // Initial observation point: an `always` invariant false over the
        // initial state fails immediately; an `eventually` one may already
        // hold.
        let init_origin = self.program.threads[0].entry;
        self.check_invariants(init_origin);
        let mut steps: u64 = 0;
        loop {
            if self.failure.is_some() {
                break;
            }
            if self.threads.iter().all(|t| t.state == ThreadState::Done) {
                break;
            }
            let Some(tid) = self.pick_thread() else {
                // No thread can make progress.
                if self.release_liveness_valve() {
                    continue;
                }
                self.fail_all(DEADLOCK_KIND);
                break;
            };
            self.step(tid);
            steps += 1;
            if steps >= self.config.max_steps {
                self.fail_all(TIMEOUT_KIND);
                break;
            }
        }
        self.finish()
    }

    /// Delivers every in-transit message that has come due, moving it into
    /// its channel's mailbox in `(deliver_at, channel, seq, dup)` order.
    /// Runs before every scheduling decision, so receivers observe a
    /// delivery at the first pick after its delivery tick. Delivery does not
    /// change channel occupancy (transit + mailbox), so no invariant
    /// observation point is needed here.
    fn pump(&mut self) {
        if self.channels.is_empty() {
            return;
        }
        loop {
            let mut best: Option<(Time, usize, u32, bool, usize)> = None;
            for ci in 0..self.channels.len() {
                for (i, m) in self.channels[ci].transit.iter().enumerate() {
                    if m.deliver_at <= self.clock {
                        let key = (m.deliver_at, ci, m.seq, m.dup);
                        if best.map_or(true, |(t, c, s, d, _)| key < (t, c, s, d)) {
                            best = Some((m.deliver_at, ci, m.seq, m.dup, i));
                        }
                    }
                }
            }
            let Some((_, ci, _, _, idx)) = best else {
                break;
            };
            let msg = self.channels[ci].transit.remove(idx);
            self.msgs.push(MsgEvent {
                channel: ChannelId::from_raw(ci as u32),
                kind: MsgKind::Deliver,
                seq: msg.seq,
                value: msg.value,
                sent: msg.sent,
                at: msg.deliver_at,
                thread: msg.sender,
                dup: msg.dup,
            });
            self.channels[ci].mailbox.push_back(msg);
        }
    }

    /// Returns a runnable thread chosen at random, unblocking what can be
    /// unblocked first. `None` if nothing can run.
    fn pick_thread(&mut self) -> Option<usize> {
        self.pump();
        let mut ready: Vec<usize> = Vec::new();
        let mut min_wake: Option<Time> = None;
        for tid in 0..self.threads.len() {
            let state = self.threads[tid].state.clone();
            match state {
                ThreadState::Ready => ready.push(tid),
                ThreadState::Sleeping(until) => {
                    if self.clock >= until {
                        self.threads[tid].state = ThreadState::Ready;
                        ready.push(tid);
                    } else {
                        min_wake = Some(min_wake.map_or(until, |m: Time| m.min(until)));
                    }
                }
                ThreadState::BlockedLock(lock) => {
                    if self.lock_owner[lock.index()].is_none() {
                        self.threads[tid].state = ThreadState::Ready;
                        ready.push(tid);
                    }
                }
                ThreadState::BlockedInjectedLock(slot) => {
                    let (_, owner, _) = self.injected_locks[slot];
                    if owner.is_none() || owner == Some(tid) {
                        self.threads[tid].state = ThreadState::Ready;
                        ready.push(tid);
                    }
                }
                ThreadState::BlockedJoin(target) => {
                    if self.threads[target].state == ThreadState::Done {
                        self.threads[tid].state = ThreadState::Ready;
                        ready.push(tid);
                    }
                }
                ThreadState::BlockedWait => {
                    let cond = self.current_wait_cond(tid);
                    if let Some(c) = cond {
                        if self.eval_cond(&c, tid) {
                            self.threads[tid].state = ThreadState::Ready;
                            ready.push(tid);
                        }
                    }
                }
                ThreadState::BlockedOrder(first) => {
                    if self.completed_instances[first.index()] > 0 {
                        self.threads[tid].state = ThreadState::Ready;
                        ready.push(tid);
                    }
                }
                ThreadState::BlockedSend(chan) => {
                    let def_cap = self.program.channels[chan.index()].capacity;
                    let ch = &self.channels[chan.index()];
                    let occupancy = ch.transit.len() + ch.mailbox.len();
                    if def_cap.map_or(true, |c| occupancy < c as usize) {
                        self.threads[tid].state = ThreadState::Ready;
                        ready.push(tid);
                    }
                }
                ThreadState::BlockedRecv { chan, deadline } => {
                    if !self.channels[chan.index()].mailbox.is_empty() || self.clock >= deadline {
                        self.threads[tid].state = ThreadState::Ready;
                        ready.push(tid);
                    } else if deadline != Time::MAX {
                        min_wake = Some(min_wake.map_or(deadline, |m: Time| m.min(deadline)));
                    }
                }
                ThreadState::NotStarted | ThreadState::Done => {}
            }
        }
        if ready.is_empty() {
            // In-transit deliveries are wake events too: a receiver blocked
            // on an empty mailbox becomes runnable once the pump delivers.
            // (All transit messages are strictly in the future here — the
            // pump above already delivered everything due.)
            for ch in &self.channels {
                for m in &ch.transit {
                    min_wake = Some(min_wake.map_or(m.deliver_at, |w: Time| w.min(m.deliver_at)));
                }
            }
            if let Some(wake) = min_wake {
                // Everyone is asleep: jump time forward and retry.
                self.clock = wake;
                return self.pick_thread();
            }
            return None;
        }
        let i = self.rng_sched.random_range(0..ready.len());
        Some(ready[i])
    }

    fn current_wait_cond(&self, tid: usize) -> Option<Cond> {
        let frame = self.threads[tid].frames.last()?;
        match self.program.method(frame.method).body.get(frame.pc) {
            Some(Op::WaitUntil { cond }) => Some(cond.clone()),
            _ => None,
        }
    }

    /// Forcibly releases one condition-blocked thread so best-effort
    /// interventions can never wedge the run. Returns true if one was freed.
    fn release_liveness_valve(&mut self) -> bool {
        for tid in 0..self.threads.len() {
            match self.threads[tid].state {
                ThreadState::BlockedWait => {
                    // Skip past the WaitUntil op.
                    if let Some(f) = self.threads[tid].frames.last_mut() {
                        f.pc += 1;
                    }
                    self.threads[tid].state = ThreadState::Ready;
                    return true;
                }
                ThreadState::BlockedOrder(_) => {
                    self.threads[tid].state = ThreadState::Ready;
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    /// Executes one micro-step of thread `tid`.
    fn step(&mut self, tid: usize) {
        self.clock += 1;
        // Lazily enter the thread's root method on first schedule.
        if !self.threads[tid].entered {
            self.threads[tid].entered = true;
            let entry = self.program.threads[tid].entry;
            self.push_frame(tid, entry, false);
            return;
        }

        // Pending injected-lock acquisitions at method entry.
        if let Some(frame) = self.threads[tid].frames.last_mut() {
            if let Some(&slot) = frame.pending_injected.first() {
                let (_, owner, depth) = &mut self.injected_locks[slot];
                match owner {
                    None => {
                        *owner = Some(tid);
                        *depth = 1;
                        frame.pending_injected.remove(0);
                        frame.injected_locks.push(slot);
                    }
                    Some(o) if *o == tid => {
                        *depth += 1;
                        frame.pending_injected.remove(0);
                        frame.injected_locks.push(slot);
                    }
                    Some(_) => {
                        self.threads[tid].state = ThreadState::BlockedInjectedLock(slot);
                    }
                }
                return;
            }
            // In-progress burn (compute/delay).
            if frame.burn > 0 {
                frame.burn -= 1;
                return;
            }
            if frame.in_epilogue {
                if frame.end_delay > 0 {
                    frame.end_delay -= 1;
                    return;
                }
                self.pop_frame(tid, None);
                return;
            }
        } else {
            // Root frame popped: thread is done.
            self.threads[tid].state = ThreadState::Done;
            return;
        }

        let frame = self.threads[tid]
            .frames
            .last()
            .expect("frame checked above");
        let method = frame.method;
        let body = &self.program.method(method).body;
        if frame.pc >= body.len() {
            // Fell off the end: enter epilogue.
            self.enter_epilogue(tid);
            return;
        }
        let op = body[frame.pc].clone();
        {
            let f = self.threads[tid].frames.last_mut().unwrap();
            if !f.started {
                f.started = true;
                f.start = self.clock;
            }
        }
        self.exec_op(tid, op);
        // Same-tick pop: if the op we just ran was the frame's last and it
        // neither pushed a callee nor blocked, close the frame now so the
        // method's window ends exactly at its final operation (critical for
        // race-window semantics).
        if self.threads[tid].state == ThreadState::Ready {
            if let Some(f) = self.threads[tid].frames.last() {
                let done = !f.in_epilogue
                    && f.burn == 0
                    && f.pending_injected.is_empty()
                    && f.pc >= self.program.method(f.method).body.len();
                if done {
                    self.enter_epilogue(tid);
                }
            }
        }
    }

    fn exec_op(&mut self, tid: usize, op: Op) {
        match op {
            Op::Read { object, reg } => {
                let v = self.shared[object.index()];
                self.threads[tid].regs[reg.0 as usize] = v;
                self.record_access(tid, object, AccessKind::Read);
                self.advance(tid);
            }
            Op::Write { object, value } => {
                let v = self.eval_expr(&value, tid);
                self.shared[object.index()] = v;
                self.record_access(tid, object, AccessKind::Write);
                let origin = self.threads[tid].frames.last().unwrap().method;
                self.check_invariants(origin);
                self.advance(tid);
            }
            Op::ThrowIfObj {
                object,
                cmp,
                rhs,
                kind,
            } => {
                let v = self.shared[object.index()];
                self.record_access(tid, object, AccessKind::Read);
                let r = self.eval_expr(&rhs, tid);
                if cmp.eval(v, r) {
                    self.raise(tid, &kind);
                } else {
                    self.advance(tid);
                }
            }
            Op::Compute { cost } => {
                let f = self.threads[tid].frames.last_mut().unwrap();
                f.burn = cost.saturating_sub(1);
                self.advance(tid);
            }
            Op::JitterCompute { min, max } => {
                let total = if max > min {
                    self.rng_sched.random_range(min..=max)
                } else {
                    min
                };
                let f = self.threads[tid].frames.last_mut().unwrap();
                f.burn = total.saturating_sub(1);
                self.advance(tid);
            }
            Op::FlakyDelay { prob, ticks } => {
                let method = self.threads[tid].frames.last().unwrap().method;
                let instance = self.threads[tid].frames.last().unwrap().instance;
                let suppressed = self.plan.interventions.iter().any(|iv| {
                    matches!(iv, Intervention::SuppressFlaky { method: m, instance: f }
                        if *m == method && f.matches(instance))
                });
                if !suppressed && self.rng_prog.random_bool(prob.clamp(0.0, 1.0)) {
                    let f = self.threads[tid].frames.last_mut().unwrap();
                    f.burn = ticks.saturating_sub(1);
                }
                self.advance(tid);
            }
            Op::LocalSet { reg, value } => {
                let v = self.eval_expr(&value, tid);
                self.threads[tid].regs[reg.0 as usize] = v;
                self.advance(tid);
            }
            Op::SetIf {
                reg,
                cond,
                then_value,
                else_value,
            } => {
                let v = if self.eval_cond(&cond, tid) {
                    self.eval_expr(&then_value, tid)
                } else {
                    self.eval_expr(&else_value, tid)
                };
                self.threads[tid].regs[reg.0 as usize] = v;
                self.advance(tid);
            }
            Op::ComputeIf { cond, cost } => {
                if self.eval_cond(&cond, tid) {
                    let f = self.threads[tid].frames.last_mut().unwrap();
                    f.burn = cost.saturating_sub(1);
                }
                self.advance(tid);
            }
            Op::RandRange { reg, lo, hi } => {
                let frame = self.threads[tid].frames.last().unwrap();
                let (method, instance) = (frame.method, frame.instance);
                let forced = self.plan.interventions.iter().find_map(|iv| match iv {
                    Intervention::ForceRand {
                        method: m,
                        instance: f,
                        value,
                    } if *m == method && f.matches(instance) => Some(*value),
                    _ => None,
                });
                let v = forced.unwrap_or_else(|| self.rng_prog.random_range(lo..=hi));
                self.threads[tid].regs[reg.0 as usize] = v;
                self.advance(tid);
            }
            Op::Call { method } => {
                self.advance(tid);
                self.push_frame(tid, method, false);
            }
            Op::TryCall { method } => {
                self.advance(tid);
                self.push_frame(tid, method, true);
            }
            Op::Return { value } => {
                let v = value.map(|e| self.eval_expr(&e, tid));
                let f = self.threads[tid].frames.last_mut().unwrap();
                f.returned = v;
                self.enter_epilogue(tid);
            }
            Op::Throw { kind } => self.raise(tid, &kind),
            Op::ThrowIf { cond, kind } => {
                if self.eval_cond(&cond, tid) {
                    self.raise(tid, &kind);
                } else {
                    self.advance(tid);
                }
            }
            Op::Spawn { thread } => {
                assert!(
                    self.threads[thread].state == ThreadState::NotStarted,
                    "thread {thread} spawned twice (or auto-start)"
                );
                self.threads[thread].state = ThreadState::Ready;
                self.advance(tid);
            }
            Op::Join { thread } => {
                if self.threads[thread].state == ThreadState::Done {
                    self.advance(tid);
                } else {
                    self.threads[tid].state = ThreadState::BlockedJoin(thread);
                }
            }
            Op::Acquire { lock } => {
                if self.lock_owner[lock.index()].is_none() {
                    self.lock_owner[lock.index()] = Some(tid);
                    let f = self.threads[tid].frames.last_mut().unwrap();
                    f.program_locks.push(lock);
                    self.advance(tid);
                } else {
                    self.threads[tid].state = ThreadState::BlockedLock(lock);
                }
            }
            Op::Release { lock } => {
                assert_eq!(
                    self.lock_owner[lock.index()],
                    Some(tid),
                    "release of lock not owned"
                );
                self.lock_owner[lock.index()] = None;
                let f = self.threads[tid].frames.last_mut().unwrap();
                f.program_locks.retain(|&l| l != lock);
                self.advance(tid);
            }
            Op::Sleep { ticks } => {
                self.threads[tid].state = ThreadState::Sleeping(self.clock + ticks);
                self.advance(tid);
            }
            Op::WaitUntil { cond } => {
                if self.eval_cond(&cond, tid) {
                    self.advance(tid);
                } else {
                    self.threads[tid].state = ThreadState::BlockedWait;
                }
            }
            Op::Send {
                channel,
                value,
                guard,
            } => {
                // Guard first: a false guard skips the send entirely — no
                // event, no latency draw, no capacity check.
                if let Some(g) = guard {
                    if !self.eval_cond(&g, tid) {
                        self.advance(tid);
                        return;
                    }
                }
                let ci = channel.index();
                let def = &self.program.channels[ci];
                if let Some(cap) = def.capacity {
                    let occupancy =
                        self.channels[ci].transit.len() + self.channels[ci].mailbox.len();
                    if occupancy >= cap as usize {
                        // Full: block; the op re-executes (guard included)
                        // when a receive frees a slot.
                        self.threads[tid].state = ThreadState::BlockedSend(channel);
                        return;
                    }
                }
                let v = self.eval_expr(&value, tid);
                let (lat_min, lat_max) = (def.latency_min, def.latency_max);
                let latency = if lat_max > lat_min {
                    self.rng_sched.random_range(lat_min..=lat_max)
                } else {
                    lat_min
                };
                let seq = self.channels[ci].next_seq;
                self.channels[ci].next_seq += 1;
                let mut deliver_at = self.clock + latency;
                // Fault plane, resolved at send time: delays sum, drop wins
                // over duplicate.
                let mut dropped = false;
                let mut duplicate = false;
                let mut reorder_prev = false;
                for iv in &self.plan.interventions {
                    match iv {
                        Intervention::DelayDelivery {
                            channel: c,
                            seq: f,
                            ticks,
                        } if *c == channel && f.matches(seq) => deliver_at += *ticks,
                        Intervention::DropDelivery { channel: c, seq: f }
                            if *c == channel && f.matches(seq) =>
                        {
                            dropped = true;
                        }
                        Intervention::DuplicateDelivery { channel: c, seq: f }
                            if *c == channel && f.matches(seq) =>
                        {
                            duplicate = true;
                        }
                        Intervention::ReorderDelivery { channel: c, seq: f }
                            if *c == channel && seq > 0 && f.matches(seq - 1) =>
                        {
                            reorder_prev = true;
                        }
                        _ => {}
                    }
                }
                let sender = ThreadId::from_raw(tid as u32);
                let sender_method = self.threads[tid].frames.last().unwrap().method;
                self.msgs.push(MsgEvent {
                    channel,
                    kind: MsgKind::Send,
                    seq,
                    value: v,
                    sent: self.clock,
                    at: self.clock,
                    thread: sender,
                    dup: false,
                });
                if dropped {
                    self.msgs.push(MsgEvent {
                        channel,
                        kind: MsgKind::Drop,
                        seq,
                        value: v,
                        sent: self.clock,
                        at: self.clock,
                        thread: sender,
                        dup: false,
                    });
                } else {
                    self.channels[ci].transit.push(Msg {
                        seq,
                        value: v,
                        sent: self.clock,
                        deliver_at,
                        sender,
                        dup: false,
                    });
                    if duplicate {
                        self.channels[ci].transit.push(Msg {
                            seq,
                            value: v,
                            sent: self.clock,
                            deliver_at: deliver_at + 1,
                            sender,
                            dup: true,
                        });
                    }
                    if reorder_prev {
                        // Minimal pairwise reorder: push the predecessor's
                        // delivery one past this message's (if it is still in
                        // transit to be reordered at all).
                        let push_past = deliver_at + 1;
                        if let Some(prev) = self.channels[ci]
                            .transit
                            .iter_mut()
                            .find(|m| m.seq == seq - 1 && !m.dup)
                        {
                            prev.deliver_at = prev.deliver_at.max(push_past);
                        }
                    }
                }
                let obj = self.chan_object(channel);
                self.record_access(tid, obj, AccessKind::Write);
                self.check_invariants(sender_method);
                self.advance(tid);
            }
            Op::Recv {
                channel,
                reg,
                timeout,
            } => {
                let ci = channel.index();
                if let Some(msg) = self.channels[ci].mailbox.pop_front() {
                    self.threads[tid].regs[reg.0 as usize] = msg.value;
                    self.msgs.push(MsgEvent {
                        channel,
                        kind: MsgKind::Recv,
                        seq: msg.seq,
                        value: msg.value,
                        sent: msg.sent,
                        at: self.clock,
                        thread: ThreadId::from_raw(tid as u32),
                        dup: msg.dup,
                    });
                    let obj = self.chan_object(channel);
                    self.record_access(tid, obj, AccessKind::Read);
                    let f = self.threads[tid].frames.last_mut().unwrap();
                    f.recv_deadline = None;
                    let origin = f.method;
                    self.check_invariants(origin);
                    self.advance(tid);
                } else {
                    let dl = self.threads[tid].frames.last().unwrap().recv_deadline;
                    match dl {
                        None => {
                            // First execution: arm the deadline and block.
                            let deadline = if timeout == 0 {
                                Time::MAX
                            } else {
                                self.clock + timeout
                            };
                            self.threads[tid].frames.last_mut().unwrap().recv_deadline =
                                Some(deadline);
                            self.threads[tid].state = ThreadState::BlockedRecv {
                                chan: channel,
                                deadline,
                            };
                        }
                        Some(d) if self.clock >= d => {
                            // Timed out: -1 sentinel, no event, no access.
                            self.threads[tid].frames.last_mut().unwrap().recv_deadline = None;
                            self.threads[tid].regs[reg.0 as usize] = -1;
                            self.advance(tid);
                        }
                        Some(d) => {
                            // Woken spuriously (another receiver drained the
                            // delivery first): re-block until the deadline.
                            self.threads[tid].state = ThreadState::BlockedRecv {
                                chan: channel,
                                deadline: d,
                            };
                        }
                    }
                }
            }
        }
    }

    fn advance(&mut self, tid: usize) {
        if let Some(f) = self.threads[tid].frames.last_mut() {
            f.pc += 1;
        }
    }

    /// Pushes a frame for `method`, applying entry interventions.
    fn push_frame(&mut self, tid: usize, method: MethodId, caller_catches: bool) {
        let instance = self.started_instances[method.index()];
        self.started_instances[method.index()] += 1;

        // Premature return: the body never runs.
        let premature = self.plan.interventions.iter().find_map(|iv| match iv {
            Intervention::PrematureReturn {
                method: m,
                instance: f,
                value,
            } if *m == method && f.matches(instance) => Some(*value),
            _ => None,
        });
        if let Some(value) = premature {
            let mdef = self.program.method(method);
            assert!(
                mdef.pure,
                "premature-return intervention on impure method {}",
                mdef.name
            );
            if let Some(reg) = ret_reg(mdef) {
                self.threads[tid].regs[reg as usize] = value;
            }
            self.events.push(MethodEvent {
                method,
                instance,
                thread: ThreadId::from_raw(tid as u32),
                start: self.clock,
                end: self.clock,
                accesses: vec![],
                returned: Some(value),
                exception: None,
                caught: false,
            });
            self.completed_instances[method.index()] += 1;
            return;
        }

        let catch_injected = self.plan.interventions.iter().any(|iv| {
            matches!(iv, Intervention::CatchException { method: m, instance: f }
                if *m == method && f.matches(instance))
        });
        let delay_start: u64 = self
            .plan
            .interventions
            .iter()
            .filter_map(|iv| match iv {
                Intervention::DelayStart {
                    method: m,
                    instance: f,
                    ticks,
                } if *m == method && f.matches(instance) => Some(*ticks),
                _ => None,
            })
            .sum();
        let delay_end: u64 = self
            .plan
            .interventions
            .iter()
            .filter_map(|iv| match iv {
                Intervention::DelayEnd {
                    method: m,
                    instance: f,
                    ticks,
                } if *m == method && f.matches(instance) => Some(*ticks),
                _ => None,
            })
            .sum();
        let pending_injected: Vec<usize> = self
            .plan
            .serialize_pairs()
            .filter(|(_, a, b)| *a == method || *b == method)
            .map(|(slot_iv, _, _)| {
                self.injected_locks
                    .iter()
                    .position(|(idx, _, _)| *idx == slot_iv)
                    .expect("injected lock registered")
            })
            .collect();

        // Forced ordering holds the start back until `first` completed.
        let order_block = self.plan.interventions.iter().find_map(|iv| match iv {
            Intervention::ForceOrder {
                first,
                then,
                instance: f,
            } if *then == method && f.matches(instance) => Some(*first),
            _ => None,
        });

        self.threads[tid].frames.push(Frame {
            method,
            instance,
            pc: 0,
            start: self.clock,
            started: false,
            accesses: vec![],
            returned: None,
            burn: delay_start,
            catch_boundary: caller_catches || catch_injected,
            injected_locks: vec![],
            pending_injected,
            program_locks: vec![],
            end_delay: delay_end,
            in_epilogue: false,
            recv_deadline: None,
        });

        if let Some(first) = order_block {
            if self.completed_instances[first.index()] == 0 {
                self.threads[tid].state = ThreadState::BlockedOrder(first);
            }
        }
    }

    fn enter_epilogue(&mut self, tid: usize) {
        let f = self.threads[tid].frames.last_mut().unwrap();
        f.in_epilogue = true;
        f.burn = 0;
        if f.end_delay == 0 {
            self.pop_frame(tid, None);
        }
    }

    /// Pops the top frame, recording its event. `exception` carries an
    /// unwinding exception kind.
    fn pop_frame(&mut self, tid: usize, exception: Option<String>) -> bool {
        let mut frame = self.threads[tid].frames.pop().expect("pop with no frame");
        if !frame.started {
            frame.start = self.clock;
        }
        // Scoped cleanup: program locks, injected locks.
        for lock in frame.program_locks.drain(..) {
            if self.lock_owner[lock.index()] == Some(tid) {
                self.lock_owner[lock.index()] = None;
            }
        }
        for slot in frame.injected_locks.drain(..) {
            let (_, owner, depth) = &mut self.injected_locks[slot];
            if *owner == Some(tid) {
                *depth -= 1;
                if *depth == 0 {
                    *owner = None;
                }
            }
        }
        // Return-value alteration.
        let mut returned = frame.returned;
        let forced = self.plan.interventions.iter().find_map(|iv| match iv {
            Intervention::ForceReturn {
                method: m,
                instance: f,
                value,
            } if *m == frame.method && f.matches(frame.instance) => Some(*value),
            _ => None,
        });
        if let Some(v) = forced {
            let mdef = self.program.method(frame.method);
            assert!(
                mdef.pure,
                "force-return intervention on impure method {}",
                mdef.name
            );
            returned = Some(v);
            if let Some(reg) = ret_reg(mdef) {
                self.threads[tid].regs[reg as usize] = v;
            }
        }
        let caught = exception.is_some() && frame.catch_boundary;
        self.events.push(MethodEvent {
            method: frame.method,
            instance: frame.instance,
            thread: ThreadId::from_raw(tid as u32),
            start: frame.start,
            end: self.clock,
            accesses: std::mem::take(&mut frame.accesses),
            returned,
            exception: exception.clone(),
            caught,
        });
        self.completed_instances[frame.method.index()] += 1;
        if self.threads[tid].frames.is_empty() && exception.is_none() {
            self.threads[tid].state = ThreadState::Done;
        }
        caught
    }

    /// Raises an exception in thread `tid` and unwinds.
    fn raise(&mut self, tid: usize, kind: &str) {
        let origin = self.threads[tid]
            .frames
            .last()
            .expect("raise with no frame")
            .method;
        loop {
            if self.threads[tid].frames.is_empty() {
                // Escaped the thread root: the whole run fails.
                self.threads[tid].state = ThreadState::Done;
                self.failure = Some(FailureSignature {
                    kind: kind.to_string(),
                    method: origin,
                });
                return;
            }
            let caught = self.pop_frame(tid, Some(kind.to_string()));
            if caught {
                // Absorbed; caller resumes at its next op.
                return;
            }
        }
    }

    fn record_access(&mut self, tid: usize, object: ObjectId, kind: AccessKind) {
        let holds_lock = {
            let th = &self.threads[tid];
            th.frames
                .iter()
                .any(|f| !f.program_locks.is_empty() || !f.injected_locks.is_empty())
        };
        let at = self.clock;
        let f = self.threads[tid].frames.last_mut().unwrap();
        f.accesses.push(AccessEvent {
            object,
            kind,
            at,
            locked: holds_lock,
        });
    }

    fn eval_expr(&mut self, e: &Expr, tid: usize) -> i64 {
        match e {
            Expr::Const(v) => *v,
            Expr::Reg(r) => self.threads[tid].regs[r.0 as usize],
            Expr::Obj(o) => self.shared[o.index()],
            Expr::Now => self.clock as i64,
            Expr::ChanLen(c) => {
                let ch = &self.channels[c.index()];
                (ch.transit.len() + ch.mailbox.len()) as i64
            }
            Expr::Add(a, b) => self.eval_expr(a, tid).wrapping_add(self.eval_expr(b, tid)),
            Expr::Sub(a, b) => self.eval_expr(a, tid).wrapping_sub(self.eval_expr(b, tid)),
        }
    }

    fn eval_cond(&mut self, c: &Cond, tid: usize) -> bool {
        let l = self.eval_expr(&c.lhs, tid);
        let r = self.eval_expr(&c.rhs, tid);
        c.cmp.eval(l, r)
    }

    /// The per-channel pseudo-object channel accesses are recorded on, so
    /// predicate extraction sees sends/receives as plain shared-state
    /// accesses. Channel ids live past the real objects in the trace's
    /// object space (interned as `chan:<name>` by the runner).
    fn chan_object(&self, chan: ChannelId) -> ObjectId {
        ObjectId::from_raw((self.program.objects.len() + chan.index()) as u32)
    }

    /// Observation point: evaluates every declared invariant against the
    /// current shared/channel state. A violated `always` invariant fails the
    /// run immediately with kind `always:<name>`, attributed to `origin` —
    /// the method whose effect was just applied. An `eventually` invariant
    /// that holds here is latched as satisfied.
    fn check_invariants(&mut self, origin: MethodId) {
        if self.program.invariants.is_empty() || self.failure.is_some() {
            return;
        }
        for (i, inv) in self.program.invariants.iter().enumerate() {
            // Invariant conditions are register-free (enforced by
            // `Program::validate`), so the evaluating thread is irrelevant.
            let holds = self.eval_cond(&inv.cond, 0);
            match inv.mode {
                InvariantMode::Always => {
                    if !holds {
                        self.fail_all_from(&format!("always:{}", inv.name), Some(origin));
                        return;
                    }
                }
                InvariantMode::Eventually => {
                    if holds {
                        self.eventually_ok[i] = true;
                    }
                }
            }
        }
    }

    /// Declares a global abnormal end (deadlock/timeout), closing all open
    /// frames with the failure kind.
    fn fail_all(&mut self, kind: &str) {
        self.fail_all_from(kind, None);
    }

    /// As [`Self::fail_all`] but with an explicit responsible method.
    /// `None` falls back to the first thread with an open frame (the
    /// deadlock/timeout attribution rule).
    fn fail_all_from(&mut self, kind: &str, origin: Option<MethodId>) {
        let origin = origin.unwrap_or_else(|| {
            self.threads
                .iter()
                .find_map(|t| t.frames.last().map(|f| f.method))
                .unwrap_or_else(|| MethodId::from_raw(0))
        });
        for tid in 0..self.threads.len() {
            while !self.threads[tid].frames.is_empty() {
                self.pop_frame(tid, Some(kind.to_string()));
            }
            self.threads[tid].state = ThreadState::Done;
        }
        self.failure = Some(FailureSignature {
            kind: kind.to_string(),
            method: origin,
        });
    }

    fn finish(mut self) -> Trace {
        // Close any frames left open by an early crash on another thread.
        for tid in 0..self.threads.len() {
            while let Some(mut frame) = self.threads[tid].frames.pop() {
                self.events.push(MethodEvent {
                    method: frame.method,
                    instance: frame.instance,
                    thread: ThreadId::from_raw(tid as u32),
                    start: frame.start,
                    end: self.clock,
                    accesses: std::mem::take(&mut frame.accesses),
                    returned: None,
                    exception: None,
                    caught: false,
                });
            }
        }
        // An `eventually` invariant that never held is a failure detected at
        // run end (first in declaration order wins), attributed to the main
        // thread's entry method — unless the run already failed for a more
        // specific reason.
        if self.failure.is_none() {
            for (i, inv) in self.program.invariants.iter().enumerate() {
                if matches!(inv.mode, InvariantMode::Eventually) && !self.eventually_ok[i] {
                    self.failure = Some(FailureSignature {
                        kind: format!("eventually:{}", inv.name),
                        method: self.program.threads[0].entry,
                    });
                    break;
                }
            }
        }
        let outcome = match self.failure {
            Some(sig) => Outcome::Failure(sig),
            None => Outcome::Success,
        };
        let mut trace = Trace {
            seed: self.seed,
            events: self.events,
            msgs: self.msgs,
            outcome,
            duration: self.clock,
        };
        trace.normalize();
        trace
    }
}

/// The register a method leaves its result in, inferred from a trailing
/// `Return { value: Some(Reg(r)) }`. Used by forced-return interventions to
/// make the forced value visible to the rest of the program, not just to the
/// trace.
fn ret_reg(m: &MethodDef) -> Option<u8> {
    m.body.iter().rev().find_map(|op| match op {
        Op::Return {
            value: Some(Expr::Reg(r)),
        } => Some(r.0),
        _ => None,
    })
}
