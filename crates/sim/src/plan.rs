//! Fault-injection plans: the concrete interventions of Figure 2.
//!
//! An [`InterventionPlan`] is handed to the machine before a run; the machine
//! consults it at method entry/exit, at flaky-delay sites, and when
//! exceptions unwind. Each [`Intervention`] "repairs" one predicate class by
//! forcing the behaviour observed in successful runs:
//!
//! | Predicate (Figure 2)           | Intervention                            |
//! |--------------------------------|-----------------------------------------|
//! | data race on X between M1, M2  | [`Intervention::SerializeMethods`]       |
//! | method M fails                 | [`Intervention::CatchException`]         |
//! | M runs too fast                | [`Intervention::DelayEnd`]               |
//! | M runs too slow                | [`Intervention::PrematureReturn`] (pure) or [`Intervention::SuppressFlaky`] |
//! | M returns incorrect value      | [`Intervention::ForceReturn`] (pure)     |
//! | order violation (B before A)   | [`Intervention::ForceOrder`]             |
//! | random value collision         | [`Intervention::ForceRand`]              |

use aid_trace::{ChannelId, MethodId};
use serde::{Deserialize, Serialize};

/// Restricts an intervention to one dynamic instance of a method, or to all.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceFilter {
    /// Apply to every dynamic execution of the method.
    All,
    /// Apply only to the k-th dynamic execution (0-based, per run).
    Only(u32),
}

impl InstanceFilter {
    /// Whether the filter matches instance `k`.
    pub fn matches(self, k: u32) -> bool {
        match self {
            InstanceFilter::All => true,
            InstanceFilter::Only(want) => want == k,
        }
    }
}

/// A single fault injection.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Intervention {
    /// Put an (injected, reentrant) lock around the bodies of `a` and `b` so
    /// they can never temporally overlap — the lock-insertion repair for
    /// data races (Figure 9(d)).
    SerializeMethods {
        /// First racing method.
        a: MethodId,
        /// Second racing method.
        b: MethodId,
    },
    /// Delay the start of a method by `ticks`.
    DelayStart {
        /// Target method.
        method: MethodId,
        /// Which instances.
        instance: InstanceFilter,
        /// Injected delay.
        ticks: u64,
    },
    /// Delay the end of a method by `ticks` (repairs "runs too fast").
    DelayEnd {
        /// Target method.
        method: MethodId,
        /// Which instances.
        instance: InstanceFilter,
        /// Injected delay.
        ticks: u64,
    },
    /// Return `value` immediately at entry, skipping the body (repairs "runs
    /// too slow" for *pure* methods: "prematurely return from M the correct
    /// value that M returns in all successful executions").
    PrematureReturn {
        /// Target method (must be pure).
        method: MethodId,
        /// Which instances.
        instance: InstanceFilter,
        /// The value returned in successful runs.
        value: i64,
    },
    /// Run the body but override the returned value (repairs "returns
    /// incorrect value" for *pure* methods).
    ForceReturn {
        /// Target method (must be pure).
        method: MethodId,
        /// Which instances.
        instance: InstanceFilter,
        /// The value returned in successful runs.
        value: i64,
    },
    /// Catch any exception escaping the method at its boundary (the
    /// try-catch repair for "method M fails").
    CatchException {
        /// Target method.
        method: MethodId,
        /// Which instances.
        instance: InstanceFilter,
    },
    /// Block the start of `then` until `first` has completed at least once
    /// (repairs order violations).
    ForceOrder {
        /// Method that must finish first.
        first: MethodId,
        /// Method whose start is held back.
        then: MethodId,
        /// Which instances of `then`.
        instance: InstanceFilter,
    },
    /// Disable `FlakyDelay` sites inside the method (repairs "runs too slow"
    /// when the slowness stems from transient-fault handling).
    SuppressFlaky {
        /// Target method.
        method: MethodId,
        /// Which instances.
        instance: InstanceFilter,
    },
    /// Make `RandRange` sites inside the method yield `value` (repairs
    /// random-collision root causes).
    ForceRand {
        /// Target method.
        method: MethodId,
        /// Which instances.
        instance: InstanceFilter,
        /// Forced value.
        value: i64,
    },
    /// Fault plane: postpone delivery of matching messages by `ticks`.
    /// Resolved at send time; multiple matching delays sum. The `seq` filter
    /// selects messages by their per-channel send sequence number, the same
    /// way `instance` filters select dynamic method executions.
    DelayDelivery {
        /// Target channel.
        channel: ChannelId,
        /// Which messages (by send sequence number).
        seq: InstanceFilter,
        /// Extra delivery latency.
        ticks: u64,
    },
    /// Fault plane: discard matching messages at send time. The send is
    /// recorded (plus a `Drop` message event), but the message never enters
    /// transit — the receiver-visible lost-delivery fault.
    DropDelivery {
        /// Target channel.
        channel: ChannelId,
        /// Which messages.
        seq: InstanceFilter,
    },
    /// Fault plane: enqueue a second copy of matching messages (marked
    /// `dup`), delivered one tick after the original.
    DuplicateDelivery {
        /// Target channel.
        channel: ChannelId,
        /// Which messages.
        seq: InstanceFilter,
    },
    /// Fault plane: deliver a matching message *after* its successor. When
    /// the next message on the channel is sent, a still-in-transit matching
    /// message has its delivery pushed one tick past the successor's — the
    /// minimal pairwise reordering.
    ReorderDelivery {
        /// Target channel.
        channel: ChannelId,
        /// Which messages.
        seq: InstanceFilter,
    },
}

/// A set of interventions applied together in one (group) intervention run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InterventionPlan {
    /// The injections.
    pub interventions: Vec<Intervention>,
}

impl InterventionPlan {
    /// The empty plan (a plain re-execution).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A plan with one intervention.
    pub fn single(i: Intervention) -> Self {
        InterventionPlan {
            interventions: vec![i],
        }
    }

    /// Adds an intervention.
    pub fn push(&mut self, i: Intervention) {
        self.interventions.push(i);
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.interventions.is_empty()
    }

    /// Iterates the serialize-method pairs (used by the machine to build its
    /// injected lock table; lock order = intervention index, so nested
    /// acquisition follows one global order and cannot deadlock).
    pub fn serialize_pairs(&self) -> impl Iterator<Item = (usize, MethodId, MethodId)> + '_ {
        self.interventions
            .iter()
            .enumerate()
            .filter_map(|(i, iv)| match iv {
                Intervention::SerializeMethods { a, b } => Some((i, *a, *b)),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_filter_semantics() {
        assert!(InstanceFilter::All.matches(0));
        assert!(InstanceFilter::All.matches(7));
        assert!(InstanceFilter::Only(2).matches(2));
        assert!(!InstanceFilter::Only(2).matches(3));
    }

    #[test]
    fn serialize_pairs_are_enumerated_in_order() {
        let m = MethodId::from_raw;
        let mut plan = InterventionPlan::empty();
        plan.push(Intervention::DelayStart {
            method: m(0),
            instance: InstanceFilter::All,
            ticks: 5,
        });
        plan.push(Intervention::SerializeMethods { a: m(1), b: m(2) });
        plan.push(Intervention::SerializeMethods { a: m(3), b: m(4) });
        let pairs: Vec<_> = plan.serialize_pairs().collect();
        assert_eq!(pairs, vec![(1, m(1), m(2)), (2, m(3), m(4))]);
    }
}
