//! Lowering a [`Program`] to flat bytecode for the register VM in
//! [`crate::vm`].
//!
//! The tree-walk machine (the crate-private `machine` module) re-clones
//! each `Op` (Strings, boxed `Expr` trees) on every executed micro-step and
//! re-scans the intervention plan linearly at every hook site. Compilation
//! removes both costs while preserving semantics *exactly*:
//!
//! * Every method body becomes a contiguous slice of fixed-size, `Copy`
//!   [`Instr`]s inside one shared code segment — one instruction per source
//!   `Op`, so the program counter and the per-op clock semantics of the
//!   tree-walk machine carry over unchanged.
//! * Expressions are flattened into one postfix [`EOp`] pool; an
//!   [`ExprRef`] is a `(start, len)` window into it, evaluated with a
//!   reusable scratch stack (no recursion, no `Box` chasing).
//! * Exception-kind strings are interned into a table; instructions carry
//!   `u32` kind ids. [`DEADLOCK_KIND`] and
//!   [`TIMEOUT_KIND`] occupy the first two slots so
//!   abnormal ends need no lookups.
//! * Per-method metadata (purity, return register, code window) is
//!   precomputed, so intervention hooks index a table instead of scanning
//!   the plan.
//!
//! Compilation is a pure function of the `Program`; it never inspects the
//! intervention plan, so one compiled image serves every plan and seed
//! (plans are lowered separately, per run, by the VM).

use crate::machine::{DEADLOCK_KIND, TIMEOUT_KIND};
use crate::program::{Cmp, Cond, Expr, Op, Program};

/// Interned exception-kind id (index into [`CompiledProgram::kinds`]).
pub type KindId = u32;

/// Kind id of [`DEADLOCK_KIND`].
pub const KIND_DEADLOCK: KindId = 0;
/// Kind id of [`TIMEOUT_KIND`].
pub const KIND_TIMEOUT: KindId = 1;

/// A `(start, len)` window into the postfix expression pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExprRef {
    /// First [`EOp`] of the expression.
    pub start: u32,
    /// Number of [`EOp`]s (postfix: the last one produces the value).
    pub len: u32,
}

/// One postfix expression operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EOp {
    /// Push a constant.
    Const(i64),
    /// Push a per-thread register value.
    Reg(u8),
    /// Push a shared-object value (a peek, not a recorded access).
    Obj(u32),
    /// Push the current virtual clock as `i64`.
    Now,
    /// Push a channel's occupancy (transit + mailbox) as `i64`.
    ChanLen(u32),
    /// Pop two, push their wrapping sum.
    Add,
    /// Pop two, push their wrapping difference.
    Sub,
}

/// A compiled condition `lhs cmp rhs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CondRef {
    /// Left operand.
    pub lhs: ExprRef,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right operand.
    pub rhs: ExprRef,
    /// Whether either operand reads the virtual clock (`Expr::Now`). A
    /// condition without `Now` over frozen registers and objects cannot
    /// change while only time advances, which lets the scheduler coalesce
    /// pure burn ticks past blocked waiters.
    pub uses_now: bool,
}

/// One VM instruction. Mirrors [`Op`] one-to-one — same variant set, same
/// blocking/advancing behaviour — but fixed-size and `Copy`, with strings
/// interned and expressions flattened.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    /// Read a shared object into a register (recorded access).
    Read {
        /// Shared-object index.
        object: u32,
        /// Destination register.
        reg: u8,
    },
    /// Write an expression's value to a shared object (recorded access).
    Write {
        /// Shared-object index.
        object: u32,
        /// Value expression.
        value: ExprRef,
    },
    /// Atomic read-and-throw-if (check-then-crash site).
    ThrowIfObj {
        /// Object to read (recorded access).
        object: u32,
        /// Comparison applied to the freshly read value.
        cmp: Cmp,
        /// Right-hand side of the comparison.
        rhs: ExprRef,
        /// Exception kind thrown when the comparison holds.
        kind: KindId,
    },
    /// Burn a fixed number of ticks.
    Compute {
        /// Ticks to burn.
        cost: u64,
    },
    /// Burn a uniformly random number of ticks in `[min, max]`.
    JitterCompute {
        /// Lower bound.
        min: u64,
        /// Upper bound.
        max: u64,
    },
    /// With probability `prob`, burn `ticks`.
    FlakyDelay {
        /// Trigger probability.
        prob: f64,
        /// Ticks burned when triggered.
        ticks: u64,
    },
    /// Set a register to an expression's value.
    LocalSet {
        /// Destination register.
        reg: u8,
        /// Value expression.
        value: ExprRef,
    },
    /// Conditional assignment.
    SetIf {
        /// Destination register.
        reg: u8,
        /// Condition.
        cond: CondRef,
        /// Value when the condition holds.
        then_value: ExprRef,
        /// Value otherwise.
        else_value: ExprRef,
    },
    /// Burn `cost` ticks only when the condition holds.
    ComputeIf {
        /// Condition.
        cond: CondRef,
        /// Ticks to burn.
        cost: u64,
    },
    /// Draw a uniform random value in `[lo, hi]` into a register.
    RandRange {
        /// Destination register.
        reg: u8,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Call another method synchronously.
    Call {
        /// Callee method index.
        method: u32,
    },
    /// Call another method, catching anything it throws at this boundary.
    TryCall {
        /// Callee method index.
        method: u32,
    },
    /// Return from the current method, optionally with a value.
    Return {
        /// Returned value expression, if any.
        value: Option<ExprRef>,
    },
    /// Throw unconditionally.
    Throw {
        /// Exception kind.
        kind: KindId,
    },
    /// Throw if the condition holds.
    ThrowIf {
        /// Condition.
        cond: CondRef,
        /// Exception kind.
        kind: KindId,
    },
    /// Start a program thread.
    Spawn {
        /// Thread index.
        thread: u32,
    },
    /// Block until a program thread has finished.
    Join {
        /// Thread index.
        thread: u32,
    },
    /// Acquire a program lock.
    Acquire {
        /// Lock (object) index.
        lock: u32,
    },
    /// Release a program lock.
    Release {
        /// Lock (object) index.
        lock: u32,
    },
    /// Block for a fixed number of ticks.
    Sleep {
        /// Ticks to sleep.
        ticks: u64,
    },
    /// Block until the condition over shared state holds.
    WaitUntil {
        /// Condition (peeks are not recorded as accesses).
        cond: CondRef,
    },
    /// Send a value into a channel (recorded as a write access on the
    /// channel's pseudo-object). Blocks while a bounded channel is full.
    Send {
        /// Channel index.
        channel: u32,
        /// Value expression.
        value: ExprRef,
        /// Guard condition: when present and false, the send is skipped.
        guard: Option<CondRef>,
    },
    /// Receive from a channel into a register (recorded as a read access on
    /// the channel's pseudo-object). Blocks on an empty mailbox; a non-zero
    /// timeout yields the `-1` sentinel instead once it expires.
    Recv {
        /// Channel index.
        channel: u32,
        /// Destination register.
        reg: u8,
        /// Ticks to wait before giving up (`0` = wait forever).
        timeout: u64,
    },
}

/// Per-method compiled metadata.
#[derive(Clone, Copy, Debug)]
pub struct CompiledMethod {
    /// First instruction in [`CompiledProgram::code`].
    pub code_start: u32,
    /// Number of instructions (the method's `pc` ranges over `0..code_len`).
    pub code_len: u32,
    /// Whether the method is marked pure (safe for return-value
    /// interventions).
    pub pure: bool,
    /// The register a trailing `Return { value: Some(Reg(r)) }` leaves its
    /// result in, precomputed for forced-return interventions.
    pub ret_reg: Option<u8>,
    /// Number of access-recording instructions (`Read`/`Write`/`ThrowIfObj`)
    /// in the body. Methods have no loops, so this is an exact upper bound
    /// on the accesses one activation records — the VM sizes each frame's
    /// access list with a single allocation.
    pub n_accesses: u32,
}

/// Per-thread compiled metadata.
#[derive(Clone, Copy, Debug)]
pub struct CompiledThread {
    /// Entry method index.
    pub entry: u32,
    /// Whether the thread starts at time zero.
    pub auto_start: bool,
}

/// Per-channel compiled metadata.
#[derive(Clone, Copy, Debug)]
pub struct CompiledChannel {
    /// `None` = unbounded; `Some(n)` blocks sends at occupancy `n`.
    pub capacity: Option<u32>,
    /// Minimum delivery latency (ticks).
    pub latency_min: u64,
    /// Maximum delivery latency; a draw happens only when `max > min`.
    pub latency_max: u64,
}

/// A compiled invariant: the condition plus its pre-interned failure kind
/// (`always:<name>` / `eventually:<name>`), so violation paths need no
/// string formatting at run time.
#[derive(Clone, Copy, Debug)]
pub struct CompiledInvariant {
    /// True for `always` invariants, false for `eventually`.
    pub always: bool,
    /// The register-free condition.
    pub cond: CondRef,
    /// Interned failure kind used when the invariant is violated.
    pub kind: KindId,
}

/// A [`Program`] lowered to flat bytecode. Pure function of the program —
/// compile once, run under any plan/seed/config.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// Per-method code windows and metadata.
    pub methods: Vec<CompiledMethod>,
    /// Per-thread entry points.
    pub threads: Vec<CompiledThread>,
    /// The shared code segment (all method bodies, contiguous).
    pub code: Vec<Instr>,
    /// The postfix expression pool.
    pub eops: Vec<EOp>,
    /// Interned exception-kind strings ([`KIND_DEADLOCK`] and
    /// [`KIND_TIMEOUT`] first).
    pub kinds: Vec<String>,
    /// Initial values of the shared objects.
    pub objects_init: Vec<i64>,
    /// Method names (for diagnostics in typed VM errors).
    pub method_names: Vec<String>,
    /// Object names (for diagnostics in typed VM errors).
    pub object_names: Vec<String>,
    /// Per-channel capacity/latency metadata.
    pub channels: Vec<CompiledChannel>,
    /// Channel names (for diagnostics and pseudo-object interning).
    pub channel_names: Vec<String>,
    /// Compiled invariants, in declaration order.
    pub invariants: Vec<CompiledInvariant>,
    /// Deepest scratch stack any expression evaluation needs.
    pub max_eval_depth: usize,
}

impl CompiledProgram {
    /// Total instruction count.
    pub fn instruction_count(&self) -> usize {
        self.code.len()
    }
}

struct Compiler {
    code: Vec<Instr>,
    eops: Vec<EOp>,
    kinds: Vec<String>,
    max_eval_depth: usize,
}

impl Compiler {
    fn intern_kind(&mut self, kind: &str) -> KindId {
        if let Some(i) = self.kinds.iter().position(|k| k == kind) {
            return i as KindId;
        }
        self.kinds.push(kind.to_string());
        (self.kinds.len() - 1) as KindId
    }

    /// Emits `e` in postfix order; returns the peak stack depth it needs.
    fn flatten(&mut self, e: &Expr) -> usize {
        match e {
            Expr::Const(v) => {
                self.eops.push(EOp::Const(*v));
                1
            }
            Expr::Reg(r) => {
                self.eops.push(EOp::Reg(r.0));
                1
            }
            Expr::Obj(o) => {
                self.eops.push(EOp::Obj(o.index() as u32));
                1
            }
            Expr::Now => {
                self.eops.push(EOp::Now);
                1
            }
            Expr::ChanLen(c) => {
                self.eops.push(EOp::ChanLen(c.index() as u32));
                1
            }
            Expr::Add(a, b) => {
                let da = self.flatten(a);
                let db = self.flatten(b);
                self.eops.push(EOp::Add);
                da.max(db + 1)
            }
            Expr::Sub(a, b) => {
                let da = self.flatten(a);
                let db = self.flatten(b);
                self.eops.push(EOp::Sub);
                da.max(db + 1)
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> ExprRef {
        let start = self.eops.len() as u32;
        let depth = self.flatten(e);
        self.max_eval_depth = self.max_eval_depth.max(depth);
        ExprRef {
            start,
            len: self.eops.len() as u32 - start,
        }
    }

    fn cond(&mut self, c: &Cond) -> CondRef {
        let lhs = self.expr(&c.lhs);
        let rhs = self.expr(&c.rhs);
        let uses_now = [lhs, rhs].iter().any(|r| {
            self.eops[r.start as usize..(r.start + r.len) as usize]
                .iter()
                .any(|op| matches!(op, EOp::Now))
        });
        CondRef {
            lhs,
            cmp: c.cmp,
            rhs,
            uses_now,
        }
    }

    fn instr(&mut self, op: &Op) -> Instr {
        match op {
            Op::Read { object, reg } => Instr::Read {
                object: object.index() as u32,
                reg: reg.0,
            },
            Op::Write { object, value } => Instr::Write {
                object: object.index() as u32,
                value: self.expr(value),
            },
            Op::ThrowIfObj {
                object,
                cmp,
                rhs,
                kind,
            } => Instr::ThrowIfObj {
                object: object.index() as u32,
                cmp: *cmp,
                rhs: self.expr(rhs),
                kind: self.intern_kind(kind),
            },
            Op::Compute { cost } => Instr::Compute { cost: *cost },
            Op::JitterCompute { min, max } => Instr::JitterCompute {
                min: *min,
                max: *max,
            },
            Op::FlakyDelay { prob, ticks } => Instr::FlakyDelay {
                prob: *prob,
                ticks: *ticks,
            },
            Op::LocalSet { reg, value } => Instr::LocalSet {
                reg: reg.0,
                value: self.expr(value),
            },
            Op::SetIf {
                reg,
                cond,
                then_value,
                else_value,
            } => Instr::SetIf {
                reg: reg.0,
                cond: self.cond(cond),
                then_value: self.expr(then_value),
                else_value: self.expr(else_value),
            },
            Op::ComputeIf { cond, cost } => Instr::ComputeIf {
                cond: self.cond(cond),
                cost: *cost,
            },
            Op::RandRange { reg, lo, hi } => Instr::RandRange {
                reg: reg.0,
                lo: *lo,
                hi: *hi,
            },
            Op::Call { method } => Instr::Call {
                method: method.index() as u32,
            },
            Op::TryCall { method } => Instr::TryCall {
                method: method.index() as u32,
            },
            Op::Return { value } => Instr::Return {
                value: value.as_ref().map(|e| self.expr(e)),
            },
            Op::Throw { kind } => Instr::Throw {
                kind: self.intern_kind(kind),
            },
            Op::ThrowIf { cond, kind } => Instr::ThrowIf {
                cond: self.cond(cond),
                kind: self.intern_kind(kind),
            },
            Op::Spawn { thread } => Instr::Spawn {
                thread: *thread as u32,
            },
            Op::Join { thread } => Instr::Join {
                thread: *thread as u32,
            },
            Op::Acquire { lock } => Instr::Acquire {
                lock: lock.index() as u32,
            },
            Op::Release { lock } => Instr::Release {
                lock: lock.index() as u32,
            },
            Op::Sleep { ticks } => Instr::Sleep { ticks: *ticks },
            Op::WaitUntil { cond } => Instr::WaitUntil {
                cond: self.cond(cond),
            },
            Op::Send {
                channel,
                value,
                guard,
            } => Instr::Send {
                channel: channel.index() as u32,
                value: self.expr(value),
                guard: guard.as_ref().map(|g| self.cond(g)),
            },
            Op::Recv {
                channel,
                reg,
                timeout,
            } => Instr::Recv {
                channel: channel.index() as u32,
                reg: reg.0,
                timeout: *timeout,
            },
        }
    }
}

/// The register a method leaves its result in, inferred from a trailing
/// `Return { value: Some(Reg(r)) }` — same inference as the tree-walk
/// machine's, precomputed here.
fn ret_reg(body: &[Op]) -> Option<u8> {
    body.iter().rev().find_map(|op| match op {
        Op::Return {
            value: Some(Expr::Reg(r)),
        } => Some(r.0),
        _ => None,
    })
}

/// Compiles a program. Panics on structural invariant violations (the same
/// ones [`Program::validate`] rejects); call `validate` first for untrusted
/// input.
pub fn compile(program: &Program) -> CompiledProgram {
    let mut c = Compiler {
        code: Vec::new(),
        eops: Vec::new(),
        kinds: vec![DEADLOCK_KIND.to_string(), TIMEOUT_KIND.to_string()],
        max_eval_depth: 1,
    };
    let mut methods = Vec::with_capacity(program.methods.len());
    for m in &program.methods {
        let code_start = c.code.len() as u32;
        for op in &m.body {
            let instr = c.instr(op);
            c.code.push(instr);
        }
        let n_accesses = c.code[code_start as usize..]
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Read { .. }
                        | Instr::Write { .. }
                        | Instr::ThrowIfObj { .. }
                        | Instr::Send { .. }
                        | Instr::Recv { .. }
                )
            })
            .count() as u32;
        methods.push(CompiledMethod {
            code_start,
            code_len: c.code.len() as u32 - code_start,
            pure: m.pure,
            ret_reg: ret_reg(&m.body),
            n_accesses,
        });
    }
    let threads = program
        .threads
        .iter()
        .map(|t| CompiledThread {
            entry: t.entry.index() as u32,
            auto_start: t.auto_start,
        })
        .collect();
    let channels = program
        .channels
        .iter()
        .map(|ch| CompiledChannel {
            capacity: ch.capacity,
            latency_min: ch.latency_min,
            latency_max: ch.latency_max,
        })
        .collect();
    let invariants = program
        .invariants
        .iter()
        .map(|inv| {
            let always = matches!(inv.mode, crate::program::InvariantMode::Always);
            let prefix = if always { "always" } else { "eventually" };
            let kind = c.intern_kind(&format!("{prefix}:{}", inv.name));
            CompiledInvariant {
                always,
                cond: c.cond(&inv.cond),
                kind,
            }
        })
        .collect();
    CompiledProgram {
        methods,
        threads,
        code: c.code,
        eops: c.eops,
        kinds: c.kinds,
        objects_init: program.objects.iter().map(|o| o.initial).collect(),
        method_names: program.methods.iter().map(|m| m.name.clone()).collect(),
        object_names: program.objects.iter().map(|o| o.name.clone()).collect(),
        channels,
        channel_names: program.channels.iter().map(|ch| ch.name.clone()).collect(),
        invariants,
        max_eval_depth: c.max_eval_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{MethodDef, ObjectDef, Reg, ThreadSpec};
    use aid_trace::{MethodId, ObjectId};

    fn tiny() -> Program {
        Program {
            name: "tiny".into(),
            methods: vec![MethodDef {
                name: "M".into(),
                pure: true,
                body: vec![
                    Op::LocalSet {
                        reg: Reg(0),
                        value: Expr::add(
                            Expr::Const(1),
                            Expr::sub(Expr::Obj(ObjectId::from_raw(0)), Expr::Now),
                        ),
                    },
                    Op::Throw {
                        kind: "Boom".into(),
                    },
                    Op::Return {
                        value: Some(Expr::Reg(Reg(0))),
                    },
                ],
            }],
            objects: vec![ObjectDef {
                name: "x".into(),
                initial: 7,
            }],
            channels: vec![],
            invariants: vec![],
            threads: vec![ThreadSpec {
                name: "t".into(),
                entry: MethodId::from_raw(0),
                auto_start: true,
            }],
        }
    }

    #[test]
    fn one_instruction_per_op_and_interned_kinds() {
        let p = tiny();
        let cp = compile(&p);
        assert_eq!(cp.instruction_count(), 3, "one Instr per Op");
        assert_eq!(cp.methods[0].code_len, 3);
        assert_eq!(cp.methods[0].ret_reg, Some(0));
        assert!(cp.methods[0].pure);
        // Deadlock/timeout are pre-interned; "Boom" follows.
        assert_eq!(cp.kinds[KIND_DEADLOCK as usize], DEADLOCK_KIND);
        assert_eq!(cp.kinds[KIND_TIMEOUT as usize], TIMEOUT_KIND);
        assert_eq!(cp.kinds[2], "Boom");
        assert!(matches!(cp.code[1], Instr::Throw { kind: 2 }));
    }

    #[test]
    fn expressions_flatten_postfix_with_depth() {
        let p = tiny();
        let cp = compile(&p);
        // 1 + (x - now): postfix = Const Obj Now Sub Add.
        let r = match cp.code[0] {
            Instr::LocalSet { value, .. } => value,
            _ => panic!("expected LocalSet"),
        };
        let window: Vec<EOp> = cp.eops[r.start as usize..(r.start + r.len) as usize].to_vec();
        assert_eq!(
            window,
            vec![EOp::Const(1), EOp::Obj(0), EOp::Now, EOp::Sub, EOp::Add]
        );
        assert!(cp.max_eval_depth >= 3);
    }

    #[test]
    fn kind_interning_deduplicates() {
        let mut p = tiny();
        p.methods[0].body.push(Op::Throw {
            kind: "Boom".into(),
        });
        let cp = compile(&p);
        assert_eq!(cp.kinds.len(), 3, "duplicate kinds share one entry");
    }
}
