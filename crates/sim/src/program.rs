//! The program model executed by the virtual machine.
//!
//! A [`Program`] is a set of named shared objects, methods (straight-line op
//! sequences with calls), and threads. The model is deliberately small — it
//! is not a general-purpose language, it is the minimal substrate on which
//! the paper's bug classes (data races, atomicity violations, order
//! violations, use-after-free, timing bugs, random collisions) and the
//! paper's intervention classes (Figure 2) can be expressed mechanically.
//!
//! Semantics notes:
//! * Each executed op advances the single global virtual clock by at least
//!   one tick, so **all event timestamps in a run are distinct** and temporal
//!   precedence within a run is total.
//! * Registers are **per-thread** (16 of them) and survive across calls;
//!   programs are handcrafted and allocate registers manually.
//! * Shared objects hold `i64` values. Reads/writes through [`Op::Read`],
//!   [`Op::Write`] and [`Op::ThrowIfObj`] are recorded in the trace as
//!   accesses; [`Expr::Obj`] peeks inside [`Op::WaitUntil`] conditions are
//!   monitor-style waits and are *not* recorded as data accesses.

use aid_trace::{MethodId, ObjectId};
use aid_util::fnv1a;
use serde::{Deserialize, Serialize};

/// A per-thread register index (0..16).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

/// Number of registers per thread.
pub const NUM_REGS: usize = 16;

/// Pure expression over constants, registers, shared-object peeks, and the
/// current virtual clock.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A constant.
    Const(i64),
    /// A register value.
    Reg(Reg),
    /// A peek at a shared object (not recorded as a data access).
    Obj(ObjectId),
    /// The current virtual time as `i64`.
    Now,
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience: `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }
    /// Convenience: `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }
}

/// Comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cmp {
    /// Applies the comparison.
    pub fn eval(self, l: i64, r: i64) -> bool {
        match self {
            Cmp::Eq => l == r,
            Cmp::Ne => l != r,
            Cmp::Lt => l < r,
            Cmp::Le => l <= r,
            Cmp::Gt => l > r,
            Cmp::Ge => l >= r,
        }
    }
}

/// A boolean condition `lhs cmp rhs`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cond {
    /// Left operand.
    pub lhs: Expr,
    /// Operator.
    pub cmp: Cmp,
    /// Right operand.
    pub rhs: Expr,
}

impl Cond {
    /// Builds a condition.
    pub fn new(lhs: Expr, cmp: Cmp, rhs: Expr) -> Self {
        Cond { lhs, cmp, rhs }
    }
}

/// One operation in a method body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Read a shared object into a register (recorded access).
    Read { object: ObjectId, reg: Reg },
    /// Write an expression's value to a shared object (recorded access).
    Write { object: ObjectId, value: Expr },
    /// Atomically read a shared object (recorded access) and throw `kind` if
    /// `value cmp rhs` holds. This models check-then-crash sites (e.g. an
    /// array bounds check) where the read and the decision are one
    /// instruction from the scheduler's point of view.
    ThrowIfObj {
        /// Object to read.
        object: ObjectId,
        /// Comparison applied to the freshly read value.
        cmp: Cmp,
        /// Right-hand side of the comparison.
        rhs: Expr,
        /// Exception kind thrown when the comparison holds.
        kind: String,
    },
    /// Burn a fixed number of ticks.
    Compute { cost: u64 },
    /// Burn a uniformly random number of ticks in `[min, max]` (scheduler
    /// RNG; this is the main source of timing nondeterminism).
    JitterCompute { min: u64, max: u64 },
    /// With probability `prob` (program RNG), burn `ticks` — models a
    /// transient environment fault triggering an expensive handling path.
    FlakyDelay { prob: f64, ticks: u64 },
    /// Set a register to an expression's value.
    LocalSet { reg: Reg, value: Expr },
    /// Conditional assignment: `reg = if cond { then_value } else { else_value }`.
    SetIf {
        reg: Reg,
        cond: Cond,
        then_value: Expr,
        else_value: Expr,
    },
    /// Burn `cost` ticks only when the condition holds (models conditional
    /// slow paths taken when upstream state is corrupted).
    ComputeIf { cond: Cond, cost: u64 },
    /// Draw a uniformly random value in `[lo, hi]` (program RNG) into a
    /// register — models application-level randomness (e.g. random ids).
    RandRange { reg: Reg, lo: i64, hi: i64 },
    /// Call another method synchronously.
    Call { method: MethodId },
    /// Call another method; if it throws, catch at this boundary and
    /// continue with the next op.
    TryCall { method: MethodId },
    /// Return from the current method, optionally with a value.
    Return { value: Option<Expr> },
    /// Throw unconditionally.
    Throw { kind: String },
    /// Throw if the (register/peek) condition holds.
    ThrowIf { cond: Cond, kind: String },
    /// Start a program thread (by index into [`Program::threads`]).
    Spawn { thread: usize },
    /// Block until a program thread has finished.
    Join { thread: usize },
    /// Acquire a program lock (an object used as a mutex).
    Acquire { lock: ObjectId },
    /// Release a program lock.
    Release { lock: ObjectId },
    /// Block for a fixed number of ticks.
    Sleep { ticks: u64 },
    /// Block until the condition over shared state holds (monitor wait; the
    /// peeks are not recorded as accesses).
    WaitUntil { cond: Cond },
}

/// A method definition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MethodDef {
    /// Name (must be whitespace-free; it flows into trace logs).
    pub name: String,
    /// True if the method mutates no shared state — only pure methods are
    /// safe targets for return-value and premature-return interventions
    /// (§3.3 "validity of intervention").
    pub pure: bool,
    /// The body.
    pub body: Vec<Op>,
}

/// A shared object definition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObjectDef {
    /// Name (must be whitespace-free).
    pub name: String,
    /// Value at the start of every run.
    pub initial: i64,
}

/// A thread definition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThreadSpec {
    /// Name, for diagnostics.
    pub name: String,
    /// The method the thread runs.
    pub entry: MethodId,
    /// Whether the thread starts at time zero (otherwise it must be
    /// [`Op::Spawn`]ed).
    pub auto_start: bool,
}

/// A complete program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Methods; `MethodId` is the index.
    pub methods: Vec<MethodDef>,
    /// Shared objects; `ObjectId` is the index.
    pub objects: Vec<ObjectDef>,
    /// Threads.
    pub threads: Vec<ThreadSpec>,
}

impl Program {
    /// A stable 64-bit structural fingerprint of the whole program
    /// (FNV-1a over the canonical debug rendering, which is a pure function
    /// of the structure — `Op`/`Expr` carry no interior mutability and no
    /// addresses). Two `Program`s with equal structure always fingerprint
    /// equal; the engine's intervention cache uses this as the program half
    /// of its (program, intervention set, seed) key, so a cache entry can
    /// never be served to a structurally different program.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(format!("{self:?}").as_bytes())
    }

    /// Looks up a method definition.
    pub fn method(&self, id: MethodId) -> &MethodDef {
        &self.methods[id.index()]
    }

    /// Looks up an object definition.
    pub fn object(&self, id: ObjectId) -> &ObjectDef {
        &self.objects[id.index()]
    }

    /// Ids of methods marked pure.
    pub fn pure_methods(&self) -> Vec<MethodId> {
        self.methods
            .iter()
            .enumerate()
            .filter(|(_, m)| m.pure)
            .map(|(i, _)| MethodId::from_raw(i as u32))
            .collect()
    }

    /// Validates structural invariants (indices in range, spawn/join targets
    /// exist, names whitespace-free). Panics with a description on violation;
    /// builders call this before returning a program.
    pub fn validate(&self) {
        assert!(!self.threads.is_empty(), "program has no threads");
        for m in &self.methods {
            assert!(
                !m.name.chars().any(char::is_whitespace),
                "method name {:?} contains whitespace",
                m.name
            );
            for op in &m.body {
                match op {
                    Op::Call { method } | Op::TryCall { method } => {
                        assert!(method.index() < self.methods.len(), "bad call target");
                    }
                    Op::Spawn { thread } | Op::Join { thread } => {
                        assert!(*thread < self.threads.len(), "bad thread index");
                    }
                    Op::Read { object, .. }
                    | Op::Write { object, .. }
                    | Op::ThrowIfObj { object, .. } => {
                        assert!(object.index() < self.objects.len(), "bad object index");
                    }
                    Op::Acquire { lock } | Op::Release { lock } => {
                        assert!(lock.index() < self.objects.len(), "bad lock index");
                    }
                    _ => {}
                }
            }
        }
        for o in &self.objects {
            assert!(
                !o.name.chars().any(char::is_whitespace),
                "object name {:?} contains whitespace",
                o.name
            );
        }
        for t in &self.threads {
            assert!(t.entry.index() < self.methods.len(), "bad thread entry");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_covers_all_operators() {
        assert!(Cmp::Eq.eval(1, 1));
        assert!(Cmp::Ne.eval(1, 2));
        assert!(Cmp::Lt.eval(1, 2));
        assert!(Cmp::Le.eval(2, 2));
        assert!(Cmp::Gt.eval(3, 2));
        assert!(Cmp::Ge.eval(2, 2));
        assert!(!Cmp::Lt.eval(2, 2));
    }

    #[test]
    #[should_panic(expected = "bad call target")]
    fn validate_rejects_dangling_call() {
        let p = Program {
            name: "bad".into(),
            methods: vec![MethodDef {
                name: "m".into(),
                pure: false,
                body: vec![Op::Call {
                    method: MethodId::from_raw(7),
                }],
            }],
            objects: vec![],
            threads: vec![ThreadSpec {
                name: "t".into(),
                entry: MethodId::from_raw(0),
                auto_start: true,
            }],
        };
        p.validate();
    }

    #[test]
    fn fingerprint_is_structural() {
        let mk = |delay: i64| Program {
            name: "fp".into(),
            methods: vec![MethodDef {
                name: "m".into(),
                pure: true,
                body: vec![Op::Compute { cost: delay as u64 }],
            }],
            objects: vec![],
            threads: vec![ThreadSpec {
                name: "t".into(),
                entry: MethodId::from_raw(0),
                auto_start: true,
            }],
        };
        assert_eq!(mk(3).fingerprint(), mk(3).fingerprint(), "pure function");
        assert_ne!(
            mk(3).fingerprint(),
            mk(4).fingerprint(),
            "structure changes change the fingerprint"
        );
    }

    #[test]
    #[should_panic(expected = "no threads")]
    fn validate_rejects_empty_program() {
        Program {
            name: "empty".into(),
            methods: vec![],
            objects: vec![],
            threads: vec![],
        }
        .validate();
    }
}
