//! The program model executed by the virtual machine.
//!
//! A [`Program`] is a set of named shared objects, methods (straight-line op
//! sequences with calls), and threads. The model is deliberately small — it
//! is not a general-purpose language, it is the minimal substrate on which
//! the paper's bug classes (data races, atomicity violations, order
//! violations, use-after-free, timing bugs, random collisions) and the
//! paper's intervention classes (Figure 2) can be expressed mechanically.
//!
//! Semantics notes:
//! * Each executed op advances the single global virtual clock by at least
//!   one tick, so **all event timestamps in a run are distinct** and temporal
//!   precedence within a run is total.
//! * Registers are **per-thread** (16 of them) and survive across calls;
//!   programs are handcrafted and allocate registers manually.
//! * Shared objects hold `i64` values. Reads/writes through [`Op::Read`],
//!   [`Op::Write`] and [`Op::ThrowIfObj`] are recorded in the trace as
//!   accesses; [`Expr::Obj`] peeks inside [`Op::WaitUntil`] conditions are
//!   monitor-style waits and are *not* recorded as data accesses.

use aid_trace::{ChannelId, MethodId, ObjectId};
use aid_util::fnv1a;
use serde::{Deserialize, Serialize};

/// A per-thread register index (0..16).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

/// Number of registers per thread.
pub const NUM_REGS: usize = 16;

/// Pure expression over constants, registers, shared-object peeks, and the
/// current virtual clock.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A constant.
    Const(i64),
    /// A register value.
    Reg(Reg),
    /// A peek at a shared object (not recorded as a data access).
    Obj(ObjectId),
    /// The current virtual time as `i64`.
    Now,
    /// The number of messages currently occupying a channel (in transit plus
    /// waiting in the mailbox). Like [`Expr::Obj`], a peek — not recorded as
    /// a data access. Legal in invariant conditions, where registers are not.
    ChanLen(ChannelId),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience: `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }
    /// Convenience: `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }
}

/// Comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cmp {
    /// Applies the comparison.
    pub fn eval(self, l: i64, r: i64) -> bool {
        match self {
            Cmp::Eq => l == r,
            Cmp::Ne => l != r,
            Cmp::Lt => l < r,
            Cmp::Le => l <= r,
            Cmp::Gt => l > r,
            Cmp::Ge => l >= r,
        }
    }
}

/// A boolean condition `lhs cmp rhs`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cond {
    /// Left operand.
    pub lhs: Expr,
    /// Operator.
    pub cmp: Cmp,
    /// Right operand.
    pub rhs: Expr,
}

impl Cond {
    /// Builds a condition.
    pub fn new(lhs: Expr, cmp: Cmp, rhs: Expr) -> Self {
        Cond { lhs, cmp, rhs }
    }
}

/// One operation in a method body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Read a shared object into a register (recorded access).
    Read { object: ObjectId, reg: Reg },
    /// Write an expression's value to a shared object (recorded access).
    Write { object: ObjectId, value: Expr },
    /// Atomically read a shared object (recorded access) and throw `kind` if
    /// `value cmp rhs` holds. This models check-then-crash sites (e.g. an
    /// array bounds check) where the read and the decision are one
    /// instruction from the scheduler's point of view.
    ThrowIfObj {
        /// Object to read.
        object: ObjectId,
        /// Comparison applied to the freshly read value.
        cmp: Cmp,
        /// Right-hand side of the comparison.
        rhs: Expr,
        /// Exception kind thrown when the comparison holds.
        kind: String,
    },
    /// Burn a fixed number of ticks.
    Compute { cost: u64 },
    /// Burn a uniformly random number of ticks in `[min, max]` (scheduler
    /// RNG; this is the main source of timing nondeterminism).
    JitterCompute { min: u64, max: u64 },
    /// With probability `prob` (program RNG), burn `ticks` — models a
    /// transient environment fault triggering an expensive handling path.
    FlakyDelay { prob: f64, ticks: u64 },
    /// Set a register to an expression's value.
    LocalSet { reg: Reg, value: Expr },
    /// Conditional assignment: `reg = if cond { then_value } else { else_value }`.
    SetIf {
        reg: Reg,
        cond: Cond,
        then_value: Expr,
        else_value: Expr,
    },
    /// Burn `cost` ticks only when the condition holds (models conditional
    /// slow paths taken when upstream state is corrupted).
    ComputeIf { cond: Cond, cost: u64 },
    /// Draw a uniformly random value in `[lo, hi]` (program RNG) into a
    /// register — models application-level randomness (e.g. random ids).
    RandRange { reg: Reg, lo: i64, hi: i64 },
    /// Call another method synchronously.
    Call { method: MethodId },
    /// Call another method; if it throws, catch at this boundary and
    /// continue with the next op.
    TryCall { method: MethodId },
    /// Return from the current method, optionally with a value.
    Return { value: Option<Expr> },
    /// Throw unconditionally.
    Throw { kind: String },
    /// Throw if the (register/peek) condition holds.
    ThrowIf { cond: Cond, kind: String },
    /// Start a program thread (by index into [`Program::threads`]).
    Spawn { thread: usize },
    /// Block until a program thread has finished.
    Join { thread: usize },
    /// Acquire a program lock (an object used as a mutex).
    Acquire { lock: ObjectId },
    /// Release a program lock.
    Release { lock: ObjectId },
    /// Block for a fixed number of ticks.
    Sleep { ticks: u64 },
    /// Block until the condition over shared state holds (monitor wait; the
    /// peeks are not recorded as accesses).
    WaitUntil { cond: Cond },
    /// Send a value into a channel. The guard (if any) is evaluated first:
    /// when false, nothing is sent and execution continues (no latency draw,
    /// no block). When the channel is bounded and full, the sender blocks
    /// until capacity frees, then re-evaluates the guard at actual send time.
    /// A successful send assigns the channel's next sequence number, draws
    /// the delivery latency (scheduler RNG when the channel jitters), and is
    /// recorded both as a `Send` message event and as a write access on the
    /// channel's pseudo-object.
    Send {
        /// Target channel.
        channel: ChannelId,
        /// Payload expression (evaluated at send time).
        value: Expr,
        /// Optional guard; `None` sends unconditionally.
        guard: Option<Cond>,
    },
    /// Receive the oldest delivered message from a channel into a register.
    /// Blocks while the mailbox is empty; with `timeout > 0` the wait gives
    /// up after that many ticks and stores `-1` instead (the timeout
    /// sentinel). `timeout == 0` waits forever — a receiver that is never
    /// sent to deadlocks the run. A successful receive is recorded both as a
    /// `Recv` message event and as a read access on the channel's
    /// pseudo-object; a timed-out receive records nothing.
    Recv {
        /// Source channel.
        channel: ChannelId,
        /// Destination register.
        reg: Reg,
        /// Ticks to wait before giving up (0 = wait forever).
        timeout: u64,
    },
}

/// A method definition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MethodDef {
    /// Name (must be whitespace-free; it flows into trace logs).
    pub name: String,
    /// True if the method mutates no shared state — only pure methods are
    /// safe targets for return-value and premature-return interventions
    /// (§3.3 "validity of intervention").
    pub pure: bool,
    /// The body.
    pub body: Vec<Op>,
}

/// A shared object definition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObjectDef {
    /// Name (must be whitespace-free).
    pub name: String,
    /// Value at the start of every run.
    pub initial: i64,
}

/// A message channel definition.
///
/// Channels model asynchronous point-to-point or fan-in messaging: a send
/// places the message *in transit* for a latency drawn from
/// `[latency_min, latency_max]` (scheduler RNG when the bounds differ), after
/// which the machine *delivers* it into the receiver-visible mailbox in
/// `(deliver_at, seq)` order. Receivers only ever see delivered messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelDef {
    /// Name (must be whitespace-free; it flows into trace logs).
    pub name: String,
    /// Maximum occupancy (in transit + mailbox); `None` = unbounded. A send
    /// to a full bounded channel blocks until a receive frees a slot.
    pub capacity: Option<u32>,
    /// Minimum delivery latency in ticks.
    pub latency_min: u64,
    /// Maximum delivery latency in ticks (`>= latency_min`). When strictly
    /// greater, each send draws uniformly from the range — the message-level
    /// source of timing nondeterminism.
    pub latency_max: u64,
}

/// Whether an invariant must hold at every checkpoint or eventually.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvariantMode {
    /// The condition must hold at every observation point; the first
    /// violation fails the run with kind `always:<name>`.
    Always,
    /// The condition must hold at *some* observation point before the run
    /// finishes; a run that completes without ever satisfying it fails with
    /// kind `eventually:<name>`.
    Eventually,
}

/// A declared invariant over shared and channel state.
///
/// Invariant conditions are evaluated globally (after every shared-state or
/// channel effect), so they may reference shared objects ([`Expr::Obj`]),
/// channel occupancy ([`Expr::ChanLen`]), and the clock — but never
/// per-thread registers ([`Expr::Reg`]); `validate` rejects those.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InvariantDef {
    /// Name (whitespace-free; it flows into failure kinds as
    /// `always:<name>` / `eventually:<name>`).
    pub name: String,
    /// Safety or liveness flavour.
    pub mode: InvariantMode,
    /// The condition.
    pub cond: Cond,
}

/// A thread definition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThreadSpec {
    /// Name, for diagnostics.
    pub name: String,
    /// The method the thread runs.
    pub entry: MethodId,
    /// Whether the thread starts at time zero (otherwise it must be
    /// [`Op::Spawn`]ed).
    pub auto_start: bool,
}

/// A complete program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Methods; `MethodId` is the index.
    pub methods: Vec<MethodDef>,
    /// Shared objects; `ObjectId` is the index.
    pub objects: Vec<ObjectDef>,
    /// Message channels; `ChannelId` is the index.
    pub channels: Vec<ChannelDef>,
    /// Declared invariants, checked by the machine as it runs.
    pub invariants: Vec<InvariantDef>,
    /// Threads.
    pub threads: Vec<ThreadSpec>,
}

impl Program {
    /// A stable 64-bit structural fingerprint of the whole program
    /// (FNV-1a over the canonical debug rendering, which is a pure function
    /// of the structure — `Op`/`Expr` carry no interior mutability and no
    /// addresses). Two `Program`s with equal structure always fingerprint
    /// equal; the engine's intervention cache uses this as the program half
    /// of its (program, intervention set, seed) key, so a cache entry can
    /// never be served to a structurally different program.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(format!("{self:?}").as_bytes())
    }

    /// Looks up a method definition.
    pub fn method(&self, id: MethodId) -> &MethodDef {
        &self.methods[id.index()]
    }

    /// Looks up an object definition.
    pub fn object(&self, id: ObjectId) -> &ObjectDef {
        &self.objects[id.index()]
    }

    /// Ids of methods marked pure.
    pub fn pure_methods(&self) -> Vec<MethodId> {
        self.methods
            .iter()
            .enumerate()
            .filter(|(_, m)| m.pure)
            .map(|(i, _)| MethodId::from_raw(i as u32))
            .collect()
    }

    /// Checks every [`Expr::ChanLen`] in an expression against the channel
    /// table, and rejects [`Expr::Reg`] when `allow_reg` is false (invariant
    /// conditions are evaluated without a thread context).
    fn check_expr(&self, e: &Expr, allow_reg: bool) {
        match e {
            Expr::ChanLen(c) => {
                assert!(c.index() < self.channels.len(), "bad channel index");
            }
            Expr::Reg(_) => {
                assert!(allow_reg, "invariant condition references a register");
            }
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                self.check_expr(a, allow_reg);
                self.check_expr(b, allow_reg);
            }
            Expr::Const(_) | Expr::Obj(_) | Expr::Now => {}
        }
    }

    fn check_cond(&self, c: &Cond, allow_reg: bool) {
        self.check_expr(&c.lhs, allow_reg);
        self.check_expr(&c.rhs, allow_reg);
    }

    /// Validates structural invariants (indices in range, spawn/join targets
    /// exist, names whitespace-free). Panics with a description on violation;
    /// builders call this before returning a program.
    pub fn validate(&self) {
        assert!(!self.threads.is_empty(), "program has no threads");
        for m in &self.methods {
            assert!(
                !m.name.chars().any(char::is_whitespace),
                "method name {:?} contains whitespace",
                m.name
            );
            for op in &m.body {
                match op {
                    Op::Call { method } | Op::TryCall { method } => {
                        assert!(method.index() < self.methods.len(), "bad call target");
                    }
                    Op::Spawn { thread } | Op::Join { thread } => {
                        assert!(*thread < self.threads.len(), "bad thread index");
                    }
                    Op::Read { object, .. }
                    | Op::Write { object, .. }
                    | Op::ThrowIfObj { object, .. } => {
                        assert!(object.index() < self.objects.len(), "bad object index");
                    }
                    Op::Acquire { lock } | Op::Release { lock } => {
                        assert!(lock.index() < self.objects.len(), "bad lock index");
                    }
                    Op::Send {
                        channel,
                        value,
                        guard,
                    } => {
                        assert!(channel.index() < self.channels.len(), "bad channel index");
                        self.check_expr(value, true);
                        if let Some(g) = guard {
                            self.check_cond(g, true);
                        }
                    }
                    Op::Recv { channel, .. } => {
                        assert!(channel.index() < self.channels.len(), "bad channel index");
                    }
                    _ => {}
                }
                match op {
                    Op::Write { value, .. } | Op::LocalSet { value, .. } => {
                        self.check_expr(value, true);
                    }
                    Op::ThrowIfObj { rhs, .. } => self.check_expr(rhs, true),
                    Op::SetIf {
                        cond,
                        then_value,
                        else_value,
                        ..
                    } => {
                        self.check_cond(cond, true);
                        self.check_expr(then_value, true);
                        self.check_expr(else_value, true);
                    }
                    Op::ComputeIf { cond, .. }
                    | Op::ThrowIf { cond, .. }
                    | Op::WaitUntil { cond } => self.check_cond(cond, true),
                    Op::Return { value: Some(v) } => self.check_expr(v, true),
                    _ => {}
                }
            }
        }
        for o in &self.objects {
            assert!(
                !o.name.chars().any(char::is_whitespace),
                "object name {:?} contains whitespace",
                o.name
            );
        }
        for c in &self.channels {
            assert!(
                !c.name.chars().any(char::is_whitespace),
                "channel name {:?} contains whitespace",
                c.name
            );
            assert!(
                c.latency_min <= c.latency_max,
                "channel {:?} latency range is inverted",
                c.name
            );
            assert!(
                c.capacity != Some(0),
                "channel {:?} has zero capacity",
                c.name
            );
        }
        for inv in &self.invariants {
            assert!(
                !inv.name.is_empty() && !inv.name.chars().any(char::is_whitespace),
                "invariant name {:?} is empty or contains whitespace",
                inv.name
            );
            self.check_cond(&inv.cond, false);
        }
        for t in &self.threads {
            assert!(t.entry.index() < self.methods.len(), "bad thread entry");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_covers_all_operators() {
        assert!(Cmp::Eq.eval(1, 1));
        assert!(Cmp::Ne.eval(1, 2));
        assert!(Cmp::Lt.eval(1, 2));
        assert!(Cmp::Le.eval(2, 2));
        assert!(Cmp::Gt.eval(3, 2));
        assert!(Cmp::Ge.eval(2, 2));
        assert!(!Cmp::Lt.eval(2, 2));
    }

    #[test]
    #[should_panic(expected = "bad call target")]
    fn validate_rejects_dangling_call() {
        let p = Program {
            name: "bad".into(),
            methods: vec![MethodDef {
                name: "m".into(),
                pure: false,
                body: vec![Op::Call {
                    method: MethodId::from_raw(7),
                }],
            }],
            objects: vec![],
            channels: vec![],
            invariants: vec![],
            threads: vec![ThreadSpec {
                name: "t".into(),
                entry: MethodId::from_raw(0),
                auto_start: true,
            }],
        };
        p.validate();
    }

    #[test]
    fn fingerprint_is_structural() {
        let mk = |delay: i64| Program {
            name: "fp".into(),
            methods: vec![MethodDef {
                name: "m".into(),
                pure: true,
                body: vec![Op::Compute { cost: delay as u64 }],
            }],
            objects: vec![],
            channels: vec![],
            invariants: vec![],
            threads: vec![ThreadSpec {
                name: "t".into(),
                entry: MethodId::from_raw(0),
                auto_start: true,
            }],
        };
        assert_eq!(mk(3).fingerprint(), mk(3).fingerprint(), "pure function");
        assert_ne!(
            mk(3).fingerprint(),
            mk(4).fingerprint(),
            "structure changes change the fingerprint"
        );
    }

    fn channel_program(invariants: Vec<InvariantDef>, body: Vec<Op>) -> Program {
        Program {
            name: "chan".into(),
            methods: vec![MethodDef {
                name: "m".into(),
                pure: false,
                body,
            }],
            objects: vec![],
            channels: vec![ChannelDef {
                name: "c".into(),
                capacity: Some(2),
                latency_min: 1,
                latency_max: 4,
            }],
            invariants,
            threads: vec![ThreadSpec {
                name: "t".into(),
                entry: MethodId::from_raw(0),
                auto_start: true,
            }],
        }
    }

    #[test]
    fn validate_accepts_channel_ops_and_invariants() {
        channel_program(
            vec![InvariantDef {
                name: "bounded".into(),
                mode: InvariantMode::Always,
                cond: Cond::new(
                    Expr::ChanLen(ChannelId::from_raw(0)),
                    Cmp::Le,
                    Expr::Const(2),
                ),
            }],
            vec![
                Op::Send {
                    channel: ChannelId::from_raw(0),
                    value: Expr::Const(1),
                    guard: None,
                },
                Op::Recv {
                    channel: ChannelId::from_raw(0),
                    reg: Reg(0),
                    timeout: 10,
                },
            ],
        )
        .validate();
    }

    #[test]
    #[should_panic(expected = "bad channel index")]
    fn validate_rejects_dangling_channel() {
        channel_program(
            vec![],
            vec![Op::Send {
                channel: ChannelId::from_raw(3),
                value: Expr::Const(1),
                guard: None,
            }],
        )
        .validate();
    }

    #[test]
    #[should_panic(expected = "references a register")]
    fn validate_rejects_register_in_invariant() {
        channel_program(
            vec![InvariantDef {
                name: "bad".into(),
                mode: InvariantMode::Eventually,
                cond: Cond::new(Expr::Reg(Reg(0)), Cmp::Eq, Expr::Const(1)),
            }],
            vec![],
        )
        .validate();
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn validate_rejects_zero_capacity() {
        let mut p = channel_program(vec![], vec![]);
        p.channels[0].capacity = Some(0);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "no threads")]
    fn validate_rejects_empty_program() {
        Program {
            name: "empty".into(),
            methods: vec![],
            objects: vec![],
            channels: vec![],
            invariants: vec![],
            threads: vec![],
        }
        .validate();
    }
}
