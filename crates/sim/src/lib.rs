//! A deterministic discrete-event simulator for concurrent programs — the
//! instrumented-runtime substrate of the AID reproduction.
//!
//! The paper instruments real .NET applications and injects faults at
//! runtime. That interception layer is replaced here (see DESIGN.md's
//! substitution table) by a small virtual machine whose scheduler is
//! deliberately nondeterministic (seeded), so concurrency bugs — data races,
//! atomicity violations, order violations, use-after-free, timing bugs —
//! manifest *intermittently*, exactly as AID requires. The machine exposes
//! the same observation surface the paper's tracer produces (method events
//! with thread ids, time windows, object accesses, return values and
//! exceptions) and the same repair surface its fault injector provides
//! (Figure 2's interventions).
//!
//! Entry points:
//! * [`builder::ProgramBuilder`] — construct a program.
//! * [`runner::Simulator`] — run it many times into an `aid_trace::TraceSet`.
//! * [`plan::InterventionPlan`] — inject faults into a run.
//! * [`live`] — a demonstration harness that drives *real* OS threads with
//!   the same intervention vocabulary.

pub mod builder;
pub mod exec;
pub mod live;
pub mod machine;
pub mod plan;
pub mod program;
pub mod runner;

pub use builder::ProgramBuilder;
pub use exec::{lower_action, plan_for, SimExecutor};
pub use machine::{Machine, SimConfig, DEADLOCK_KIND, TIMEOUT_KIND};
pub use plan::{InstanceFilter, Intervention, InterventionPlan};
pub use program::{Cmp, Cond, Expr, MethodDef, ObjectDef, Op, Program, Reg, ThreadSpec};
pub use runner::Simulator;
