//! A deterministic discrete-event simulator for concurrent programs — the
//! instrumented-runtime substrate of the AID reproduction.
//!
//! The paper instruments real .NET applications and injects faults at
//! runtime. That interception layer is replaced here (see DESIGN.md's
//! substitution table) by a small virtual machine whose scheduler is
//! deliberately nondeterministic (seeded), so concurrency bugs — data races,
//! atomicity violations, order violations, use-after-free, timing bugs —
//! manifest *intermittently*, exactly as AID requires. The machine exposes
//! the same observation surface the paper's tracer produces (method events
//! with thread ids, time windows, object accesses, return values and
//! exceptions) and the same repair surface its fault injector provides
//! (Figure 2's interventions).
//!
//! Two interchangeable execution backends sit behind the one
//! [`backend::ExecBackend`] trait: the reference tree-walk interpreter
//! (the crate-private `machine` module) and a bytecode compiler + register
//! VM ([`mod@compile`] + [`vm`]) that produces bit-identical traces several
//! times faster. The bytecode backend is the default; see
//! [`backend::Backend`].
//!
//! Entry points:
//! * [`builder::ProgramBuilder`] — construct a program.
//! * [`runner::Simulator`] — run it many times into an `aid_trace::TraceSet`,
//!   on either backend ([`runner::Simulator::with_backend`]).
//! * [`plan::InterventionPlan`] — inject faults into a run.
//! * [`live`] — a demonstration harness that drives *real* OS threads with
//!   the same intervention vocabulary, behind the same trait.

pub mod backend;
pub mod builder;
pub mod compile;
pub mod exec;
pub mod live;
// The tree-walk interpreter is no longer a public entry point: all
// execution flows through `backend::ExecBackend`. `SimConfig` and the
// failure-kind constants remain re-exported below.
pub(crate) mod machine;
pub mod plan;
pub mod program;
pub mod runner;
pub mod vm;

pub use backend::{Backend, BytecodeBackend, ExecBackend, TreeWalkBackend};
pub use builder::ProgramBuilder;
pub use compile::{compile, CompiledProgram};
pub use exec::{lower_action, plan_for, SimExecutor};
pub use machine::{SimConfig, DEADLOCK_KIND, TIMEOUT_KIND};
pub use plan::{InstanceFilter, Intervention, InterventionPlan};
pub use program::{
    ChannelDef, Cmp, Cond, Expr, InvariantDef, InvariantMode, MethodDef, ObjectDef, Op, Program,
    Reg, ThreadSpec,
};
pub use runner::Simulator;
pub use vm::{Vm, VmError};
