//! The unified execution API: one [`ExecBackend`] trait, two program
//! backends (tree-walk and bytecode), and the [`Backend`] selector.
//!
//! Everything that executes a program — [`Simulator`](crate::Simulator),
//! `aid_core::Executor` impls, engine workers, server session rebuilds, the
//! live OS-thread harness — goes through this trait, so backends are
//! interchangeable at any layer. The contract:
//!
//! * A run is a pure function of `(program, plan, config, seed)`. Backends
//!   must produce **identical** `Trace`s for identical inputs; fingerprints
//!   and cache keys are backend-independent, so intervention-cache entries
//!   are shared across backends.
//! * [`ExecBackend::try_run`] reports invalid runs (e.g. a return-value
//!   intervention on an impure method) as a typed [`VmError`] where the
//!   backend can detect them without unwinding. The bytecode VM detects all
//!   of them; the tree-walk interpreter asserts instead (its `Err` path is
//!   never taken), which callers needing isolation must handle with
//!   `catch_unwind` — the engine's worker pool does.
//!
//! Selection: [`Backend::default()`] is [`Backend::Bytecode`] when the
//! `bytecode-default` cargo feature is on (it is by default) and
//! [`Backend::TreeWalk`] otherwise; the `AID_BACKEND` environment variable
//! (`tree` / `bytecode`) overrides both at run time.

use crate::compile::{compile, CompiledProgram};
use crate::machine::{Machine, SimConfig};
use crate::plan::InterventionPlan;
use crate::program::Program;
use crate::vm::{Vm, VmError};
use aid_obs::Counter;
use aid_trace::Trace;
use parking_lot::Mutex;

/// An execution engine for compiled-in programs. Implementations are
/// shareable across threads; one instance serves any number of concurrent
/// runs.
pub trait ExecBackend: Send + Sync {
    /// Short stable name (`"tree"`, `"bytecode"`, ...), for logs and bench
    /// snapshots.
    fn name(&self) -> &'static str;

    /// Executes one run. `Err` quarantines the single run (partial state
    /// discarded; the backend stays healthy).
    fn try_run(
        &self,
        seed: u64,
        plan: &InterventionPlan,
        config: &SimConfig,
    ) -> Result<Trace, VmError>;

    /// Executes one run, panicking on a trap. For callers that know their
    /// plans are valid (e.g. plans lowered from a catalog of observed
    /// predicates).
    fn run(&self, seed: u64, plan: &InterventionPlan, config: &SimConfig) -> Trace {
        match self.try_run(seed, plan, config) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Which execution engine a [`Simulator`](crate::Simulator) uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The original tree-walk interpreter (the crate-private `machine`
    /// module).
    TreeWalk,
    /// The bytecode compiler + register VM ([`mod@crate::compile`] +
    /// [`crate::vm`]).
    Bytecode,
}

impl Backend {
    /// Short stable name, matching [`ExecBackend::name`].
    pub fn name(self) -> &'static str {
        match self {
            Backend::TreeWalk => "tree",
            Backend::Bytecode => "bytecode",
        }
    }

    /// Parses a backend name (as accepted by `AID_BACKEND`).
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "tree" | "treewalk" | "tree-walk" | "machine" => Some(Backend::TreeWalk),
            "bytecode" | "vm" | "compiled" => Some(Backend::Bytecode),
            _ => None,
        }
    }

    /// The `AID_BACKEND` environment override, if set and valid.
    pub fn from_env() -> Option<Backend> {
        std::env::var("AID_BACKEND")
            .ok()
            .and_then(|v| Backend::parse(&v))
    }
}

impl Default for Backend {
    /// `AID_BACKEND` if set, else bytecode when the `bytecode-default`
    /// feature is on, else tree-walk.
    fn default() -> Self {
        if let Some(b) = Backend::from_env() {
            return b;
        }
        if cfg!(feature = "bytecode-default") {
            Backend::Bytecode
        } else {
            Backend::TreeWalk
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The tree-walk interpreter behind the [`ExecBackend`] API.
///
/// Reference semantics; `try_run` never returns `Err` — invalid
/// interventions abort via assertion, as the machine always did.
pub struct TreeWalkBackend {
    program: Program,
}

impl TreeWalkBackend {
    /// Wraps a program.
    pub fn new(program: Program) -> Self {
        TreeWalkBackend { program }
    }
}

impl ExecBackend for TreeWalkBackend {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn try_run(
        &self,
        seed: u64,
        plan: &InterventionPlan,
        config: &SimConfig,
    ) -> Result<Trace, VmError> {
        Ok(Machine::new(&self.program, plan, config.clone(), seed).run())
    }
}

/// The bytecode VM behind the [`ExecBackend`] API.
///
/// Compiles once at construction; per-run `Vm` instances (with their reused
/// arenas) are pooled so concurrent callers don't contend on a single
/// machine and sequential callers don't re-allocate one.
pub struct BytecodeBackend {
    compiled: CompiledProgram,
    pool: Mutex<Vec<Vm>>,
    /// Scheduler ticks across all completed runs — feeds `sim.vm.steps`
    /// when the owning [`Simulator`](crate::Simulator) has a metrics
    /// registry attached; a detached no-op cell otherwise.
    steps: Counter,
}

impl BytecodeBackend {
    /// Compiles `program`.
    pub fn new(program: &Program) -> Self {
        BytecodeBackend {
            compiled: compile(program),
            pool: Mutex::new(Vec::new()),
            steps: Counter::detached(),
        }
    }

    /// Routes the cumulative per-run step counts into `cell` (normally a
    /// registry-backed `sim.vm.steps` counter).
    pub fn with_steps_counter(mut self, cell: Counter) -> Self {
        self.steps = cell;
        self
    }

    /// The compiled image (instruction stream, tables).
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }
}

impl ExecBackend for BytecodeBackend {
    fn name(&self) -> &'static str {
        "bytecode"
    }

    fn try_run(
        &self,
        seed: u64,
        plan: &InterventionPlan,
        config: &SimConfig,
    ) -> Result<Trace, VmError> {
        let mut vm = self.pool.lock().pop().unwrap_or_default();
        let result = vm.run(&self.compiled, plan, config, seed);
        if result.is_ok() {
            // Trapped runs are quarantined wholesale; only completed runs
            // report a meaningful tick count.
            self.steps.add(vm.last_steps());
        }
        self.pool.lock().push(vm);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Expr;
    use crate::ProgramBuilder;

    fn toy() -> Program {
        let mut b = ProgramBuilder::new("toy");
        let x = b.object("x", 0);
        let m = b.method("M", |mb| {
            mb.write(x, Expr::Const(1)).compute(3);
        });
        b.thread("main", m, true);
        b.build()
    }

    #[test]
    fn backend_names_and_parse_round_trip() {
        for b in [Backend::TreeWalk, Backend::Bytecode] {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(Backend::parse("vm"), Some(Backend::Bytecode));
        assert_eq!(Backend::parse("nope"), None);
    }

    #[test]
    fn both_backends_run_and_agree_via_the_trait() {
        let p = toy();
        let tree = TreeWalkBackend::new(p.clone());
        let byte = BytecodeBackend::new(&p);
        let plan = InterventionPlan::empty();
        let cfg = SimConfig::default();
        for seed in 0..10 {
            let a = tree.try_run(seed, &plan, &cfg).unwrap();
            let b = byte.try_run(seed, &plan, &cfg).unwrap();
            assert_eq!(a, b);
            assert_eq!(tree.run(seed, &plan, &cfg), a);
        }
        assert_eq!(tree.name(), "tree");
        assert_eq!(byte.name(), "bytecode");
    }

    #[test]
    fn bytecode_backend_is_shareable_across_threads() {
        let p = toy();
        let byte = std::sync::Arc::new(BytecodeBackend::new(&p));
        let plan = InterventionPlan::empty();
        let cfg = SimConfig::default();
        let expected = byte.try_run(5, &plan, &cfg).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = byte.clone();
                let plan = plan.clone();
                let cfg = cfg.clone();
                let want = expected.clone();
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        assert_eq!(b.try_run(5, &plan, &cfg).unwrap(), want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
