//! [`SimExecutor`]: drives the virtual machine as an `aid-core` intervention
//! executor.
//!
//! A round lowers the predicates' [`InterventionAction`]s to concrete
//! machine [`Intervention`]s, re-runs the program `runs_per_round` times on
//! fresh seeds, and evaluates the predicate catalog on every resulting
//! trace — the exact workflow of the paper's fault-injection phase. Because
//! the failure is intermittent, a single lucky run proves nothing;
//! `runs_per_round` controls the confidence that "no run failed" means
//! "repaired" (footnote 1 of the paper).

use crate::plan::{InstanceFilter, Intervention, InterventionPlan};
use crate::runner::Simulator;
use aid_core::{ExecutionRecord, Executor};
use aid_predicates::{evaluate, InterventionAction, PredicateCatalog, PredicateId};

/// Lowers one neutral action to machine interventions.
pub fn lower_action(action: &InterventionAction) -> Vec<Intervention> {
    match action {
        InterventionAction::Serialize { a, b } => {
            vec![Intervention::SerializeMethods { a: *a, b: *b }]
        }
        InterventionAction::Catch { site } => vec![Intervention::CatchException {
            method: site.method,
            instance: InstanceFilter::Only(site.instance),
        }],
        InterventionAction::SlowDown { site, ticks } => vec![Intervention::DelayEnd {
            method: site.method,
            instance: InstanceFilter::Only(site.instance),
            ticks: *ticks,
        }],
        InterventionAction::PrematureReturn { site, value } => {
            vec![Intervention::PrematureReturn {
                method: site.method,
                instance: InstanceFilter::Only(site.instance),
                value: *value,
            }]
        }
        InterventionAction::SuppressFlaky { site } => vec![Intervention::SuppressFlaky {
            method: site.method,
            instance: InstanceFilter::Only(site.instance),
        }],
        InterventionAction::ForceReturn { site, value } => vec![Intervention::ForceReturn {
            method: site.method,
            instance: InstanceFilter::Only(site.instance),
            value: *value,
        }],
        InterventionAction::ForceOrder { first, second } => vec![Intervention::ForceOrder {
            first: first.method,
            then: second.method,
            instance: InstanceFilter::Only(second.instance),
        }],
        InterventionAction::ForceRand { site, value } => vec![Intervention::ForceRand {
            method: site.method,
            instance: InstanceFilter::Only(site.instance),
            value: *value,
        }],
        InterventionAction::ForceRandPair {
            a,
            a_value,
            b,
            b_value,
        } => vec![
            Intervention::ForceRand {
                method: a.method,
                instance: InstanceFilter::Only(a.instance),
                value: *a_value,
            },
            Intervention::ForceRand {
                method: b.method,
                instance: InstanceFilter::Only(b.instance),
                value: *b_value,
            },
        ],
        InterventionAction::Either { primary, .. } => lower_action(primary),
    }
}

/// Builds the machine plan repairing a set of predicates.
pub fn plan_for(catalog: &PredicateCatalog, predicates: &[PredicateId]) -> InterventionPlan {
    let mut plan = InterventionPlan::empty();
    for &p in predicates {
        let pred = catalog.get(p);
        let action = pred
            .action
            .as_ref()
            .unwrap_or_else(|| panic!("predicate {p:?} has no intervention"));
        for iv in lower_action(action) {
            plan.push(iv);
        }
    }
    plan
}

/// An `aid-core` executor backed by the virtual machine.
pub struct SimExecutor {
    /// The program under test.
    pub sim: Simulator,
    /// The predicate catalog extracted from the observation phase.
    pub catalog: PredicateCatalog,
    /// The failure-indicator predicate (grouped signature).
    pub failure: PredicateId,
    /// Runs per intervention round.
    pub runs_per_round: usize,
    seed_counter: u64,
}

impl SimExecutor {
    /// Creates an executor; intervention runs draw seeds starting at
    /// `first_seed` (pick a range disjoint from the observation runs).
    pub fn new(
        sim: Simulator,
        catalog: PredicateCatalog,
        failure: PredicateId,
        runs_per_round: usize,
        first_seed: u64,
    ) -> Self {
        assert!(runs_per_round >= 1);
        SimExecutor {
            sim,
            catalog,
            failure,
            runs_per_round,
            seed_counter: first_seed,
        }
    }
}

impl Executor for SimExecutor {
    fn intervene(&mut self, predicates: &[PredicateId]) -> Vec<ExecutionRecord> {
        let plan = plan_for(&self.catalog, predicates);
        (0..self.runs_per_round)
            .map(|_| {
                let seed = self.seed_counter;
                self.seed_counter += 1;
                let trace = self.sim.run(seed, &plan);
                let obs = evaluate(&self.catalog, &trace);
                ExecutionRecord {
                    failed: obs.holds(self.failure),
                    observed: obs.observed,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_predicates::{MethodInstance, Predicate, PredicateKind};
    use aid_trace::MethodId;

    #[test]
    fn lowering_covers_every_action() {
        let site = MethodInstance::new(MethodId::from_raw(3), 1);
        let other = MethodInstance::new(MethodId::from_raw(4), 0);
        let actions = vec![
            InterventionAction::Serialize {
                a: site.method,
                b: other.method,
            },
            InterventionAction::Catch { site },
            InterventionAction::SlowDown { site, ticks: 9 },
            InterventionAction::PrematureReturn { site, value: 7 },
            InterventionAction::SuppressFlaky { site },
            InterventionAction::ForceReturn { site, value: 7 },
            InterventionAction::ForceOrder {
                first: other,
                second: site,
            },
            InterventionAction::ForceRand { site, value: 5 },
            InterventionAction::Either {
                primary: Box::new(InterventionAction::Catch { site }),
                secondary: Box::new(InterventionAction::SuppressFlaky { site }),
            },
        ];
        for a in &actions {
            assert!(!lower_action(a).is_empty());
        }
        // Either lowers to its primary.
        assert!(matches!(
            lower_action(&actions[8])[0],
            Intervention::CatchException { .. }
        ));
    }

    #[test]
    fn plan_for_concatenates_and_respects_instances() {
        let mut catalog = PredicateCatalog::new();
        let site = MethodInstance::new(MethodId::from_raw(0), 2);
        let p = catalog.insert(Predicate {
            kind: PredicateKind::RunsTooSlow {
                site,
                threshold: 10,
            },
            safe: true,
            action: Some(InterventionAction::SuppressFlaky { site }),
        });
        let plan = plan_for(&catalog, &[p]);
        assert_eq!(
            plan.interventions,
            vec![Intervention::SuppressFlaky {
                method: MethodId::from_raw(0),
                instance: InstanceFilter::Only(2),
            }]
        );
    }

    #[test]
    #[should_panic(expected = "no intervention")]
    fn plan_for_rejects_uninterventable() {
        let mut catalog = PredicateCatalog::new();
        let p = catalog.insert(Predicate {
            kind: PredicateKind::Failure {
                signature: aid_trace::FailureSignature {
                    kind: "X".into(),
                    method: MethodId::from_raw(0),
                },
            },
            safe: true,
            action: None,
        });
        plan_for(&catalog, &[p]);
    }
}
