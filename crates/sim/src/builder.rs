//! Fluent construction of [`Program`]s.
//!
//! ```
//! use aid_sim::builder::ProgramBuilder;
//! use aid_sim::program::{Cmp, Expr, Reg};
//!
//! let mut b = ProgramBuilder::new("demo");
//! let flag = b.object("flag", 0);
//! let worker = b.method("Worker", |m| {
//!     m.write(flag, Expr::Const(1)).compute(3);
//! });
//! let main = b.method("Main", |m| {
//!     m.spawn_named("worker").wait_until(Expr::Obj(flag), Cmp::Eq, Expr::Const(1));
//! });
//! b.thread("main", main, true);
//! b.thread("worker", worker, false);
//! let program = b.build();
//! assert_eq!(program.methods.len(), 2);
//! ```

use crate::program::{
    ChannelDef, Cmp, Cond, Expr, InvariantDef, InvariantMode, MethodDef, ObjectDef, Op, Program,
    Reg, ThreadSpec,
};
use aid_trace::{ChannelId, MethodId, ObjectId};
use std::collections::BTreeMap;

/// Builds a [`Program`] incrementally.
pub struct ProgramBuilder {
    name: String,
    methods: Vec<MethodDef>,
    objects: Vec<ObjectDef>,
    channels: Vec<ChannelDef>,
    invariants: Vec<InvariantDef>,
    threads: Vec<ThreadSpec>,
    thread_names: BTreeMap<String, usize>,
    pending_spawns: Vec<(MethodId, usize, String)>,
}

impl ProgramBuilder {
    /// Starts a builder for a program called `name`.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_string(),
            methods: Vec::new(),
            objects: Vec::new(),
            channels: Vec::new(),
            invariants: Vec::new(),
            threads: Vec::new(),
            thread_names: BTreeMap::new(),
            pending_spawns: Vec::new(),
        }
    }

    /// Declares a shared object with an initial value.
    pub fn object(&mut self, name: &str, initial: i64) -> ObjectId {
        let id = ObjectId::from_raw(self.objects.len() as u32);
        self.objects.push(ObjectDef {
            name: name.to_string(),
            initial,
        });
        id
    }

    /// Declares a message channel. `capacity: None` is unbounded; a latency
    /// range with `max > min` makes each send draw its delivery latency from
    /// the scheduler RNG.
    pub fn channel(
        &mut self,
        name: &str,
        capacity: Option<u32>,
        latency_min: u64,
        latency_max: u64,
    ) -> ChannelId {
        let id = ChannelId::from_raw(self.channels.len() as u32);
        self.channels.push(ChannelDef {
            name: name.to_string(),
            capacity,
            latency_min,
            latency_max,
        });
        id
    }

    /// Declares an `always` invariant: `lhs cmp rhs` must hold at every
    /// observation point or the run fails with kind `always:<name>`.
    pub fn invariant_always(&mut self, name: &str, lhs: Expr, cmp: Cmp, rhs: Expr) {
        self.invariants.push(InvariantDef {
            name: name.to_string(),
            mode: InvariantMode::Always,
            cond: Cond::new(lhs, cmp, rhs),
        });
    }

    /// Declares an `eventually` invariant: `lhs cmp rhs` must hold at some
    /// observation point before the run finishes, or the run fails with kind
    /// `eventually:<name>`.
    pub fn invariant_eventually(&mut self, name: &str, lhs: Expr, cmp: Cmp, rhs: Expr) {
        self.invariants.push(InvariantDef {
            name: name.to_string(),
            mode: InvariantMode::Eventually,
            cond: Cond::new(lhs, cmp, rhs),
        });
    }

    /// Defines an impure method (may mutate shared state).
    pub fn method(&mut self, name: &str, f: impl FnOnce(&mut BodyBuilder)) -> MethodId {
        self.method_inner(name, false, f)
    }

    /// Defines a pure method (safe for return-value interventions).
    pub fn pure_method(&mut self, name: &str, f: impl FnOnce(&mut BodyBuilder)) -> MethodId {
        self.method_inner(name, true, f)
    }

    fn method_inner(
        &mut self,
        name: &str,
        pure: bool,
        f: impl FnOnce(&mut BodyBuilder),
    ) -> MethodId {
        let id = MethodId::from_raw(self.methods.len() as u32);
        let mut body = BodyBuilder {
            ops: Vec::new(),
            named_spawns: Vec::new(),
        };
        f(&mut body);
        for (pos, name) in body.named_spawns {
            self.pending_spawns.push((id, pos, name));
        }
        self.methods.push(MethodDef {
            name: name.to_string(),
            pure,
            body: body.ops,
        });
        id
    }

    /// Declares a thread. Returns its index (usable in `Op::Spawn`/`Join`).
    pub fn thread(&mut self, name: &str, entry: MethodId, auto_start: bool) -> usize {
        let idx = self.threads.len();
        self.threads.push(ThreadSpec {
            name: name.to_string(),
            entry,
            auto_start,
        });
        self.thread_names.insert(name.to_string(), idx);
        idx
    }

    /// Finalizes, resolving named spawns and validating.
    pub fn build(mut self) -> Program {
        for (method, pos, name) in std::mem::take(&mut self.pending_spawns) {
            let idx = *self
                .thread_names
                .get(&name)
                .unwrap_or_else(|| panic!("spawn of unknown thread {name:?}"));
            self.methods[method.index()].body[pos] = Op::Spawn { thread: idx };
        }
        let p = Program {
            name: self.name,
            methods: self.methods,
            objects: self.objects,
            channels: self.channels,
            invariants: self.invariants,
            threads: self.threads,
        };
        p.validate();
        p
    }
}

/// Builds one method body. All methods return `&mut Self` for chaining.
pub struct BodyBuilder {
    ops: Vec<Op>,
    named_spawns: Vec<(usize, String)>,
}

impl BodyBuilder {
    /// Appends a raw op.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// `reg = object` (recorded read).
    pub fn read(&mut self, object: ObjectId, reg: Reg) -> &mut Self {
        self.op(Op::Read { object, reg })
    }

    /// `object = value` (recorded write).
    pub fn write(&mut self, object: ObjectId, value: Expr) -> &mut Self {
        self.op(Op::Write { object, value })
    }

    /// Atomic read-and-throw-if (recorded read).
    pub fn throw_if_obj(&mut self, object: ObjectId, cmp: Cmp, rhs: Expr, kind: &str) -> &mut Self {
        self.op(Op::ThrowIfObj {
            object,
            cmp,
            rhs,
            kind: kind.to_string(),
        })
    }

    /// Burn `cost` ticks.
    pub fn compute(&mut self, cost: u64) -> &mut Self {
        self.op(Op::Compute { cost })
    }

    /// Burn a random number of ticks in `[min, max]`.
    pub fn jitter(&mut self, min: u64, max: u64) -> &mut Self {
        self.op(Op::JitterCompute { min, max })
    }

    /// With probability `prob`, burn `ticks` (transient fault).
    pub fn flaky_delay(&mut self, prob: f64, ticks: u64) -> &mut Self {
        self.op(Op::FlakyDelay { prob, ticks })
    }

    /// `reg = value`.
    pub fn set(&mut self, reg: Reg, value: Expr) -> &mut Self {
        self.op(Op::LocalSet { reg, value })
    }

    /// `reg = if lhs cmp rhs { then_value } else { else_value }`.
    pub fn set_if(
        &mut self,
        reg: Reg,
        lhs: Expr,
        cmp: Cmp,
        rhs: Expr,
        then_value: Expr,
        else_value: Expr,
    ) -> &mut Self {
        self.op(Op::SetIf {
            reg,
            cond: Cond::new(lhs, cmp, rhs),
            then_value,
            else_value,
        })
    }

    /// Burn `cost` ticks iff `lhs cmp rhs`.
    pub fn compute_if(&mut self, lhs: Expr, cmp: Cmp, rhs: Expr, cost: u64) -> &mut Self {
        self.op(Op::ComputeIf {
            cond: Cond::new(lhs, cmp, rhs),
            cost,
        })
    }

    /// `reg = uniform(lo..=hi)` from the program RNG.
    pub fn rand_range(&mut self, reg: Reg, lo: i64, hi: i64) -> &mut Self {
        self.op(Op::RandRange { reg, lo, hi })
    }

    /// Synchronous call.
    pub fn call(&mut self, method: MethodId) -> &mut Self {
        self.op(Op::Call { method })
    }

    /// Call with a catch at this boundary.
    pub fn try_call(&mut self, method: MethodId) -> &mut Self {
        self.op(Op::TryCall { method })
    }

    /// Synchronous calls to each method in order — the generation hook
    /// program generators (e.g. `aid_lab`) use to splice batches of
    /// decoration methods (mirrors, propagator chains) into a body.
    pub fn call_each(&mut self, methods: &[MethodId]) -> &mut Self {
        for &m in methods {
            self.call(m);
        }
        self
    }

    /// Return a value.
    pub fn ret(&mut self, value: Expr) -> &mut Self {
        self.op(Op::Return { value: Some(value) })
    }

    /// Return without a value.
    pub fn ret_void(&mut self) -> &mut Self {
        self.op(Op::Return { value: None })
    }

    /// Throw unconditionally.
    pub fn throw(&mut self, kind: &str) -> &mut Self {
        self.op(Op::Throw {
            kind: kind.to_string(),
        })
    }

    /// Throw if `lhs cmp rhs`.
    pub fn throw_if(&mut self, lhs: Expr, cmp: Cmp, rhs: Expr, kind: &str) -> &mut Self {
        self.op(Op::ThrowIf {
            cond: Cond::new(lhs, cmp, rhs),
            kind: kind.to_string(),
        })
    }

    /// Spawn a thread by name (resolved at `build()`).
    pub fn spawn_named(&mut self, thread: &str) -> &mut Self {
        self.named_spawns.push((self.ops.len(), thread.to_string()));
        // placeholder patched in build()
        self.op(Op::Spawn { thread: usize::MAX })
    }

    /// Join a thread by index.
    pub fn join(&mut self, thread: usize) -> &mut Self {
        self.op(Op::Join { thread })
    }

    /// Acquire a program lock.
    pub fn acquire(&mut self, lock: ObjectId) -> &mut Self {
        self.op(Op::Acquire { lock })
    }

    /// Release a program lock.
    pub fn release(&mut self, lock: ObjectId) -> &mut Self {
        self.op(Op::Release { lock })
    }

    /// Sleep for `ticks`.
    pub fn sleep(&mut self, ticks: u64) -> &mut Self {
        self.op(Op::Sleep { ticks })
    }

    /// Block until `lhs cmp rhs` over shared state.
    pub fn wait_until(&mut self, lhs: Expr, cmp: Cmp, rhs: Expr) -> &mut Self {
        self.op(Op::WaitUntil {
            cond: Cond::new(lhs, cmp, rhs),
        })
    }

    /// Send `value` into `channel` unconditionally.
    pub fn send(&mut self, channel: ChannelId, value: Expr) -> &mut Self {
        self.op(Op::Send {
            channel,
            value,
            guard: None,
        })
    }

    /// Send `value` into `channel` only when `lhs cmp rhs` holds at send
    /// time; otherwise continue without sending.
    pub fn send_if(
        &mut self,
        channel: ChannelId,
        value: Expr,
        lhs: Expr,
        cmp: Cmp,
        rhs: Expr,
    ) -> &mut Self {
        self.op(Op::Send {
            channel,
            value,
            guard: Some(Cond::new(lhs, cmp, rhs)),
        })
    }

    /// Receive from `channel` into `reg`, blocking forever.
    pub fn recv(&mut self, channel: ChannelId, reg: Reg) -> &mut Self {
        self.op(Op::Recv {
            channel,
            reg,
            timeout: 0,
        })
    }

    /// Receive from `channel` into `reg`, giving up after `timeout` ticks
    /// (the register then holds the `-1` timeout sentinel).
    pub fn recv_timeout(&mut self, channel: ChannelId, reg: Reg, timeout: u64) -> &mut Self {
        self.op(Op::Recv {
            channel,
            reg,
            timeout,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = ProgramBuilder::new("t");
        let o1 = b.object("a", 0);
        let o2 = b.object("b", 1);
        assert_eq!(o1.raw(), 0);
        assert_eq!(o2.raw(), 1);
        let m = b.method("m", |mb| {
            mb.read(o1, Reg(0)).write(o2, Expr::Const(5));
        });
        b.thread("main", m, true);
        let p = b.build();
        assert_eq!(p.methods[0].body.len(), 2);
        assert!(!p.methods[0].pure);
    }

    #[test]
    fn named_spawn_is_resolved() {
        let mut b = ProgramBuilder::new("t");
        let worker = b.method("w", |mb| {
            mb.compute(1);
        });
        let main = b.method("m", |mb| {
            mb.spawn_named("wt").join(1);
        });
        b.thread("main", main, true);
        b.thread("wt", worker, false);
        let p = b.build();
        assert_eq!(p.methods[1].body[0], Op::Spawn { thread: 1 });
    }

    #[test]
    #[should_panic(expected = "unknown thread")]
    fn unknown_spawn_panics() {
        let mut b = ProgramBuilder::new("t");
        let m = b.method("m", |mb| {
            mb.spawn_named("ghost");
        });
        b.thread("main", m, true);
        b.build();
    }
}
