//! The bytecode register VM: executes a [`CompiledProgram`] under an
//! [`InterventionPlan`], producing a [`Trace`] **bit-identical** to the
//! tree-walk interpreter's (the crate-private `machine` module).
//!
//! # Equivalence contract
//!
//! This file is a line-for-line transliteration of `machine.rs` over the
//! flat instruction stream. Anything observable must match exactly:
//!
//! * **Clock**: one tick per micro-step, same micro-step decomposition
//!   (lazy thread entry, pending injected-lock acquisition, burn countdown,
//!   epilogue end-delay, same-tick frame pop).
//! * **RNG draw sequence**: the scheduler RNG (`seed`) and program RNG
//!   (`seed ^ 0x9e37_79b9_7f4a_7c15`) are consulted at exactly the same
//!   sites in the same order — one `random_range` per scheduling decision,
//!   one per `JitterCompute` with `max > min`, one `random_bool` per
//!   non-suppressed `FlakyDelay`, one `random_range` per non-forced
//!   `RandRange`. A draw skipped (or added) anywhere would shear every
//!   subsequent scheduling decision.
//! * **Intervention semantics**: first-match-wins in plan order for
//!   premature/force-return/force-order/force-rand, sum over matches for
//!   delays, any-match for catch/suppress, serialize locks acquired in
//!   intervention-index order. The per-run `PlanTable` is a pre-indexed
//!   view of the plan that preserves plan order per method, so lookups are
//!   O(matching interventions) instead of O(plan).
//!
//! Differential fuzzing (`tests/differential_fuzz.rs`), the six case
//! studies, and lab conformance invariant #8 all pin this contract.
//!
//! # Memory model
//!
//! The `Vm` owns reusable arenas — shared-object values, lock tables,
//! per-thread register files and frame stacks, a frame free-list, an
//! expression scratch stack sized to the program's max expression depth,
//! and the scheduler's ready buffer. [`Vm::run`] resets them in place, so
//! steady-state execution allocates only what escapes into the returned
//! `Trace` (events and their access lists).
//!
//! # Trap handling (fail-safe)
//!
//! Where the tree-walk machine `assert!`s on invalid programs or invalid
//! interventions (premature/force-return on an impure method, releasing an
//! unowned lock, double spawn), the VM returns a typed [`VmError`] and
//! discards the partial run. The machine stays reusable afterwards; callers
//! (engine workers, servers) quarantine the single run instead of losing a
//! thread to a panic.

use crate::compile::{
    CompiledProgram, CondRef, EOp, ExprRef, Instr, KindId, KIND_DEADLOCK, KIND_TIMEOUT,
};
use crate::machine::SimConfig;
use crate::plan::{InstanceFilter, Intervention, InterventionPlan};
use crate::program::NUM_REGS;
use aid_trace::{
    AccessEvent, AccessKind, ChannelId, FailureSignature, MethodEvent, MethodId, MsgEvent, MsgKind,
    ObjectId, Outcome, ThreadId, Time, Trace,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A typed trap: the single run is invalid and was discarded. The [`Vm`]
/// itself remains healthy and reusable.
///
/// These correspond one-to-one to the `assert!` sites of the tree-walk
/// machine; the VM converts them into per-run errors so a bad intervention
/// (or a malformed program) quarantines one execution instead of poisoning
/// an engine worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// A premature-return intervention targeted an impure method.
    PrematureReturnImpure {
        /// The method's name.
        method: String,
    },
    /// A force-return intervention targeted an impure method.
    ForceReturnImpure {
        /// The method's name.
        method: String,
    },
    /// A `Release` of a lock the thread does not own.
    ReleaseUnowned {
        /// The lock object's name.
        lock: String,
    },
    /// A `Spawn` of a thread that was already started (or auto-starts).
    SpawnTwice {
        /// The thread index.
        thread: usize,
    },
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::PrematureReturnImpure { method } => {
                write!(f, "premature-return intervention on impure method {method}")
            }
            VmError::ForceReturnImpure { method } => {
                write!(f, "force-return intervention on impure method {method}")
            }
            VmError::ReleaseUnowned { lock } => {
                write!(f, "release of lock {lock} not owned")
            }
            VmError::SpawnTwice { thread } => {
                write!(f, "thread {thread} spawned twice (or auto-start)")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Thread scheduling state (the VM's `Copy` mirror of the machine's).
/// `BlockedWait` caches the compiled condition so the scheduler re-checks it
/// without re-fetching the instruction (the frame is frozen while blocked).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum TState {
    #[default]
    NotStarted,
    Ready,
    BlockedLock(u32),
    BlockedInjectedLock(usize),
    BlockedJoin(usize),
    Sleeping(Time),
    BlockedWait(CondRef),
    BlockedOrder(u32),
    /// Blocked on a full bounded channel; wakes when a receive frees a slot.
    BlockedSend(u32),
    /// Blocked on an empty mailbox; wakes on delivery or at the deadline
    /// (`Time::MAX` = wait forever). Not freed by the liveness valve — a
    /// circular channel wait fails as a deadlock, matching the machine.
    BlockedRecv {
        chan: u32,
        deadline: Time,
    },
    Done,
}

/// A message either in transit or sitting in a mailbox (the VM's `Copy`
/// mirror of the machine's `Msg`).
#[derive(Clone, Copy, Debug)]
struct VmMsg {
    seq: u32,
    value: i64,
    sent: Time,
    deliver_at: Time,
    sender: u32,
    dup: bool,
}

/// Per-channel runtime state, recycled between runs.
#[derive(Debug, Default)]
struct VmChan {
    /// Sent but not yet delivered, unordered (the pump scans for due ones).
    transit: Vec<VmMsg>,
    /// Delivered and receiver-visible, in delivery order.
    mailbox: VecDeque<VmMsg>,
    next_seq: u32,
}

/// One activation record. Vector fields are recycled through the frame
/// free-list; `pending_head` replaces the machine's `Vec::remove(0)` queue
/// so acquisition order is preserved without shifting.
#[derive(Debug, Default)]
struct VmFrame {
    method: u32,
    instance: u32,
    pc: u32,
    start: Time,
    started: bool,
    accesses: Vec<AccessEvent>,
    returned: Option<i64>,
    burn: u64,
    catch_boundary: bool,
    injected_locks: Vec<usize>,
    pending_injected: Vec<usize>,
    pending_head: usize,
    program_locks: Vec<u32>,
    end_delay: u64,
    in_epilogue: bool,
    /// Deadline of an in-progress timed `Recv` at this frame's current pc
    /// (same state machine as the tree-walk's `Frame::recv_deadline`).
    recv_deadline: Option<Time>,
}

impl VmFrame {
    fn reinit(
        &mut self,
        method: u32,
        instance: u32,
        clock: Time,
        delay_start: u64,
        catch_boundary: bool,
        end_delay: u64,
    ) {
        self.method = method;
        self.instance = instance;
        self.pc = 0;
        self.start = clock;
        self.started = false;
        self.accesses.clear();
        self.returned = None;
        self.burn = delay_start;
        self.catch_boundary = catch_boundary;
        self.injected_locks.clear();
        self.pending_injected.clear();
        self.pending_head = 0;
        self.program_locks.clear();
        self.end_delay = end_delay;
        self.in_epilogue = false;
        self.recv_deadline = None;
    }

    fn pending_done(&self) -> bool {
        self.pending_head >= self.pending_injected.len()
    }
}

#[derive(Debug, Default)]
struct VmThread {
    /// Call stack as indices into the VM's frame arena — frames themselves
    /// never move, so push/pop shuffles 4 bytes instead of whole structs.
    frames: Vec<u32>,
    regs: [i64; NUM_REGS],
    entered: bool,
}

/// Per-method intervention hooks, in plan order (so `find` = the machine's
/// plan-order `find_map`, `sum`/`any` likewise).
#[derive(Debug, Default)]
struct MethodHooks {
    premature: Vec<(InstanceFilter, i64)>,
    force_return: Vec<(InstanceFilter, i64)>,
    force_rand: Vec<(InstanceFilter, i64)>,
    catch: Vec<InstanceFilter>,
    suppress: Vec<InstanceFilter>,
    delay_start: Vec<(InstanceFilter, u64)>,
    delay_end: Vec<(InstanceFilter, u64)>,
    /// `(instance filter of `then`, method that must complete first)`.
    order: Vec<(InstanceFilter, u32)>,
    /// Serialize-lock slots guarding this method, in intervention order.
    injected_slots: Vec<usize>,
}

impl MethodHooks {
    fn clear(&mut self) {
        self.premature.clear();
        self.force_return.clear();
        self.force_rand.clear();
        self.catch.clear();
        self.suppress.clear();
        self.delay_start.clear();
        self.delay_end.clear();
        self.order.clear();
        self.injected_slots.clear();
    }
}

/// Per-channel fault-plane hooks, in plan order (delays sum over matches;
/// drop/duplicate/reorder are any-match — order-insensitive, so pre-indexing
/// preserves the machine's plan-scan semantics exactly).
#[derive(Debug, Default)]
struct ChannelHooks {
    delay: Vec<(InstanceFilter, u64)>,
    drop: Vec<InstanceFilter>,
    dup: Vec<InstanceFilter>,
    reorder: Vec<InstanceFilter>,
}

impl ChannelHooks {
    fn clear(&mut self) {
        self.delay.clear();
        self.drop.clear();
        self.dup.clear();
        self.reorder.clear();
    }
}

/// The plan, pre-indexed by method. Rebuilt in place per run.
#[derive(Debug, Default)]
struct PlanTable {
    methods: Vec<MethodHooks>,
    channels: Vec<ChannelHooks>,
    /// Number of serialize-lock slots the plan defines.
    n_injected: usize,
    /// Fast path: the plan is empty, so every hook lookup is a miss.
    no_hooks: bool,
}

impl PlanTable {
    fn rebuild(&mut self, plan: &InterventionPlan, n_methods: usize, n_channels: usize) {
        self.no_hooks = plan.interventions.is_empty();
        if self.methods.len() < n_methods {
            self.methods.resize_with(n_methods, MethodHooks::default);
        }
        for h in &mut self.methods[..n_methods] {
            h.clear();
        }
        if self.channels.len() < n_channels {
            self.channels.resize_with(n_channels, ChannelHooks::default);
        }
        for h in &mut self.channels[..n_channels] {
            h.clear();
        }
        let mut slot = 0usize;
        for iv in &plan.interventions {
            match iv {
                Intervention::SerializeMethods { a, b } => {
                    self.methods[a.index()].injected_slots.push(slot);
                    if b != a {
                        self.methods[b.index()].injected_slots.push(slot);
                    }
                    slot += 1;
                }
                Intervention::DelayStart {
                    method,
                    instance,
                    ticks,
                } => self.methods[method.index()]
                    .delay_start
                    .push((*instance, *ticks)),
                Intervention::DelayEnd {
                    method,
                    instance,
                    ticks,
                } => self.methods[method.index()]
                    .delay_end
                    .push((*instance, *ticks)),
                Intervention::PrematureReturn {
                    method,
                    instance,
                    value,
                } => self.methods[method.index()]
                    .premature
                    .push((*instance, *value)),
                Intervention::ForceReturn {
                    method,
                    instance,
                    value,
                } => self.methods[method.index()]
                    .force_return
                    .push((*instance, *value)),
                Intervention::CatchException { method, instance } => {
                    self.methods[method.index()].catch.push(*instance)
                }
                Intervention::ForceOrder {
                    first,
                    then,
                    instance,
                } => self.methods[then.index()]
                    .order
                    .push((*instance, first.index() as u32)),
                Intervention::SuppressFlaky { method, instance } => {
                    self.methods[method.index()].suppress.push(*instance)
                }
                Intervention::ForceRand {
                    method,
                    instance,
                    value,
                } => self.methods[method.index()]
                    .force_rand
                    .push((*instance, *value)),
                // A fault on a channel the program doesn't define can never
                // match a send; the machine silently ignores it, so do we.
                Intervention::DelayDelivery {
                    channel,
                    seq,
                    ticks,
                } if channel.index() < n_channels => {
                    self.channels[channel.index()].delay.push((*seq, *ticks))
                }
                Intervention::DropDelivery { channel, seq } if channel.index() < n_channels => {
                    self.channels[channel.index()].drop.push(*seq)
                }
                Intervention::DuplicateDelivery { channel, seq }
                    if channel.index() < n_channels =>
                {
                    self.channels[channel.index()].dup.push(*seq)
                }
                Intervention::ReorderDelivery { channel, seq } if channel.index() < n_channels => {
                    self.channels[channel.index()].reorder.push(*seq)
                }
                Intervention::DelayDelivery { .. }
                | Intervention::DropDelivery { .. }
                | Intervention::DuplicateDelivery { .. }
                | Intervention::ReorderDelivery { .. } => {}
            }
        }
        self.n_injected = slot;
    }
}

/// A reusable bytecode machine. One `Vm` executes any number of runs of any
/// number of programs; arenas are reset in place between runs.
#[derive(Debug)]
pub struct Vm {
    clock: Time,
    shared: Vec<i64>,
    /// Program lock owners (indexed by object id).
    lock_owner: Vec<Option<usize>>,
    /// Injected serialize-lock state: `(owner thread, reentrancy depth)` per
    /// slot.
    injected: Vec<(Option<usize>, u32)>,
    threads: Vec<VmThread>,
    /// Scheduling states, parallel to `threads` — kept contiguous so the
    /// per-tick scheduler scan touches one small array.
    states: Vec<TState>,
    started_instances: Vec<u32>,
    completed_instances: Vec<u32>,
    events: Vec<MethodEvent>,
    /// Per-channel runtime state.
    channels: Vec<VmChan>,
    /// Message events of the current run (sends, deliveries, receives,
    /// drops), in emission order; `Trace::normalize` sorts them.
    msgs: Vec<MsgEvent>,
    /// Per-invariant "has held at some observation point" flag (only
    /// meaningful for `eventually` invariants).
    eventually_ok: Vec<bool>,
    /// `(kind id, origin method index)` of a run-wide failure.
    failure: Option<(KindId, u32)>,
    hooks: PlanTable,
    /// Postfix expression evaluation stack.
    scratch: Vec<i64>,
    /// Scheduler candidate buffer.
    ready_buf: Vec<usize>,
    /// Frame arena; thread stacks hold indices into it.
    frame_arena: Vec<VmFrame>,
    /// Arena slots available for reuse.
    free_frames: Vec<u32>,
    /// Event count of the previous run — pre-sizes `events` so steady-state
    /// runs of the same program do one allocation instead of doubling up.
    events_hint: usize,
    /// While true, `pop_frame` (and the premature-return shortcut) log what
    /// they release/complete into the `repair_*` accumulators so the spin
    /// loop can repair its cached ready set incrementally instead of paying
    /// a full rescan.
    track_repair: bool,
    /// Program locks released since the accumulators were last cleared.
    repair_locks: Vec<u32>,
    /// Injected serialize-lock slots freed since last cleared.
    repair_slots: Vec<usize>,
    /// Methods whose completion count grew since last cleared.
    repair_methods: Vec<u32>,
    /// Telemetry: full scheduler rescans this run.
    n_scans: u64,
    /// Telemetry: incremental ready-set repairs that avoided a rescan.
    n_repairs: u64,
    /// Telemetry: scheduler ticks consumed by the last completed run.
    last_steps: u64,
    rng_sched: StdRng,
    rng_prog: StdRng,
}

impl Default for Vm {
    fn default() -> Self {
        Vm::new()
    }
}

impl Vm {
    /// A fresh machine with empty arenas.
    pub fn new() -> Self {
        Vm {
            clock: 0,
            shared: Vec::new(),
            lock_owner: Vec::new(),
            injected: Vec::new(),
            threads: Vec::new(),
            states: Vec::new(),
            started_instances: Vec::new(),
            completed_instances: Vec::new(),
            events: Vec::new(),
            channels: Vec::new(),
            msgs: Vec::new(),
            eventually_ok: Vec::new(),
            failure: None,
            hooks: PlanTable::default(),
            scratch: Vec::new(),
            ready_buf: Vec::new(),
            frame_arena: Vec::new(),
            free_frames: Vec::new(),
            events_hint: 0,
            track_repair: false,
            repair_locks: Vec::new(),
            repair_slots: Vec::new(),
            repair_methods: Vec::new(),
            n_scans: 0,
            n_repairs: 0,
            last_steps: 0,
            rng_sched: StdRng::seed_from_u64(0),
            rng_prog: StdRng::seed_from_u64(0),
        }
    }

    /// Telemetry of the last run: `(full scheduler rescans, incremental
    /// ready-set repairs)`. A repair is a rescan the spin loop avoided after
    /// an event-dense tick (frame pop / premature return) by patching the
    /// cached ready set in place.
    pub fn sched_telemetry(&self) -> (u64, u64) {
        (self.n_scans, self.n_repairs)
    }

    /// Scheduler ticks consumed by the last completed (non-trapping) run —
    /// the `sim.vm.steps` telemetry source.
    pub fn last_steps(&self) -> u64 {
        self.last_steps
    }

    /// Executes one run. On a trap the partial run is discarded and the VM
    /// stays reusable.
    pub fn run(
        &mut self,
        prog: &CompiledProgram,
        plan: &InterventionPlan,
        config: &SimConfig,
        seed: u64,
    ) -> Result<Trace, VmError> {
        self.reset(prog, plan, seed);
        // Initial observation point: an `always` invariant false over the
        // initial state fails immediately; an `eventually` one may already
        // hold. (Same site as the machine's pre-loop check.)
        if !prog.invariants.is_empty() {
            let init_origin = prog.threads[0].entry;
            if let Err(e) = self.check_invariants(prog, init_origin) {
                self.events.clear();
                self.msgs.clear();
                return Err(e);
            }
        }
        match self.drive(prog, config) {
            Ok(steps) => {
                self.last_steps = steps;
                Ok(self.finish(prog, seed))
            }
            Err(e) => {
                // Quarantine: drop the partial trace; arenas are re-reset by
                // the next run.
                self.events.clear();
                self.msgs.clear();
                Err(e)
            }
        }
    }

    fn reset(&mut self, prog: &CompiledProgram, plan: &InterventionPlan, seed: u64) {
        self.clock = 0;
        self.failure = None;
        self.shared.clear();
        self.shared.extend_from_slice(&prog.objects_init);
        self.lock_owner.clear();
        self.lock_owner.resize(prog.objects_init.len(), None);
        self.hooks
            .rebuild(plan, prog.methods.len(), prog.channels.len());
        self.injected.clear();
        self.injected.resize(self.hooks.n_injected, (None, 0));
        for t in &mut self.threads {
            t.frames.clear();
        }
        self.free_frames.clear();
        self.free_frames
            .extend((0..self.frame_arena.len() as u32).rev());
        if self.threads.len() > prog.threads.len() {
            self.threads.truncate(prog.threads.len());
        }
        while self.threads.len() < prog.threads.len() {
            self.threads.push(VmThread::default());
        }
        self.states.clear();
        for spec in &prog.threads {
            self.states.push(if spec.auto_start {
                TState::Ready
            } else {
                TState::NotStarted
            });
        }
        for t in &mut self.threads {
            t.regs = [0; NUM_REGS];
            t.entered = false;
        }
        self.started_instances.clear();
        self.started_instances.resize(prog.methods.len(), 0);
        self.completed_instances.clear();
        self.completed_instances.resize(prog.methods.len(), 0);
        self.channels.truncate(prog.channels.len());
        while self.channels.len() < prog.channels.len() {
            self.channels.push(VmChan::default());
        }
        for ch in &mut self.channels {
            ch.transit.clear();
            ch.mailbox.clear();
            ch.next_seq = 0;
        }
        self.msgs.clear();
        self.eventually_ok.clear();
        self.eventually_ok.resize(prog.invariants.len(), false);
        self.track_repair = false;
        self.n_scans = 0;
        self.n_repairs = 0;
        self.events.clear();
        self.events.reserve(self.events_hint);
        if self.scratch.capacity() < prog.max_eval_depth {
            self.scratch
                .reserve(prog.max_eval_depth - self.scratch.capacity());
        }
        self.rng_sched = StdRng::seed_from_u64(seed);
        self.rng_prog = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    }

    /// The machine's main loop. Tick-for-tick equivalent to the tree walk,
    /// with one structural optimization: scan-free spinning. After a real
    /// scheduling scan, as long as every tick is a pure burn/end-delay
    /// decrement, nothing outside the ready set can change — shared objects,
    /// locks, and instance counters are all frozen — so the scan result
    /// stays valid and subsequent picks draw directly from the cached ready
    /// buffer. The spin stops at the first tick that executes an actual
    /// instruction (which can change the world), when the clock reaches a
    /// sleeper's wake time, or when a blocked wait condition reads the clock
    /// (`uses_now`, flagged at compile time). Every skipped scan still
    /// consumes its scheduler draw, so the RNG stream — and therefore the
    /// trace — stays bit-identical to the tree walk.
    fn drive(&mut self, prog: &CompiledProgram, config: &SimConfig) -> Result<u64, VmError> {
        let mut steps: u64 = 0;
        'scan: loop {
            if self.failure.is_some() {
                return Ok(steps);
            }
            if self.states.iter().all(|s| *s == TState::Done) {
                return Ok(steps);
            }
            let Some(mut tid) = self.pick_thread(prog) else {
                if self.release_liveness_valve() {
                    continue;
                }
                self.fail_all(prog, KIND_DEADLOCK)?;
                return Ok(steps);
            };
            // Sleepers bound how far the clock may advance before a rescan;
            // time-dependent wait conditions forbid spinning outright.
            // Channel programs forbid it too: the machine pumps deliveries
            // at every scheduling decision, so every tick must come back
            // through `pick_thread` for the clock/draw sequences to match.
            let mut wake_limit = Time::MAX;
            let mut can_spin = prog.channels.is_empty();
            for s in &self.states {
                match *s {
                    TState::Sleeping(until) => wake_limit = wake_limit.min(until),
                    TState::BlockedWait(cond) if cond.uses_now => can_spin = false,
                    _ => {}
                }
            }
            loop {
                // Single runnable thread: its whole decrement run batches
                // into one update, and the skipped draws are discard-only
                // loops the compiler strength-reduces into an O(1) RNG
                // fast-forward (SplitMix64 advances by a constant add).
                if can_spin && self.ready_buf.len() == 1 {
                    let limit = (config.max_steps - steps).min(wake_limit - self.clock);
                    let k = self.bulk_ticks(tid, limit);
                    if k > 0 {
                        steps += k;
                        if steps >= config.max_steps {
                            // Draws for the skipped picks, so the stream
                            // state matches the machine's even at death.
                            for _ in 1..k {
                                self.rng_sched.random_range(0..1usize);
                            }
                            self.fail_all(prog, KIND_TIMEOUT)?;
                            return Ok(steps);
                        }
                        if self.clock >= wake_limit {
                            for _ in 1..k {
                                self.rng_sched.random_range(0..1usize);
                            }
                            continue 'scan;
                        }
                        // Skipped picks plus the next tick's pick — all of
                        // which can only choose this thread again.
                        for _ in 0..k {
                            self.rng_sched.random_range(0..1usize);
                        }
                        continue;
                    }
                }
                if self.fast_tick(tid) {
                    steps += 1;
                    if steps >= config.max_steps {
                        self.fail_all(prog, KIND_TIMEOUT)?;
                        return Ok(steps);
                    }
                } else if can_spin && self.scan_preserving(prog, tid) {
                    // A real instruction, but one that cannot silently wake
                    // another thread. Step it and keep spinning — unless the
                    // post-checks say the world changed: the thread left
                    // Ready (blocked, slept, finished), or a frame closed
                    // (`pop_frame` and the premature-return shortcut release
                    // locks and bump completion counters; both record a
                    // `MethodEvent`, so the event count is an exact tripwire).
                    // An event-dense tick with the thread still Ready is
                    // repaired incrementally: the accumulators name exactly
                    // which locks/slots/completions changed, so the cached
                    // ready set is patched in place instead of rescanned.
                    let events_before = self.events.len();
                    self.track_repair = true;
                    self.repair_locks.clear();
                    self.repair_slots.clear();
                    self.repair_methods.clear();
                    let stepped = self.step(prog, tid);
                    self.track_repair = false;
                    stepped?;
                    steps += 1;
                    if steps >= config.max_steps {
                        self.fail_all(prog, KIND_TIMEOUT)?;
                        return Ok(steps);
                    }
                    if self.states[tid] != TState::Ready {
                        continue 'scan;
                    }
                    if self.events.len() != events_before {
                        self.repair_ready_set();
                        self.n_repairs += 1;
                    }
                } else {
                    self.step(prog, tid)?;
                    steps += 1;
                    if steps >= config.max_steps {
                        self.fail_all(prog, KIND_TIMEOUT)?;
                        return Ok(steps);
                    }
                    continue 'scan;
                }
                if !can_spin || self.clock >= wake_limit {
                    continue 'scan;
                }
                let i = self.rng_sched.random_range(0..self.ready_buf.len());
                tid = self.ready_buf[i];
            }
        }
    }

    /// Batches up to `limit` consecutive pure-decrement ticks of `tid`'s
    /// top frame into one update, returning how many were consumed (0 when
    /// the next tick is not a decrement). Only valid when `tid` is the
    /// sole runnable thread — the caller accounts for the skipped
    /// scheduler draws.
    #[inline]
    fn bulk_ticks(&mut self, tid: usize, limit: u64) -> u64 {
        let th = &self.threads[tid];
        if !th.entered {
            return 0;
        }
        let Some(&fi) = th.frames.last() else {
            return 0;
        };
        let f = &mut self.frame_arena[fi as usize];
        if !f.pending_done() {
            return 0;
        }
        let k = if f.burn > 0 {
            let k = f.burn.min(limit);
            f.burn -= k;
            k
        } else if f.in_epilogue && f.end_delay > 0 {
            let k = f.end_delay.min(limit);
            f.end_delay -= k;
            k
        } else {
            return 0;
        };
        self.clock += k;
        k
    }

    /// Executes the tick if it is a pure decrement of `tid`'s top frame —
    /// an in-progress burn or epilogue end-delay — and returns whether it
    /// was. Mirrors exactly the first decrement branches of [`Vm::step`];
    /// any other kind of tick returns `false` untouched so the caller runs
    /// the full step.
    #[inline]
    fn fast_tick(&mut self, tid: usize) -> bool {
        let th = &self.threads[tid];
        if !th.entered {
            return false;
        }
        let Some(&fi) = th.frames.last() else {
            return false;
        };
        let f = &mut self.frame_arena[fi as usize];
        if !f.pending_done() {
            return false;
        }
        if f.burn > 0 {
            f.burn -= 1;
        } else if f.in_epilogue && f.end_delay > 0 {
            f.end_delay -= 1;
        } else {
            return false;
        }
        self.clock += 1;
        true
    }

    /// Whether `tid`'s next tick can execute without invalidating the cached
    /// scheduler scan. True when the tick is an ordinary instruction other
    /// than the three that wake other threads *without* tripping the spin
    /// loop's post-checks: `Write` (can flip a `BlockedWait` condition),
    /// `Spawn` (readies a `NotStarted` thread), and `Release` (frees a lock
    /// a `BlockedLock` thread is waiting on). Everything else either touches
    /// only the stepping thread's own frame/registers, moves the thread out
    /// of `Ready` (caught after the step), or closes a frame — and every
    /// frame close records a `MethodEvent`, which the caller also checks.
    /// A successful `Acquire` is safe precisely because the previous scan
    /// woke every thread blocked on a then-free lock, so no thread can still
    /// be parked on the lock this tick acquires.
    #[inline]
    fn scan_preserving(&self, prog: &CompiledProgram, tid: usize) -> bool {
        let th = &self.threads[tid];
        if !th.entered {
            return false;
        }
        let Some(&fi) = th.frames.last() else {
            return false;
        };
        let f = &self.frame_arena[fi as usize];
        if !f.pending_done() || f.burn > 0 || f.in_epilogue {
            return false;
        }
        let m = &prog.methods[f.method as usize];
        if f.pc >= m.code_len {
            // Epilogue entry: sets a flag, or pops (then the event tripwire
            // forces the rescan).
            return true;
        }
        // `Send`/`Recv` are excluded for safety, though unreachable here:
        // channel programs run with `can_spin = false`.
        !matches!(
            prog.code[(m.code_start + f.pc) as usize],
            Instr::Write { .. }
                | Instr::Spawn { .. }
                | Instr::Release { .. }
                | Instr::Send { .. }
                | Instr::Recv { .. }
        )
    }

    /// Delivers every in-transit message that has come due, in
    /// `(deliver_at, channel, seq, dup)` order — the VM's copy of the
    /// machine's pump, run at every scheduling decision.
    fn pump(&mut self) {
        if self.channels.is_empty() {
            return;
        }
        loop {
            let mut best: Option<(Time, usize, u32, bool, usize)> = None;
            for ci in 0..self.channels.len() {
                for (i, m) in self.channels[ci].transit.iter().enumerate() {
                    if m.deliver_at <= self.clock {
                        let key = (m.deliver_at, ci, m.seq, m.dup);
                        if best.map_or(true, |(t, c, s, d, _)| key < (t, c, s, d)) {
                            best = Some((m.deliver_at, ci, m.seq, m.dup, i));
                        }
                    }
                }
            }
            let Some((_, ci, _, _, idx)) = best else {
                break;
            };
            let msg = self.channels[ci].transit.remove(idx);
            self.msgs.push(MsgEvent {
                channel: ChannelId::from_raw(ci as u32),
                kind: MsgKind::Deliver,
                seq: msg.seq,
                value: msg.value,
                sent: msg.sent,
                at: msg.deliver_at,
                thread: ThreadId::from_raw(msg.sender),
                dup: msg.dup,
            });
            self.channels[ci].mailbox.push_back(msg);
        }
    }

    /// Patches the cached ready set after an event-dense spin tick (frame
    /// pop / premature return) using the `repair_*` accumulators, waking
    /// exactly the threads a full rescan would wake. Insertion keeps
    /// `ready_buf` tid-ascending, so the next scheduler draw indexes the
    /// same candidate list the machine's scan would build.
    fn repair_ready_set(&mut self) {
        if self.repair_locks.is_empty()
            && self.repair_slots.is_empty()
            && self.repair_methods.is_empty()
        {
            return;
        }
        for tid in 0..self.states.len() {
            let wake = match self.states[tid] {
                TState::BlockedLock(lock) => {
                    self.repair_locks.contains(&lock) && self.lock_owner[lock as usize].is_none()
                }
                TState::BlockedInjectedLock(slot) => {
                    self.repair_slots.contains(&slot) && {
                        let (owner, _) = self.injected[slot];
                        owner.is_none() || owner == Some(tid)
                    }
                }
                TState::BlockedOrder(first) => {
                    self.repair_methods.contains(&first)
                        && self.completed_instances[first as usize] > 0
                }
                _ => false,
            };
            if wake {
                self.states[tid] = TState::Ready;
                let pos = self.ready_buf.partition_point(|&t| t < tid);
                if self.ready_buf.get(pos) != Some(&tid) {
                    self.ready_buf.insert(pos, tid);
                }
            }
        }
    }

    /// Scheduling decision; the machine's recursion on an all-sleeping
    /// quiescent state becomes a loop.
    fn pick_thread(&mut self, prog: &CompiledProgram) -> Option<usize> {
        loop {
            self.pump();
            self.n_scans += 1;
            self.ready_buf.clear();
            let mut min_wake: Option<Time> = None;
            for tid in 0..self.states.len() {
                match self.states[tid] {
                    TState::Ready => self.ready_buf.push(tid),
                    TState::Sleeping(until) => {
                        if self.clock >= until {
                            self.states[tid] = TState::Ready;
                            self.ready_buf.push(tid);
                        } else {
                            min_wake = Some(min_wake.map_or(until, |m: Time| m.min(until)));
                        }
                    }
                    TState::BlockedLock(lock) => {
                        if self.lock_owner[lock as usize].is_none() {
                            self.states[tid] = TState::Ready;
                            self.ready_buf.push(tid);
                        }
                    }
                    TState::BlockedInjectedLock(slot) => {
                        let (owner, _) = self.injected[slot];
                        if owner.is_none() || owner == Some(tid) {
                            self.states[tid] = TState::Ready;
                            self.ready_buf.push(tid);
                        }
                    }
                    TState::BlockedJoin(target) => {
                        if self.states[target] == TState::Done {
                            self.states[tid] = TState::Ready;
                            self.ready_buf.push(tid);
                        }
                    }
                    TState::BlockedWait(cond) => {
                        if self.eval_cond(prog, tid, cond) {
                            self.states[tid] = TState::Ready;
                            self.ready_buf.push(tid);
                        }
                    }
                    TState::BlockedOrder(first) => {
                        if self.completed_instances[first as usize] > 0 {
                            self.states[tid] = TState::Ready;
                            self.ready_buf.push(tid);
                        }
                    }
                    TState::BlockedSend(chan) => {
                        let def_cap = prog.channels[chan as usize].capacity;
                        let ch = &self.channels[chan as usize];
                        let occupancy = ch.transit.len() + ch.mailbox.len();
                        if def_cap.map_or(true, |c| occupancy < c as usize) {
                            self.states[tid] = TState::Ready;
                            self.ready_buf.push(tid);
                        }
                    }
                    TState::BlockedRecv { chan, deadline } => {
                        if !self.channels[chan as usize].mailbox.is_empty()
                            || self.clock >= deadline
                        {
                            self.states[tid] = TState::Ready;
                            self.ready_buf.push(tid);
                        } else if deadline != Time::MAX {
                            min_wake = Some(min_wake.map_or(deadline, |m: Time| m.min(deadline)));
                        }
                    }
                    TState::NotStarted | TState::Done => {}
                }
            }
            if self.ready_buf.is_empty() {
                // In-transit deliveries are wake events too (all strictly in
                // the future here — the pump already delivered what was due).
                for ch in &self.channels {
                    for m in &ch.transit {
                        min_wake =
                            Some(min_wake.map_or(m.deliver_at, |w: Time| w.min(m.deliver_at)));
                    }
                }
                if let Some(wake) = min_wake {
                    // Everyone is asleep: jump time forward and retry.
                    self.clock = wake;
                    continue;
                }
                return None;
            }
            let i = self.rng_sched.random_range(0..self.ready_buf.len());
            return Some(self.ready_buf[i]);
        }
    }

    fn release_liveness_valve(&mut self) -> bool {
        for tid in 0..self.threads.len() {
            match self.states[tid] {
                TState::BlockedWait(_) => {
                    // Skip past the WaitUntil instruction.
                    if let Some(&fi) = self.threads[tid].frames.last() {
                        self.frame_arena[fi as usize].pc += 1;
                    }
                    self.states[tid] = TState::Ready;
                    return true;
                }
                TState::BlockedOrder(_) => {
                    self.states[tid] = TState::Ready;
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    fn step(&mut self, prog: &CompiledProgram, tid: usize) -> Result<(), VmError> {
        self.clock += 1;
        // Lazily enter the thread's root method on first schedule.
        if !self.threads[tid].entered {
            self.threads[tid].entered = true;
            let entry = prog.threads[tid].entry;
            self.push_frame(prog, tid, entry, false)?;
            return Ok(());
        }

        if let Some(&fi) = self.threads[tid].frames.last() {
            let frame = &mut self.frame_arena[fi as usize];
            // Pending injected-lock acquisitions at method entry.
            if !frame.pending_done() {
                let slot = frame.pending_injected[frame.pending_head];
                let (owner, depth) = &mut self.injected[slot];
                match owner {
                    None => {
                        *owner = Some(tid);
                        *depth = 1;
                        frame.pending_head += 1;
                        frame.injected_locks.push(slot);
                    }
                    Some(o) if *o == tid => {
                        *depth += 1;
                        frame.pending_head += 1;
                        frame.injected_locks.push(slot);
                    }
                    Some(_) => {
                        self.states[tid] = TState::BlockedInjectedLock(slot);
                    }
                }
                return Ok(());
            }
            // In-progress burn (compute/delay).
            if frame.burn > 0 {
                frame.burn -= 1;
                return Ok(());
            }
            if frame.in_epilogue {
                if frame.end_delay > 0 {
                    frame.end_delay -= 1;
                    return Ok(());
                }
                self.pop_frame(prog, tid, None)?;
                return Ok(());
            }
        } else {
            // Root frame popped: thread is done.
            self.states[tid] = TState::Done;
            return Ok(());
        }

        let clock = self.clock;
        let frame = self.top_mut(tid);
        let m = prog.methods[frame.method as usize];
        if frame.pc >= m.code_len {
            // Fell off the end: enter epilogue.
            self.enter_epilogue(prog, tid)?;
            return Ok(());
        }
        let instr = prog.code[(m.code_start + frame.pc) as usize];
        if !frame.started {
            frame.started = true;
            frame.start = clock;
        }
        self.exec(prog, tid, instr)?;
        // Same-tick pop: if the instruction we just ran was the frame's last
        // and it neither pushed a callee nor blocked, close the frame now so
        // the method's window ends exactly at its final operation.
        if self.states[tid] == TState::Ready {
            if let Some(&fi) = self.threads[tid].frames.last() {
                let f = &self.frame_arena[fi as usize];
                let done = !f.in_epilogue
                    && f.burn == 0
                    && f.pending_done()
                    && f.pc >= prog.methods[f.method as usize].code_len;
                if done {
                    self.enter_epilogue(prog, tid)?;
                }
            }
        }
        Ok(())
    }

    fn exec(&mut self, prog: &CompiledProgram, tid: usize, instr: Instr) -> Result<(), VmError> {
        match instr {
            Instr::Read { object, reg } => {
                let v = self.shared[object as usize];
                self.threads[tid].regs[reg as usize] = v;
                self.record_access(tid, object, AccessKind::Read);
                self.advance(tid);
            }
            Instr::Write { object, value } => {
                let v = self.eval(prog, tid, value);
                self.shared[object as usize] = v;
                self.record_access(tid, object, AccessKind::Write);
                let origin = self.top(tid).method;
                self.check_invariants(prog, origin)?;
                self.advance(tid);
            }
            Instr::ThrowIfObj {
                object,
                cmp,
                rhs,
                kind,
            } => {
                let v = self.shared[object as usize];
                self.record_access(tid, object, AccessKind::Read);
                let r = self.eval(prog, tid, rhs);
                if cmp.eval(v, r) {
                    self.raise(prog, tid, kind)?;
                } else {
                    self.advance(tid);
                }
            }
            Instr::Compute { cost } => {
                let f = self.top_mut(tid);
                f.burn = cost.saturating_sub(1);
                self.advance(tid);
            }
            Instr::JitterCompute { min, max } => {
                let total = if max > min {
                    self.rng_sched.random_range(min..=max)
                } else {
                    min
                };
                let f = self.top_mut(tid);
                f.burn = total.saturating_sub(1);
                self.advance(tid);
            }
            Instr::FlakyDelay { prob, ticks } => {
                let (method, instance) = {
                    let f = self.top(tid);
                    (f.method, f.instance)
                };
                let suppressed = !self.hooks.no_hooks
                    && self.hooks.methods[method as usize]
                        .suppress
                        .iter()
                        .any(|f| f.matches(instance));
                if !suppressed && self.rng_prog.random_bool(prob.clamp(0.0, 1.0)) {
                    let f = self.top_mut(tid);
                    f.burn = ticks.saturating_sub(1);
                }
                self.advance(tid);
            }
            Instr::LocalSet { reg, value } => {
                let v = self.eval(prog, tid, value);
                self.threads[tid].regs[reg as usize] = v;
                self.advance(tid);
            }
            Instr::SetIf {
                reg,
                cond,
                then_value,
                else_value,
            } => {
                let v = if self.eval_cond(prog, tid, cond) {
                    self.eval(prog, tid, then_value)
                } else {
                    self.eval(prog, tid, else_value)
                };
                self.threads[tid].regs[reg as usize] = v;
                self.advance(tid);
            }
            Instr::ComputeIf { cond, cost } => {
                if self.eval_cond(prog, tid, cond) {
                    let f = self.top_mut(tid);
                    f.burn = cost.saturating_sub(1);
                }
                self.advance(tid);
            }
            Instr::RandRange { reg, lo, hi } => {
                let (method, instance) = {
                    let f = self.top(tid);
                    (f.method, f.instance)
                };
                let forced = if self.hooks.no_hooks {
                    None
                } else {
                    self.hooks.methods[method as usize]
                        .force_rand
                        .iter()
                        .find(|(f, _)| f.matches(instance))
                        .map(|&(_, v)| v)
                };
                let v = match forced {
                    Some(v) => v,
                    None => self.rng_prog.random_range(lo..=hi),
                };
                self.threads[tid].regs[reg as usize] = v;
                self.advance(tid);
            }
            Instr::Call { method } => {
                self.advance(tid);
                self.push_frame(prog, tid, method, false)?;
            }
            Instr::TryCall { method } => {
                self.advance(tid);
                self.push_frame(prog, tid, method, true)?;
            }
            Instr::Return { value } => {
                let v = value.map(|e| self.eval(prog, tid, e));
                let f = self.top_mut(tid);
                f.returned = v;
                self.enter_epilogue(prog, tid)?;
            }
            Instr::Throw { kind } => self.raise(prog, tid, kind)?,
            Instr::ThrowIf { cond, kind } => {
                if self.eval_cond(prog, tid, cond) {
                    self.raise(prog, tid, kind)?;
                } else {
                    self.advance(tid);
                }
            }
            Instr::Spawn { thread } => {
                let thread = thread as usize;
                if self.states[thread] != TState::NotStarted {
                    return Err(VmError::SpawnTwice { thread });
                }
                self.states[thread] = TState::Ready;
                self.advance(tid);
            }
            Instr::Join { thread } => {
                if self.states[thread as usize] == TState::Done {
                    self.advance(tid);
                } else {
                    self.states[tid] = TState::BlockedJoin(thread as usize);
                }
            }
            Instr::Acquire { lock } => {
                if self.lock_owner[lock as usize].is_none() {
                    self.lock_owner[lock as usize] = Some(tid);
                    let f = self.top_mut(tid);
                    f.program_locks.push(lock);
                    self.advance(tid);
                } else {
                    self.states[tid] = TState::BlockedLock(lock);
                }
            }
            Instr::Release { lock } => {
                if self.lock_owner[lock as usize] != Some(tid) {
                    return Err(VmError::ReleaseUnowned {
                        lock: prog.object_names[lock as usize].clone(),
                    });
                }
                self.lock_owner[lock as usize] = None;
                let f = self.top_mut(tid);
                f.program_locks.retain(|&l| l != lock);
                self.advance(tid);
            }
            Instr::Sleep { ticks } => {
                self.states[tid] = TState::Sleeping(self.clock + ticks);
                self.advance(tid);
            }
            Instr::WaitUntil { cond } => {
                if self.eval_cond(prog, tid, cond) {
                    self.advance(tid);
                } else {
                    self.states[tid] = TState::BlockedWait(cond);
                }
            }
            Instr::Send {
                channel,
                value,
                guard,
            } => {
                // Guard first: a false guard skips the send entirely — no
                // event, no latency draw, no capacity check.
                if let Some(g) = guard {
                    if !self.eval_cond(prog, tid, g) {
                        self.advance(tid);
                        return Ok(());
                    }
                }
                let ci = channel as usize;
                let def = prog.channels[ci];
                if let Some(cap) = def.capacity {
                    let occupancy =
                        self.channels[ci].transit.len() + self.channels[ci].mailbox.len();
                    if occupancy >= cap as usize {
                        // Full: block; the instruction re-executes (guard
                        // included) when a receive frees a slot.
                        self.states[tid] = TState::BlockedSend(channel);
                        return Ok(());
                    }
                }
                let v = self.eval(prog, tid, value);
                let latency = if def.latency_max > def.latency_min {
                    self.rng_sched
                        .random_range(def.latency_min..=def.latency_max)
                } else {
                    def.latency_min
                };
                let seq = self.channels[ci].next_seq;
                self.channels[ci].next_seq += 1;
                let mut deliver_at = self.clock + latency;
                // Fault plane, resolved at send time: delays sum, drop wins
                // over duplicate.
                let mut dropped = false;
                let mut duplicate = false;
                let mut reorder_prev = false;
                if !self.hooks.no_hooks {
                    let ch_hooks = &self.hooks.channels[ci];
                    deliver_at += ch_hooks
                        .delay
                        .iter()
                        .filter(|(f, _)| f.matches(seq))
                        .map(|&(_, t)| t)
                        .sum::<u64>();
                    dropped = ch_hooks.drop.iter().any(|f| f.matches(seq));
                    duplicate = ch_hooks.dup.iter().any(|f| f.matches(seq));
                    reorder_prev = seq > 0 && ch_hooks.reorder.iter().any(|f| f.matches(seq - 1));
                }
                let sender_method = self.top(tid).method;
                self.msgs.push(MsgEvent {
                    channel: ChannelId::from_raw(channel),
                    kind: MsgKind::Send,
                    seq,
                    value: v,
                    sent: self.clock,
                    at: self.clock,
                    thread: ThreadId::from_raw(tid as u32),
                    dup: false,
                });
                if dropped {
                    self.msgs.push(MsgEvent {
                        channel: ChannelId::from_raw(channel),
                        kind: MsgKind::Drop,
                        seq,
                        value: v,
                        sent: self.clock,
                        at: self.clock,
                        thread: ThreadId::from_raw(tid as u32),
                        dup: false,
                    });
                } else {
                    self.channels[ci].transit.push(VmMsg {
                        seq,
                        value: v,
                        sent: self.clock,
                        deliver_at,
                        sender: tid as u32,
                        dup: false,
                    });
                    if duplicate {
                        self.channels[ci].transit.push(VmMsg {
                            seq,
                            value: v,
                            sent: self.clock,
                            deliver_at: deliver_at + 1,
                            sender: tid as u32,
                            dup: true,
                        });
                    }
                    if reorder_prev {
                        // Minimal pairwise reorder: push the predecessor's
                        // delivery one past this message's (if it is still
                        // in transit to be reordered at all).
                        let push_past = deliver_at + 1;
                        if let Some(prev) = self.channels[ci]
                            .transit
                            .iter_mut()
                            .find(|m| m.seq == seq - 1 && !m.dup)
                        {
                            prev.deliver_at = prev.deliver_at.max(push_past);
                        }
                    }
                }
                let obj = (prog.objects_init.len() + ci) as u32;
                self.record_access(tid, obj, AccessKind::Write);
                self.check_invariants(prog, sender_method)?;
                self.advance(tid);
            }
            Instr::Recv {
                channel,
                reg,
                timeout,
            } => {
                let ci = channel as usize;
                if let Some(msg) = self.channels[ci].mailbox.pop_front() {
                    self.threads[tid].regs[reg as usize] = msg.value;
                    self.msgs.push(MsgEvent {
                        channel: ChannelId::from_raw(channel),
                        kind: MsgKind::Recv,
                        seq: msg.seq,
                        value: msg.value,
                        sent: msg.sent,
                        at: self.clock,
                        thread: ThreadId::from_raw(tid as u32),
                        dup: msg.dup,
                    });
                    let obj = (prog.objects_init.len() + ci) as u32;
                    self.record_access(tid, obj, AccessKind::Read);
                    let f = self.top_mut(tid);
                    f.recv_deadline = None;
                    let origin = f.method;
                    self.check_invariants(prog, origin)?;
                    self.advance(tid);
                } else {
                    let dl = self.top(tid).recv_deadline;
                    match dl {
                        None => {
                            // First execution: arm the deadline and block.
                            let deadline = if timeout == 0 {
                                Time::MAX
                            } else {
                                self.clock + timeout
                            };
                            self.top_mut(tid).recv_deadline = Some(deadline);
                            self.states[tid] = TState::BlockedRecv {
                                chan: channel,
                                deadline,
                            };
                        }
                        Some(d) if self.clock >= d => {
                            // Timed out: -1 sentinel, no event, no access.
                            self.top_mut(tid).recv_deadline = None;
                            self.threads[tid].regs[reg as usize] = -1;
                            self.advance(tid);
                        }
                        Some(d) => {
                            // Woken spuriously (another receiver drained the
                            // delivery first): re-block until the deadline.
                            self.states[tid] = TState::BlockedRecv {
                                chan: channel,
                                deadline: d,
                            };
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn advance(&mut self, tid: usize) {
        if let Some(&fi) = self.threads[tid].frames.last() {
            self.frame_arena[fi as usize].pc += 1;
        }
    }

    /// The thread's innermost frame.
    #[inline]
    fn top(&self, tid: usize) -> &VmFrame {
        let fi = *self.threads[tid].frames.last().expect("no frame") as usize;
        &self.frame_arena[fi]
    }

    /// The thread's innermost frame, mutably.
    #[inline]
    fn top_mut(&mut self, tid: usize) -> &mut VmFrame {
        let fi = *self.threads[tid].frames.last().expect("no frame") as usize;
        &mut self.frame_arena[fi]
    }

    /// Claims an arena slot (recycled if available).
    #[inline]
    fn alloc_frame(&mut self) -> u32 {
        match self.free_frames.pop() {
            Some(fi) => fi,
            None => {
                self.frame_arena.push(VmFrame::default());
                (self.frame_arena.len() - 1) as u32
            }
        }
    }

    /// Pushes a frame for `method`, applying entry interventions.
    fn push_frame(
        &mut self,
        prog: &CompiledProgram,
        tid: usize,
        method: u32,
        caller_catches: bool,
    ) -> Result<(), VmError> {
        let instance = self.started_instances[method as usize];
        self.started_instances[method as usize] += 1;
        if self.hooks.no_hooks {
            let clock = self.clock;
            let fi = self.alloc_frame();
            let frame = &mut self.frame_arena[fi as usize];
            frame.reinit(method, instance, clock, 0, caller_catches, 0);
            frame
                .accesses
                .reserve(prog.methods[method as usize].n_accesses as usize);
            self.threads[tid].frames.push(fi);
            return Ok(());
        }
        let hooks = &self.hooks.methods[method as usize];

        // Premature return: the body never runs.
        let premature = hooks
            .premature
            .iter()
            .find(|(f, _)| f.matches(instance))
            .map(|&(_, v)| v);
        if let Some(value) = premature {
            let m = prog.methods[method as usize];
            if !m.pure {
                return Err(VmError::PrematureReturnImpure {
                    method: prog.method_names[method as usize].clone(),
                });
            }
            if let Some(reg) = m.ret_reg {
                self.threads[tid].regs[reg as usize] = value;
            }
            self.events.push(MethodEvent {
                method: MethodId::from_raw(method),
                instance,
                thread: ThreadId::from_raw(tid as u32),
                start: self.clock,
                end: self.clock,
                accesses: vec![],
                returned: Some(value),
                exception: None,
                caught: false,
            });
            self.completed_instances[method as usize] += 1;
            if self.track_repair {
                self.repair_methods.push(method);
            }
            return Ok(());
        }

        let catch_injected = hooks.catch.iter().any(|f| f.matches(instance));
        let delay_start: u64 = hooks
            .delay_start
            .iter()
            .filter(|(f, _)| f.matches(instance))
            .map(|&(_, t)| t)
            .sum();
        let delay_end: u64 = hooks
            .delay_end
            .iter()
            .filter(|(f, _)| f.matches(instance))
            .map(|&(_, t)| t)
            .sum();
        // Forced ordering holds the start back until `first` completed.
        let order_block = hooks
            .order
            .iter()
            .find(|(f, _)| f.matches(instance))
            .map(|&(_, first)| first);

        let clock = self.clock;
        let fi = self.alloc_frame();
        let frame = &mut self.frame_arena[fi as usize];
        frame.reinit(
            method,
            instance,
            clock,
            delay_start,
            caller_catches || catch_injected,
            delay_end,
        );
        // One exact allocation for the access list (it escapes into the
        // trace, so the frame arena can't recycle it).
        frame
            .accesses
            .reserve(prog.methods[method as usize].n_accesses as usize);
        frame
            .pending_injected
            .extend_from_slice(&self.hooks.methods[method as usize].injected_slots);
        self.threads[tid].frames.push(fi);

        if let Some(first) = order_block {
            if self.completed_instances[first as usize] == 0 {
                self.states[tid] = TState::BlockedOrder(first);
            }
        }
        Ok(())
    }

    fn enter_epilogue(&mut self, prog: &CompiledProgram, tid: usize) -> Result<(), VmError> {
        let f = self.top_mut(tid);
        f.in_epilogue = true;
        f.burn = 0;
        if f.end_delay == 0 {
            self.pop_frame(prog, tid, None)?;
        }
        Ok(())
    }

    /// Pops the top frame, recording its event. `exception` carries an
    /// unwinding exception kind; returns whether it was caught here.
    fn pop_frame(
        &mut self,
        prog: &CompiledProgram,
        tid: usize,
        exception: Option<KindId>,
    ) -> Result<bool, VmError> {
        let fi = self.threads[tid].frames.pop().expect("pop with no frame");
        let clock = self.clock;
        let frame = &mut self.frame_arena[fi as usize];
        if !frame.started {
            frame.start = clock;
        }
        // Scoped cleanup: program locks, injected locks.
        for lock in frame.program_locks.drain(..) {
            if self.lock_owner[lock as usize] == Some(tid) {
                self.lock_owner[lock as usize] = None;
                if self.track_repair {
                    self.repair_locks.push(lock);
                }
            }
        }
        for slot in frame.injected_locks.drain(..) {
            let (owner, depth) = &mut self.injected[slot];
            if *owner == Some(tid) {
                *depth -= 1;
                if *depth == 0 {
                    *owner = None;
                    if self.track_repair {
                        self.repair_slots.push(slot);
                    }
                }
            }
        }
        // Return-value alteration.
        let mut returned = frame.returned;
        let forced = if self.hooks.no_hooks {
            None
        } else {
            self.hooks.methods[frame.method as usize]
                .force_return
                .iter()
                .find(|(f, _)| f.matches(frame.instance))
                .map(|&(_, v)| v)
        };
        if let Some(v) = forced {
            let m = prog.methods[frame.method as usize];
            if !m.pure {
                return Err(VmError::ForceReturnImpure {
                    method: prog.method_names[frame.method as usize].clone(),
                });
            }
            returned = Some(v);
            if let Some(reg) = m.ret_reg {
                self.threads[tid].regs[reg as usize] = v;
            }
        }
        let caught = exception.is_some() && frame.catch_boundary;
        self.events.push(MethodEvent {
            method: MethodId::from_raw(frame.method),
            instance: frame.instance,
            thread: ThreadId::from_raw(tid as u32),
            start: frame.start,
            end: clock,
            accesses: std::mem::take(&mut frame.accesses),
            returned,
            exception: exception.map(|k| prog.kinds[k as usize].clone()),
            caught,
        });
        self.completed_instances[frame.method as usize] += 1;
        if self.track_repair {
            self.repair_methods.push(frame.method);
        }
        if self.threads[tid].frames.is_empty() && exception.is_none() {
            self.states[tid] = TState::Done;
        }
        self.free_frames.push(fi);
        Ok(caught)
    }

    /// Raises an exception in thread `tid` and unwinds.
    fn raise(&mut self, prog: &CompiledProgram, tid: usize, kind: KindId) -> Result<(), VmError> {
        let origin = {
            let fi = *self.threads[tid]
                .frames
                .last()
                .expect("raise with no frame") as usize;
            self.frame_arena[fi].method
        };
        loop {
            if self.threads[tid].frames.is_empty() {
                // Escaped the thread root: the whole run fails.
                self.states[tid] = TState::Done;
                self.failure = Some((kind, origin));
                return Ok(());
            }
            if self.pop_frame(prog, tid, Some(kind))? {
                // Absorbed; caller resumes at its next instruction.
                return Ok(());
            }
        }
    }

    fn record_access(&mut self, tid: usize, object: u32, kind: AccessKind) {
        let holds_lock = self.threads[tid].frames.iter().any(|&fi| {
            let f = &self.frame_arena[fi as usize];
            !f.program_locks.is_empty() || !f.injected_locks.is_empty()
        });
        let at = self.clock;
        let f = self.top_mut(tid);
        f.accesses.push(AccessEvent {
            object: ObjectId::from_raw(object),
            kind,
            at,
            locked: holds_lock,
        });
    }

    /// Evaluates a postfix expression window on the scratch stack.
    fn eval(&mut self, prog: &CompiledProgram, tid: usize, r: ExprRef) -> i64 {
        // Single-leaf expressions (the overwhelmingly common case) skip the
        // stack entirely.
        if r.len == 1 {
            return match prog.eops[r.start as usize] {
                EOp::Const(v) => v,
                EOp::Reg(i) => self.threads[tid].regs[i as usize],
                EOp::Obj(o) => self.shared[o as usize],
                EOp::Now => self.clock as i64,
                EOp::ChanLen(c) => {
                    let ch = &self.channels[c as usize];
                    (ch.transit.len() + ch.mailbox.len()) as i64
                }
                EOp::Add | EOp::Sub => unreachable!("operator with empty stack"),
            };
        }
        self.scratch.clear();
        for eop in &prog.eops[r.start as usize..(r.start + r.len) as usize] {
            match *eop {
                EOp::Const(v) => self.scratch.push(v),
                EOp::Reg(i) => self.scratch.push(self.threads[tid].regs[i as usize]),
                EOp::Obj(o) => self.scratch.push(self.shared[o as usize]),
                EOp::Now => self.scratch.push(self.clock as i64),
                EOp::ChanLen(c) => {
                    let ch = &self.channels[c as usize];
                    self.scratch
                        .push((ch.transit.len() + ch.mailbox.len()) as i64);
                }
                EOp::Add => {
                    let b = self.scratch.pop().expect("postfix underflow");
                    let a = self.scratch.pop().expect("postfix underflow");
                    self.scratch.push(a.wrapping_add(b));
                }
                EOp::Sub => {
                    let b = self.scratch.pop().expect("postfix underflow");
                    let a = self.scratch.pop().expect("postfix underflow");
                    self.scratch.push(a.wrapping_sub(b));
                }
            }
        }
        self.scratch.pop().expect("empty expression")
    }

    fn eval_cond(&mut self, prog: &CompiledProgram, tid: usize, c: CondRef) -> bool {
        let l = self.eval(prog, tid, c.lhs);
        let r = self.eval(prog, tid, c.rhs);
        c.cmp.eval(l, r)
    }

    /// Observation point: evaluates every compiled invariant against the
    /// current shared/channel state. A violated `always` invariant fails the
    /// run immediately with its pre-interned kind, attributed to `origin`;
    /// an `eventually` invariant that holds here is latched as satisfied.
    fn check_invariants(&mut self, prog: &CompiledProgram, origin: u32) -> Result<(), VmError> {
        if prog.invariants.is_empty() || self.failure.is_some() {
            return Ok(());
        }
        for (i, inv) in prog.invariants.iter().enumerate() {
            // Invariant conditions are register-free, so the evaluating
            // thread is irrelevant.
            let holds = self.eval_cond(prog, 0, inv.cond);
            if inv.always {
                if !holds {
                    self.fail_all_from(prog, inv.kind, Some(origin))?;
                    return Ok(());
                }
            } else if holds {
                self.eventually_ok[i] = true;
            }
        }
        Ok(())
    }

    /// Declares a global abnormal end (deadlock/timeout), closing all open
    /// frames with the failure kind.
    fn fail_all(&mut self, prog: &CompiledProgram, kind: KindId) -> Result<(), VmError> {
        self.fail_all_from(prog, kind, None)
    }

    /// As [`Self::fail_all`] but with an explicit responsible method.
    /// `None` falls back to the first thread with an open frame (the
    /// deadlock/timeout attribution rule).
    fn fail_all_from(
        &mut self,
        prog: &CompiledProgram,
        kind: KindId,
        origin: Option<u32>,
    ) -> Result<(), VmError> {
        let origin = origin.unwrap_or_else(|| {
            self.threads
                .iter()
                .find_map(|t| {
                    t.frames
                        .last()
                        .map(|&fi| self.frame_arena[fi as usize].method)
                })
                .unwrap_or(0)
        });
        for tid in 0..self.threads.len() {
            while !self.threads[tid].frames.is_empty() {
                self.pop_frame(prog, tid, Some(kind))?;
            }
            self.states[tid] = TState::Done;
        }
        self.failure = Some((kind, origin));
        Ok(())
    }

    fn finish(&mut self, prog: &CompiledProgram, seed: u64) -> Trace {
        // Close any frames left open by an early crash on another thread.
        // (Deliberately no `started` fix here — the machine's `finish`
        // doesn't apply one either, and trace equality is the contract.)
        for tid in 0..self.threads.len() {
            while let Some(fi) = self.threads[tid].frames.pop() {
                let frame = &mut self.frame_arena[fi as usize];
                let ev = MethodEvent {
                    method: MethodId::from_raw(frame.method),
                    instance: frame.instance,
                    thread: ThreadId::from_raw(tid as u32),
                    start: frame.start,
                    end: self.clock,
                    accesses: std::mem::take(&mut frame.accesses),
                    returned: None,
                    exception: None,
                    caught: false,
                };
                self.events.push(ev);
                self.free_frames.push(fi);
            }
        }
        // An `eventually` invariant that never held is a failure detected at
        // run end (first in declaration order wins), attributed to the main
        // thread's entry method — unless the run already failed for a more
        // specific reason. Same rule as the machine's `finish`.
        if self.failure.is_none() {
            for (i, inv) in prog.invariants.iter().enumerate() {
                if !inv.always && !self.eventually_ok[i] {
                    self.failure = Some((inv.kind, prog.threads[0].entry));
                    break;
                }
            }
        }
        let outcome = match self.failure.take() {
            Some((kind, method)) => Outcome::Failure(FailureSignature {
                kind: prog.kinds[kind as usize].clone(),
                method: MethodId::from_raw(method),
            }),
            None => Outcome::Success,
        };
        self.events_hint = self.events.len();
        let mut trace = Trace {
            seed,
            events: std::mem::take(&mut self.events),
            msgs: std::mem::take(&mut self.msgs),
            outcome,
            duration: self.clock,
        };
        trace.normalize();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::machine::Machine;
    use crate::plan::InterventionPlan;
    use crate::program::{Cmp, Expr, Op, Reg};
    use crate::ProgramBuilder;

    fn racy() -> crate::program::Program {
        let mut b = ProgramBuilder::new("vm-racy");
        let flag = b.object("flag", 0);
        let len = b.object("len", 10);
        let slot = b.object("slot", 10);
        let reader = b.method("Reader", |m| {
            m.write(flag, Expr::Const(1))
                .read(len, Reg(0))
                .jitter(5, 40)
                .throw_if_obj(slot, Cmp::Gt, Expr::Reg(Reg(0)), "IndexOutOfRange");
        });
        let writer = b.method("Writer", |m| {
            m.jitter(1, 10)
                .write(len, Expr::Const(20))
                .write(slot, Expr::Const(11));
        });
        let wentry = b.method("WriterEntry", |m| {
            m.wait_until(Expr::Obj(flag), Cmp::Eq, Expr::Const(1))
                .jitter(0, 30)
                .call(writer);
        });
        let main = b.method("Main", |m| {
            m.spawn_named("t1").spawn_named("t2").join(1).join(2);
        });
        b.thread("main", main, true);
        b.thread("t1", reader, false);
        b.thread("t2", wentry, false);
        b.build()
    }

    #[test]
    fn vm_matches_tree_walk_on_the_racy_program() {
        let p = racy();
        let cp = compile(&p);
        let plan = InterventionPlan::empty();
        let cfg = SimConfig::default();
        let mut vm = Vm::new();
        for seed in 0..60 {
            let tree = Machine::new(&p, &plan, cfg.clone(), seed).run();
            let byte = vm.run(&cp, &plan, &cfg, seed).expect("no trap");
            assert_eq!(tree, byte, "seed {seed}");
        }
    }

    #[test]
    fn vm_matches_tree_walk_under_interventions() {
        let p = racy();
        let cp = compile(&p);
        let cfg = SimConfig::default();
        let serialize = InterventionPlan::single(Intervention::SerializeMethods {
            a: MethodId::from_raw(0),
            b: MethodId::from_raw(1),
        });
        let mut mixed = InterventionPlan::empty();
        mixed.push(Intervention::DelayStart {
            method: MethodId::from_raw(1),
            instance: InstanceFilter::All,
            ticks: 7,
        });
        mixed.push(Intervention::DelayEnd {
            method: MethodId::from_raw(0),
            instance: InstanceFilter::Only(0),
            ticks: 3,
        });
        mixed.push(Intervention::CatchException {
            method: MethodId::from_raw(0),
            instance: InstanceFilter::All,
        });
        mixed.push(Intervention::ForceOrder {
            first: MethodId::from_raw(1),
            then: MethodId::from_raw(0),
            instance: InstanceFilter::All,
        });
        let mut vm = Vm::new();
        for plan in [&serialize, &mixed] {
            for seed in 0..40 {
                let tree = Machine::new(&p, plan, cfg.clone(), seed).run();
                let byte = vm.run(&cp, plan, &cfg, seed).expect("no trap");
                assert_eq!(tree, byte, "seed {seed}, plan {plan:?}");
            }
        }
    }

    #[test]
    fn trap_quarantines_the_run_and_vm_stays_reusable() {
        let p = racy();
        let cp = compile(&p);
        let cfg = SimConfig::default();
        // Writer (method 1) is impure; premature return must trap.
        let bad = InterventionPlan::single(Intervention::PrematureReturn {
            method: MethodId::from_raw(1),
            instance: InstanceFilter::All,
            value: 0,
        });
        let mut vm = Vm::new();
        let err = vm.run(&cp, &bad, &cfg, 3).unwrap_err();
        assert!(matches!(err, VmError::PrematureReturnImpure { ref method } if method == "Writer"));
        // The same VM instance still produces correct traces afterwards.
        let plan = InterventionPlan::empty();
        let tree = Machine::new(&p, &plan, cfg.clone(), 3).run();
        let byte = vm.run(&cp, &plan, &cfg, 3).expect("healthy run after trap");
        assert_eq!(tree, byte);
    }

    #[test]
    fn release_unowned_is_a_typed_error() {
        let mut b = ProgramBuilder::new("bad-release");
        let l = b.object("l", 0);
        let m = b.method("M", |mb| {
            mb.op(Op::Release { lock: l });
        });
        b.thread("main", m, true);
        let p = b.build();
        let cp = compile(&p);
        let mut vm = Vm::new();
        let err = vm
            .run(&cp, &InterventionPlan::empty(), &SimConfig::default(), 0)
            .unwrap_err();
        assert!(matches!(err, VmError::ReleaseUnowned { ref lock } if lock == "l"));
    }

    /// Producer/consumer over a bounded jittered channel, with a timeout'd
    /// tail receive and both invariant modes declared. Exercises blocking
    /// sends (capacity 1), blocking receives, deadline wakes, and the
    /// invariant observation points in one program.
    fn chan_program() -> crate::program::Program {
        let mut b = ProgramBuilder::new("vm-chan");
        let got = b.object("got", 0);
        let ch = b.channel("ch", Some(1), 1, 6);
        b.invariant_always("bounded", Expr::ChanLen(ch), Cmp::Le, Expr::Const(4));
        b.invariant_eventually("delivered", Expr::Obj(got), Cmp::Eq, Expr::Const(9));
        let producer = b.method("Producer", |m| {
            m.jitter(0, 10)
                .send(ch, Expr::Const(7))
                .send(ch, Expr::Const(8))
                .send(ch, Expr::Const(9));
        });
        let consumer = b.method("Consumer", |m| {
            m.recv(ch, Reg(0))
                .jitter(0, 8)
                .recv(ch, Reg(1))
                .recv_timeout(ch, Reg(2), 30)
                .write(got, Expr::Reg(Reg(2)));
        });
        let main = b.method("Main", |m| {
            m.spawn_named("p").spawn_named("c").join(1).join(2);
        });
        b.thread("main", main, true);
        b.thread("p", producer, false);
        b.thread("c", consumer, false);
        b.build()
    }

    #[test]
    fn vm_matches_tree_walk_on_channel_program() {
        let p = chan_program();
        let cp = compile(&p);
        let plan = InterventionPlan::empty();
        let cfg = SimConfig::default();
        let mut vm = Vm::new();
        let mut saw_msgs = false;
        for seed in 0..60 {
            let tree = Machine::new(&p, &plan, cfg.clone(), seed).run();
            let byte = vm.run(&cp, &plan, &cfg, seed).expect("no trap");
            assert_eq!(tree, byte, "seed {seed}");
            saw_msgs |= !byte.msgs.is_empty();
        }
        assert!(saw_msgs, "channel program must record message events");
    }

    #[test]
    fn vm_matches_tree_walk_under_channel_faults() {
        let p = chan_program();
        let cp = compile(&p);
        let cfg = SimConfig::default();
        let ch = aid_trace::ChannelId::from_raw(0);
        let delay = InterventionPlan::single(Intervention::DelayDelivery {
            channel: ch,
            seq: InstanceFilter::Only(1),
            ticks: 25,
        });
        let drop = InterventionPlan::single(Intervention::DropDelivery {
            channel: ch,
            seq: InstanceFilter::Only(2),
        });
        let dup = InterventionPlan::single(Intervention::DuplicateDelivery {
            channel: ch,
            seq: InstanceFilter::Only(0),
        });
        let reorder = InterventionPlan::single(Intervention::ReorderDelivery {
            channel: ch,
            seq: InstanceFilter::Only(0),
        });
        let mut mixed = InterventionPlan::empty();
        mixed.push(Intervention::DelayDelivery {
            channel: ch,
            seq: InstanceFilter::All,
            ticks: 3,
        });
        mixed.push(Intervention::DuplicateDelivery {
            channel: ch,
            seq: InstanceFilter::Only(1),
        });
        let mut vm = Vm::new();
        for plan in [&delay, &drop, &dup, &reorder, &mixed] {
            for seed in 0..40 {
                let tree = Machine::new(&p, plan, cfg.clone(), seed).run();
                let byte = vm.run(&cp, plan, &cfg, seed).expect("no trap");
                assert_eq!(tree, byte, "seed {seed}, plan {plan:?}");
            }
        }
        // Dropping the last message starves the timeout'd receive, so the
        // `eventually` oracle must flag at least some runs.
        let mut flagged = 0;
        for seed in 0..40 {
            let t = vm.run(&cp, &drop, &cfg, seed).unwrap();
            if matches!(&t.outcome, aid_trace::Outcome::Failure(s) if s.kind == "eventually:delivered")
            {
                flagged += 1;
            }
        }
        assert!(flagged > 0, "drop fault must trip the eventually oracle");
    }

    #[test]
    fn circular_channel_wait_deadlocks_identically() {
        // A waits on chB before sending on chA; B waits on chA before
        // sending on chB — a classic circular channel wait. The liveness
        // valve must NOT free blocked receives, so both backends report a
        // deadlock with identical traces.
        let mut b = ProgramBuilder::new("vm-chan-deadlock");
        let cha = b.channel("chA", None, 1, 1);
        let chb = b.channel("chB", None, 1, 1);
        let ma = b.method("A", |m| {
            m.recv(chb, Reg(0)).send(cha, Expr::Const(1));
        });
        let mb = b.method("B", |m| {
            m.recv(cha, Reg(0)).send(chb, Expr::Const(2));
        });
        let main = b.method("Main", |m| {
            m.spawn_named("a").spawn_named("b").join(1).join(2);
        });
        b.thread("main", main, true);
        b.thread("a", ma, false);
        b.thread("b", mb, false);
        let p = b.build();
        let cp = compile(&p);
        let cfg = SimConfig::default();
        let plan = InterventionPlan::empty();
        let mut vm = Vm::new();
        for seed in 0..20 {
            let tree = Machine::new(&p, &plan, cfg.clone(), seed).run();
            let byte = vm.run(&cp, &plan, &cfg, seed).expect("no trap");
            assert_eq!(tree, byte, "seed {seed}");
            assert!(
                matches!(&byte.outcome, aid_trace::Outcome::Failure(s) if s.kind == crate::machine::DEADLOCK_KIND),
                "circular channel wait must deadlock, got {:?}",
                byte.outcome
            );
        }
    }

    #[test]
    fn always_invariant_violation_matches_and_names_origin() {
        // Writer pushes `acct` to 12, violating `always acct <= 10`; the
        // failure must carry kind `always:cap` attributed to the writer, and
        // both backends must agree bit for bit.
        let mut b = ProgramBuilder::new("vm-inv");
        let acct = b.object("acct", 0);
        b.invariant_always("cap", Expr::Obj(acct), Cmp::Le, Expr::Const(10));
        let w = b.method("Writer", |m| {
            m.jitter(0, 5).write(acct, Expr::Const(12));
        });
        b.thread("main", w, true);
        let p = b.build();
        let cp = compile(&p);
        let cfg = SimConfig::default();
        let plan = InterventionPlan::empty();
        let mut vm = Vm::new();
        for seed in 0..10 {
            let tree = Machine::new(&p, &plan, cfg.clone(), seed).run();
            let byte = vm.run(&cp, &plan, &cfg, seed).expect("no trap");
            assert_eq!(tree, byte, "seed {seed}");
            match &byte.outcome {
                aid_trace::Outcome::Failure(s) => {
                    assert_eq!(s.kind, "always:cap");
                    assert_eq!(s.method.raw(), 0, "attributed to Writer");
                }
                o => panic!("expected always violation, got {o:?}"),
            }
        }
    }

    #[test]
    fn ready_set_repair_fires_and_preserves_traces() {
        // Lock-shaped contention with nested calls: frame pops during the
        // event-dense spin release locks that other threads block on, so the
        // incremental repair path must fire (n_repairs > 0) while staying
        // bit-identical to the tree walk.
        let mut b = ProgramBuilder::new("vm-repair");
        let l = b.object("l", 0);
        // No explicit release: the lock is freed by `pop_frame`'s scoped
        // cleanup, which happens *inside* the spin (the method ends with a
        // scan-preserving instruction), exercising the repair wake path.
        let leaf = b.method("Leaf", |m| {
            m.acquire(l).compute(1);
        });
        let worker = b.method("Worker", |m| {
            m.call(leaf).call(leaf).call(leaf);
        });
        let main = b.method("Main", |m| {
            m.spawn_named("w1").spawn_named("w2").join(1).join(2);
        });
        b.thread("main", main, true);
        b.thread("w1", worker, false);
        b.thread("w2", worker, false);
        let p = b.build();
        let cp = compile(&p);
        let cfg = SimConfig::default();
        let plan = InterventionPlan::empty();
        let mut vm = Vm::new();
        let (mut scans, mut repairs) = (0u64, 0u64);
        for seed in 0..40 {
            let tree = Machine::new(&p, &plan, cfg.clone(), seed).run();
            let byte = vm.run(&cp, &plan, &cfg, seed).expect("no trap");
            assert_eq!(tree, byte, "seed {seed}");
            let (s, r) = vm.sched_telemetry();
            scans += s;
            repairs += r;
        }
        assert!(scans > 0, "scheduler must scan");
        assert!(
            repairs > 0,
            "incremental ready-set repair must fire on frame pops ({scans} scans)"
        );
    }
}
