//! Running programs many times and collecting labeled trace sets.

use crate::backend::{Backend, BytecodeBackend, ExecBackend, TreeWalkBackend};
use crate::machine::SimConfig;
use crate::plan::InterventionPlan;
use crate::program::Program;
use crate::vm::VmError;
use aid_obs::{Counter, MetricsRegistry};
use aid_trace::{Trace, TraceSet};
use std::sync::{Arc, OnceLock};

/// A program plus a configuration plus an execution backend — the standard
/// handle everything downstream (executors, the engine, the server) runs
/// programs through.
///
/// The backend defaults to [`Backend::default()`] (bytecode unless the
/// `bytecode-default` feature is off or `AID_BACKEND` overrides it) and can
/// be chosen per simulator with [`Simulator::with_backend`]. Backends are
/// trace-equivalent, and [`Simulator::fingerprint`] is deliberately
/// backend-independent, so cached results are shared across backends.
///
/// The compiled backend instance is built lazily on first run and cached.
/// `program` stays a public field for construction-site ergonomics, but
/// mutating it **after** the first run would desync the cache — rebuild a
/// fresh `Simulator` instead. (`config` is read per run and safe to tune at
/// any point.)
pub struct Simulator {
    /// The program under test.
    pub program: Program,
    /// Machine configuration (read per run).
    pub config: SimConfig,
    backend: Backend,
    /// Cumulative VM scheduler ticks (`sim.vm.steps`) — a registry cell
    /// when attached via [`Simulator::with_metrics`], a detached no-op
    /// otherwise. Only the bytecode VM reports ticks; the tree-walk
    /// interpreter predates the counter plane and is left dark.
    vm_steps: Counter,
    engine: OnceLock<Arc<dyn ExecBackend>>,
}

impl Clone for Simulator {
    fn clone(&self) -> Self {
        // The lazily built engine is intentionally not cloned; the clone
        // rebuilds (and re-caches) its own on first use.
        Simulator {
            program: self.program.clone(),
            config: self.config.clone(),
            backend: self.backend,
            vm_steps: self.vm_steps.clone(),
            engine: OnceLock::new(),
        }
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("program", &self.program)
            .field("config", &self.config)
            .field("backend", &self.backend)
            .finish()
    }
}

impl Simulator {
    /// Creates a simulator with default configuration and backend.
    pub fn new(program: Program) -> Self {
        Simulator {
            program,
            config: SimConfig::default(),
            backend: Backend::default(),
            vm_steps: Counter::detached(),
            engine: OnceLock::new(),
        }
    }

    /// Selects the execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self.engine = OnceLock::new();
        self
    }

    /// Attaches a metrics registry: VM scheduler ticks accumulate into the
    /// registry's `sim.vm.steps` counter. Resets the lazily built engine so
    /// a backend constructed before the call doesn't keep a detached cell.
    pub fn with_metrics(mut self, metrics: &MetricsRegistry) -> Self {
        self.vm_steps = metrics.counter("sim.vm.steps");
        self.engine = OnceLock::new();
        self
    }

    /// The selected backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The execution engine, built on first use.
    pub fn exec_backend(&self) -> &Arc<dyn ExecBackend> {
        self.engine.get_or_init(|| match self.backend {
            Backend::TreeWalk => Arc::new(TreeWalkBackend::new(self.program.clone())),
            Backend::Bytecode => Arc::new(
                BytecodeBackend::new(&self.program).with_steps_counter(self.vm_steps.clone()),
            ),
        })
    }

    /// A stable fingerprint of (program structure, machine configuration):
    /// runs are a pure function of `(fingerprint, seed, plan)`, so this is
    /// the program half of the engine's memoization key. Cheap enough to
    /// call per round, but callers that execute many rounds should compute
    /// it once up front. Deliberately backend-independent — both backends
    /// produce identical traces, so cache entries are shared.
    pub fn fingerprint(&self) -> u64 {
        // Rotate so (program, max_steps) pairs don't collide trivially.
        self.program
            .fingerprint()
            .rotate_left(17)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ self.config.max_steps
    }

    /// Runs once with `seed` under `plan`. Panics on an invalid intervention
    /// (see [`Simulator::try_run`] for the quarantining variant).
    pub fn run(&self, seed: u64, plan: &InterventionPlan) -> Trace {
        self.exec_backend().run(seed, plan, &self.config)
    }

    /// Runs once with `seed` under `plan`, reporting invalid runs as a typed
    /// [`VmError`] where the backend supports trapping (the bytecode VM
    /// does; the tree-walk interpreter asserts instead).
    pub fn try_run(&self, seed: u64, plan: &InterventionPlan) -> Result<Trace, VmError> {
        self.exec_backend().try_run(seed, plan, &self.config)
    }

    /// Runs seeds `0..runs` with no intervention, returning a labeled set.
    pub fn collect(&self, runs: u64) -> TraceSet {
        self.collect_with(0..runs, &InterventionPlan::empty())
    }

    /// Runs the given seeds under `plan`, returning a labeled set.
    pub fn collect_with(
        &self,
        seeds: impl IntoIterator<Item = u64>,
        plan: &InterventionPlan,
    ) -> TraceSet {
        let mut set = self.trace_set_skeleton();
        for seed in seeds {
            set.push(self.run(seed, plan));
        }
        set
    }

    /// Collects until the set contains at least `want_ok` successes and
    /// `want_fail` failures (or `max_seeds` runs have been tried). This is
    /// how case studies gather their "50 successful and 50 failed
    /// executions" even when the failure probability is lopsided.
    pub fn collect_balanced(&self, want_ok: usize, want_fail: usize, max_seeds: u64) -> TraceSet {
        let mut set = self.trace_set_skeleton();
        let (mut n_ok, mut n_fail) = (0usize, 0usize);
        for seed in 0..max_seeds {
            if n_ok >= want_ok && n_fail >= want_fail {
                break;
            }
            let t = self.run(seed, &InterventionPlan::empty());
            if t.failed() {
                if n_fail < want_fail {
                    n_fail += 1;
                    set.push(t);
                }
            } else if n_ok < want_ok {
                n_ok += 1;
                set.push(t);
            }
        }
        set
    }

    /// An empty trace set pre-seeded with this program's method/object names
    /// (so ids in traces match program ids). Channels are interned twice:
    /// once into the channel arena (for message events) and once as
    /// `chan:<name>` pseudo-objects placed *after* the real objects, matching
    /// the `ObjectId` space both backends use for send/recv accesses.
    pub fn trace_set_skeleton(&self) -> TraceSet {
        let mut set = TraceSet::new();
        for m in &self.program.methods {
            set.method(&m.name);
        }
        for o in &self.program.objects {
            set.object(&o.name);
        }
        for c in &self.program.channels {
            set.channel(&c.name);
            set.object(&format!("chan:{}", c.name));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::machine::{DEADLOCK_KIND, TIMEOUT_KIND};
    use crate::plan::{InstanceFilter, Intervention};
    use crate::program::{Cmp, Expr, Reg};
    use aid_trace::Outcome;

    /// The Npgsql shape, miniaturized: an atomicity violation. The writer
    /// updates `len` then `slot` as a pair; the reader snapshots `len` and
    /// later bounds-checks `slot` against the snapshot. The run crashes iff
    /// the writer's pair lands *inside* the reader's snapshot/check window —
    /// any fully-ordered schedule is fine. Waits live outside the racing
    /// methods so a serializing lock around them cannot deadlock.
    fn racy_program() -> Program {
        let mut b = ProgramBuilder::new("race");
        let flag = b.object("flag", 0);
        let len = b.object("len", 10);
        let slot = b.object("slot", 10);
        let reader = b.method("Reader", |m| {
            m.write(flag, Expr::Const(1))
                .read(len, Reg(0))
                .jitter(5, 40)
                .throw_if_obj(slot, Cmp::Gt, Expr::Reg(Reg(0)), "IndexOutOfRange");
        });
        let writer = b.method("Writer", |m| {
            m.jitter(1, 10)
                .write(len, Expr::Const(20))
                .write(slot, Expr::Const(11));
        });
        let writer_entry = b.method("WriterEntry", |m| {
            m.wait_until(Expr::Obj(flag), Cmp::Eq, Expr::Const(1))
                .jitter(0, 30)
                .call(writer);
        });
        let main = b.method("Main", |m| {
            m.spawn_named("t1").spawn_named("t2").join(1).join(2);
        });
        b.thread("main", main, true);
        b.thread("t1", reader, false);
        b.thread("t2", writer_entry, false);
        let _ = main;
        b.build()
    }

    /// The engine shares one `Simulator` across pool workers; these bounds
    /// are load-bearing, not incidental (plain data, no interior
    /// mutability), so pin them at compile time.
    #[test]
    fn simulator_is_send_sync_and_fingerprint_tracks_config() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Program>();
        assert_send_sync::<Simulator>();
        assert_send_sync::<InterventionPlan>();
        assert_send_sync::<SimConfig>();

        let mut sim = Simulator::new(racy_program());
        let fp = sim.fingerprint();
        assert_eq!(fp, sim.fingerprint(), "stable");
        sim.config.max_steps = 1234;
        assert_ne!(fp, sim.fingerprint(), "config is part of the key");
        let other = Simulator::new(racy_program());
        assert_ne!(
            other.fingerprint(),
            sim.fingerprint(),
            "differing max_steps still distinguish equal programs"
        );
    }

    #[test]
    fn race_is_intermittent_and_seed_deterministic() {
        let sim = Simulator::new(racy_program());
        let set = sim.collect(200);
        let (ok, fail) = set.counts();
        assert!(ok > 10, "expected some successes, got {ok}");
        assert!(fail > 10, "expected some failures, got {fail}");
        // Same seed, same trace.
        let a = sim.run(7, &InterventionPlan::empty());
        let b = sim.run(7, &InterventionPlan::empty());
        assert_eq!(a, b, "runs must be deterministic per seed");
        // Different seeds eventually differ.
        let c = sim.run(8, &InterventionPlan::empty());
        assert!(a != c || sim.run(9, &InterventionPlan::empty()) != a);
    }

    #[test]
    fn serialize_intervention_repairs_the_race() {
        let sim = Simulator::new(racy_program());
        let reader = aid_trace::MethodId::from_raw(0);
        let writer = aid_trace::MethodId::from_raw(1);
        let plan = InterventionPlan::single(Intervention::SerializeMethods {
            a: reader,
            b: writer,
        });
        let set = sim.collect_with(0..120, &plan);
        let (_, fail) = set.counts();
        assert_eq!(fail, 0, "serialization must eliminate the failure");
        // Under the injected lock the conflicting accesses report as locked.
        for t in &set.traces {
            for e in t.events.iter().filter(|e| e.method == reader) {
                assert!(e.accesses.iter().all(|a| a.locked));
            }
        }
    }

    #[test]
    fn failure_signature_names_kind_and_method() {
        let sim = Simulator::new(racy_program());
        let set = sim.collect(200);
        for t in set.failures() {
            match &t.outcome {
                Outcome::Failure(sig) => {
                    assert_eq!(sig.kind, "IndexOutOfRange");
                    assert_eq!(sig.method.raw(), 0, "thrown in Reader");
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn collect_balanced_hits_requested_counts() {
        let sim = Simulator::new(racy_program());
        let set = sim.collect_balanced(10, 10, 10_000);
        let (ok, fail) = set.counts();
        assert_eq!((ok, fail), (10, 10));
    }

    #[test]
    fn deadlock_is_detected() {
        let mut b = ProgramBuilder::new("deadlock");
        let l1 = b.object("l1", 0);
        let l2 = b.object("l2", 0);
        let m1 = b.method("A", |m| {
            m.acquire(l1)
                .compute(20)
                .acquire(l2)
                .release(l2)
                .release(l1);
        });
        let m2 = b.method("B", |m| {
            m.acquire(l2)
                .compute(20)
                .acquire(l1)
                .release(l1)
                .release(l2);
        });
        let main = b.method("Main", |m| {
            m.spawn_named("a").spawn_named("b").join(1).join(2);
        });
        b.thread("main", main, true);
        b.thread("a", m1, false);
        b.thread("b", m2, false);
        let sim = Simulator::new(b.build());
        let set = sim.collect(50);
        let deadlocks = set
            .failures()
            .filter(|t| matches!(&t.outcome, Outcome::Failure(s) if s.kind == DEADLOCK_KIND))
            .count();
        assert!(
            deadlocks > 0,
            "the classic 2-lock cycle must deadlock sometimes"
        );
    }

    #[test]
    fn runaway_program_times_out() {
        let mut b = ProgramBuilder::new("spin");
        let never = b.object("never", 0);
        let m = b.method("Spin", |mb| {
            // Condition never satisfied and no other thread exists, but the
            // liveness valve keeps releasing it; the step budget must end it.
            mb.wait_until(Expr::Obj(never), Cmp::Eq, Expr::Const(1))
                .throw("Unreachable");
        });
        b.thread("main", m, true);
        let mut sim = Simulator::new(b.build());
        sim.config.max_steps = 500;
        let t = sim.run(0, &InterventionPlan::empty());
        match &t.outcome {
            // The valve releases the lone waiter, which then throws; either
            // way the run terminates abnormally.
            Outcome::Failure(s) => assert!(s.kind == TIMEOUT_KIND || s.kind == "Unreachable"),
            Outcome::Success => panic!("spin program cannot succeed"),
        }
    }

    #[test]
    fn try_call_absorbs_exception() {
        let mut b = ProgramBuilder::new("catch");
        let thrower = b.method("Thrower", |m| {
            m.compute(2).throw("Boom");
        });
        let main = b.method("Main", |m| {
            m.try_call(thrower).compute(2);
        });
        b.thread("main", main, true);
        let sim = Simulator::new(b.build());
        let t = sim.run(1, &InterventionPlan::empty());
        assert_eq!(t.outcome, Outcome::Success);
        let ev = t.events.iter().find(|e| e.method == thrower).unwrap();
        assert_eq!(ev.exception.as_deref(), Some("Boom"));
        assert!(ev.caught);
    }

    #[test]
    fn catch_exception_intervention_repairs_method_fails() {
        let mut b = ProgramBuilder::new("catch2");
        let thrower = b.method("Thrower", |m| {
            m.compute(2).throw("Boom");
        });
        let main = b.method("Main", |m| {
            m.call(thrower).compute(2);
        });
        b.thread("main", main, true);
        let sim = Simulator::new(b.build());
        let t = sim.run(1, &InterventionPlan::empty());
        assert!(t.failed(), "uncaught exception fails the run");
        let plan = InterventionPlan::single(Intervention::CatchException {
            method: thrower,
            instance: InstanceFilter::All,
        });
        let t2 = sim.run(1, &plan);
        assert_eq!(
            t2.outcome,
            Outcome::Success,
            "injected try/catch repairs it"
        );
    }

    #[test]
    fn force_return_overrides_value_and_register() {
        let mut b = ProgramBuilder::new("forceret");
        let getter = b.pure_method("Get", |m| {
            m.set(Reg(0), Expr::Const(41)).ret(Expr::Reg(Reg(0)));
        });
        let main = b.method("Main", |m| {
            m.call(getter)
                .throw_if(Expr::Reg(Reg(0)), Cmp::Ne, Expr::Const(42), "WrongValue");
        });
        b.thread("main", main, true);
        let sim = Simulator::new(b.build());
        assert!(sim.run(3, &InterventionPlan::empty()).failed());
        let plan = InterventionPlan::single(Intervention::ForceReturn {
            method: getter,
            instance: InstanceFilter::All,
            value: 42,
        });
        let t = sim.run(3, &plan);
        assert_eq!(t.outcome, Outcome::Success);
        let ev = t.events.iter().find(|e| e.method == getter).unwrap();
        assert_eq!(ev.returned, Some(42));
    }

    #[test]
    fn premature_return_skips_body() {
        let mut b = ProgramBuilder::new("prem");
        let obj = b.object("x", 0);
        let slow = b.pure_method("Slow", |m| {
            m.compute(100)
                .set(Reg(1), Expr::Const(5))
                .ret(Expr::Reg(Reg(1)));
        });
        let main = b.method("Main", |m| {
            m.call(slow).write(obj, Expr::Reg(Reg(1)));
        });
        b.thread("main", main, true);
        let sim = Simulator::new(b.build());
        let plan = InterventionPlan::single(Intervention::PrematureReturn {
            method: slow,
            instance: InstanceFilter::All,
            value: 5,
        });
        let t = sim.run(0, &plan);
        let ev = t.events.iter().find(|e| e.method == slow).unwrap();
        assert_eq!(ev.duration(), 0, "body skipped");
        assert_eq!(ev.returned, Some(5));
        assert_eq!(t.outcome, Outcome::Success);
    }

    #[test]
    fn force_order_intervention_enforces_completion_order() {
        // B normally starts whenever; ForceOrder(first=A, then=B) must make
        // every B start after A's first completion.
        let mut b = ProgramBuilder::new("order");
        let a = b.method("A", |m| {
            m.jitter(10, 60).compute(1);
        });
        let bm = b.method("B", |m| {
            m.compute(1);
        });
        let main = b.method("Main", |m| {
            m.spawn_named("ta").spawn_named("tb").join(1).join(2);
        });
        b.thread("main", main, true);
        b.thread("ta", a, false);
        b.thread("tb", bm, false);
        let sim = Simulator::new(b.build());
        let plan = InterventionPlan::single(Intervention::ForceOrder {
            first: a,
            then: bm,
            instance: InstanceFilter::All,
        });
        for seed in 0..40 {
            let t = sim.run(seed, &plan);
            let ea = t.events.iter().find(|e| e.method == a).unwrap();
            let eb = t.events.iter().find(|e| e.method == bm).unwrap();
            assert!(eb.end > ea.end, "B must finish after A under forced order");
        }
    }

    #[test]
    fn instance_filter_targets_single_instance() {
        let mut b = ProgramBuilder::new("inst");
        let leaf = b.method("Leaf", |m| {
            m.compute(3);
        });
        let main = b.method("Main", |m| {
            m.call(leaf).call(leaf).call(leaf);
        });
        b.thread("main", main, true);
        let sim = Simulator::new(b.build());
        let plan = InterventionPlan::single(Intervention::DelayEnd {
            method: leaf,
            instance: InstanceFilter::Only(1),
            ticks: 50,
        });
        let t = sim.run(0, &plan);
        let durs: Vec<u64> = t
            .events
            .iter()
            .filter(|e| e.method == leaf)
            .map(|e| e.duration())
            .collect();
        assert_eq!(durs.len(), 3);
        assert!(
            durs[1] > durs[0] + 40,
            "only instance 1 is delayed: {durs:?}"
        );
        assert!(durs[2] < durs[1]);
    }

    #[test]
    fn backends_agree_and_try_run_traps_typed() {
        use crate::backend::Backend;
        let tree = Simulator::new(racy_program()).with_backend(Backend::TreeWalk);
        let byte = Simulator::new(racy_program()).with_backend(Backend::Bytecode);
        assert_eq!(tree.backend(), Backend::TreeWalk);
        assert_eq!(byte.backend(), Backend::Bytecode);
        assert_eq!(
            tree.fingerprint(),
            byte.fingerprint(),
            "fingerprints are backend-independent so cache entries are shared"
        );
        for seed in 0..30 {
            assert_eq!(
                tree.run(seed, &InterventionPlan::empty()),
                byte.run(seed, &InterventionPlan::empty()),
                "seed {seed}"
            );
        }
        // Premature return on the impure Writer: the bytecode backend traps
        // with a typed error instead of panicking.
        let bad = InterventionPlan::single(Intervention::PrematureReturn {
            method: aid_trace::MethodId::from_raw(1),
            instance: InstanceFilter::All,
            value: 0,
        });
        let err = byte.try_run(0, &bad).unwrap_err();
        assert!(matches!(
            err,
            crate::vm::VmError::PrematureReturnImpure { ref method } if method == "Writer"
        ));
        // The simulator remains healthy after a trap.
        assert_eq!(
            byte.run(11, &InterventionPlan::empty()),
            tree.run(11, &InterventionPlan::empty())
        );
    }

    #[test]
    fn flaky_delay_and_suppression() {
        let mut b = ProgramBuilder::new("flaky");
        let m = b.method("Task", |mb| {
            mb.flaky_delay(0.5, 200).compute(2);
        });
        b.thread("main", m, true);
        let sim = Simulator::new(b.build());
        let set = sim.collect(100);
        let slow = set
            .traces
            .iter()
            .filter(|t| t.events[0].duration() > 100)
            .count();
        assert!(
            slow > 20 && slow < 80,
            "flaky delay fires ~half the time: {slow}"
        );
        let plan = InterventionPlan::single(Intervention::SuppressFlaky {
            method: aid_trace::MethodId::from_raw(0),
            instance: InstanceFilter::All,
        });
        let set2 = sim.collect_with(0..100, &plan);
        assert!(
            set2.traces.iter().all(|t| t.events[0].duration() < 100),
            "suppression removes every slow run"
        );
    }
}
