//! A demonstration harness that applies AID's intervention vocabulary to
//! **real OS threads**.
//!
//! The simulated backends behind [`crate::backend::ExecBackend`] are the
//! workhorse of this reproduction, but the paper's mechanism is runtime
//! interception of a live process. This module shows the same shape on
//! actual `std::thread`s — and [`LiveBackend`] plugs it into the same
//! `ExecBackend` trait the simulated backends implement, so the discovery
//! pipeline above is oblivious to which substrate executes the program.
//! Methods are registered closures, every invocation is wrapped by an
//! instrumentation shim that records a `MethodEvent`, and an
//! [`InterventionPlan`] is honoured by the shim (start/end delays via
//! `thread::sleep`, method serialization via `parking_lot::Mutex`, injected
//! try/catch via `catch_unwind`-style result capture, forced returns).
//!
//! Timestamps come from a monotonic `Instant` converted to microseconds —
//! precisely the "computer clock" the paper says works reasonably in
//! practice but can mis-order very close events; the VM is the
//! perfectly-clocked alternative. Because real scheduling is not seedable,
//! tests against this harness assert structure, not exact interleavings.

use crate::backend::ExecBackend;
use crate::machine::SimConfig;
use crate::plan::{Intervention, InterventionPlan};
use crate::vm::VmError;
use aid_trace::{
    AccessEvent, AccessKind, FailureSignature, MethodEvent, MethodId, Outcome, ThreadId, Trace,
    TraceSet,
};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a live method body may do.
pub struct LiveCtx<'h> {
    harness: &'h LiveHarness,
    thread: u32,
    events: Sender<MethodEvent>,
    epoch: Instant,
    accesses: Mutex<Vec<AccessEvent>>,
}

impl LiveCtx<'_> {
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Reads shared slot `i` (recorded access).
    pub fn read(&self, i: usize) -> i64 {
        let v = self.harness.shared.lock()[i];
        self.accesses.lock().push(AccessEvent {
            object: aid_trace::ObjectId::from_raw(i as u32),
            kind: AccessKind::Read,
            at: self.now(),
            locked: false,
        });
        v
    }

    /// Writes shared slot `i` (recorded access).
    pub fn write(&self, i: usize, v: i64) {
        self.harness.shared.lock()[i] = v;
        self.accesses.lock().push(AccessEvent {
            object: aid_trace::ObjectId::from_raw(i as u32),
            kind: AccessKind::Write,
            at: self.now(),
            locked: false,
        });
    }

    /// Sleeps, giving other threads a chance to interleave.
    pub fn pause(&self, micros: u64) {
        std::thread::sleep(Duration::from_micros(micros));
    }

    /// Calls another registered method synchronously (instrumented).
    pub fn call(&self, method: MethodId) -> Result<Option<i64>, String> {
        self.harness
            .invoke(method, self.thread, &self.events, self.epoch)
    }
}

type LiveBody = dyn Fn(&LiveCtx) -> Result<Option<i64>, String> + Send + Sync;

struct LiveMethodDef {
    name: String,
    body: Arc<LiveBody>,
}

/// The installed plan plus its derived serialize locks, swapped atomically
/// so [`LiveHarness::set_plan`] needs only `&self` (required for plugging
/// the harness in behind the shared-reference [`ExecBackend`] API).
struct PlanState {
    plan: InterventionPlan,
    serialize_locks: Vec<(MethodId, MethodId, Arc<Mutex<()>>)>,
}

/// A registry of instrumented live methods plus shared state.
pub struct LiveHarness {
    methods: Vec<LiveMethodDef>,
    shared: Mutex<Vec<i64>>,
    object_names: Vec<String>,
    plan: Mutex<PlanState>,
}

impl LiveHarness {
    /// Creates a harness with `slots` shared integer slots.
    pub fn new(object_names: &[&str]) -> Self {
        LiveHarness {
            methods: Vec::new(),
            shared: Mutex::new(vec![0; object_names.len()]),
            object_names: object_names.iter().map(|s| s.to_string()).collect(),
            plan: Mutex::new(PlanState {
                plan: InterventionPlan::empty(),
                serialize_locks: Vec::new(),
            }),
        }
    }

    /// Registers a method; returns its id.
    pub fn method(
        &mut self,
        name: &str,
        body: impl Fn(&LiveCtx) -> Result<Option<i64>, String> + Send + Sync + 'static,
    ) -> MethodId {
        let id = MethodId::from_raw(self.methods.len() as u32);
        self.methods.push(LiveMethodDef {
            name: name.to_string(),
            body: Arc::new(body),
        });
        id
    }

    /// Installs the intervention plan for subsequent runs.
    pub fn set_plan(&self, plan: InterventionPlan) {
        let serialize_locks = plan
            .serialize_pairs()
            .map(|(_, a, b)| (a, b, Arc::new(Mutex::new(()))))
            .collect();
        *self.plan.lock() = PlanState {
            plan,
            serialize_locks,
        };
    }

    fn invoke(
        &self,
        method: MethodId,
        thread: u32,
        events: &Sender<MethodEvent>,
        epoch: Instant,
    ) -> Result<Option<i64>, String> {
        let (plan, serialize_locks) = {
            let st = self.plan.lock();
            (st.plan.clone(), st.serialize_locks.clone())
        };
        // Serialization: take every injected lock mentioning this method.
        let guards: Vec<_> = serialize_locks
            .iter()
            .filter(|(a, b, _)| *a == method || *b == method)
            .map(|(_, _, m)| m.lock())
            .collect();
        for iv in &plan.interventions {
            if let Intervention::DelayStart {
                method: m, ticks, ..
            } = iv
            {
                if *m == method {
                    std::thread::sleep(Duration::from_micros(*ticks));
                }
            }
        }
        let start = epoch.elapsed().as_micros() as u64;
        let ctx = LiveCtx {
            harness: self,
            thread,
            events: events.clone(),
            epoch,
            accesses: Mutex::new(Vec::new()),
        };
        let def = &self.methods[method.index()];
        let mut result = (def.body)(&ctx);
        for iv in &plan.interventions {
            match iv {
                Intervention::DelayEnd {
                    method: m, ticks, ..
                } if *m == method => {
                    std::thread::sleep(Duration::from_micros(*ticks));
                }
                Intervention::ForceReturn {
                    method: m, value, ..
                } if *m == method => {
                    result = Ok(Some(*value));
                }
                Intervention::CatchException { method: m, .. } if *m == method => {
                    if let Err(kind) = &result {
                        events
                            .send(MethodEvent {
                                method,
                                instance: 0,
                                thread: ThreadId::from_raw(thread),
                                start,
                                end: epoch.elapsed().as_micros() as u64,
                                accesses: ctx.accesses.lock().clone(),
                                returned: None,
                                exception: Some(kind.clone()),
                                caught: true,
                            })
                            .ok();
                        drop(guards);
                        return Ok(None);
                    }
                }
                _ => {}
            }
        }
        let end = epoch.elapsed().as_micros() as u64;
        events
            .send(MethodEvent {
                method,
                instance: 0,
                thread: ThreadId::from_raw(thread),
                start,
                end,
                accesses: ctx.accesses.lock().clone(),
                returned: result.as_ref().ok().copied().flatten(),
                exception: result.as_ref().err().cloned(),
                caught: false,
            })
            .ok();
        drop(guards);
        result
    }

    /// Runs the given entry methods, one real thread each, and returns the
    /// run's trace. `seed` is recorded but does not control scheduling (the
    /// OS does) — this is exactly the reproducibility gap the VM closes.
    pub fn run(&self, entries: &[MethodId], seed: u64) -> Trace {
        // Reset shared state.
        for v in self.shared.lock().iter_mut() {
            *v = 0;
        }
        let epoch = Instant::now();
        let (tx, rx) = unbounded();
        let mut failure: Option<FailureSignature> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, &entry) in entries.iter().enumerate() {
                let tx = tx.clone();
                handles.push(scope.spawn(move || self.invoke(entry, i as u32, &tx, epoch)));
            }
            for (i, h) in handles.into_iter().enumerate() {
                if let Err(kind) = h.join().expect("live thread panicked") {
                    failure.get_or_insert(FailureSignature {
                        kind,
                        method: entries[i],
                    });
                }
            }
        });
        drop(tx);
        let mut trace = Trace {
            seed,
            events: rx.iter().collect(),
            msgs: vec![],
            outcome: match failure {
                Some(sig) => Outcome::Failure(sig),
                None => Outcome::Success,
            },
            duration: epoch.elapsed().as_micros() as u64,
        };
        trace.normalize();
        trace
    }

    /// Runs `n` times and returns a labeled trace set.
    pub fn collect(&self, entries: &[MethodId], n: u64) -> TraceSet {
        let mut set = TraceSet::new();
        for m in &self.methods {
            set.method(&m.name);
        }
        for o in &self.object_names {
            set.object(o);
        }
        for seed in 0..n {
            set.push(self.run(entries, seed));
        }
        set
    }
}

/// A [`LiveHarness`] with fixed entry methods behind the [`ExecBackend`]
/// trait — the third execution substrate next to tree-walk and bytecode.
///
/// `try_run` installs the plan on the harness and launches one real thread
/// per entry. The seed is recorded but does not control OS scheduling, and
/// the step budget does not apply to wall-clock threads, so unlike the
/// simulated backends this one is **not** deterministic per seed; callers
/// assert structure, not exact traces.
pub struct LiveBackend {
    harness: Arc<LiveHarness>,
    entries: Vec<MethodId>,
}

impl LiveBackend {
    /// Wraps a harness and the entry methods each run launches.
    pub fn new(harness: Arc<LiveHarness>, entries: Vec<MethodId>) -> Self {
        LiveBackend { harness, entries }
    }

    /// The wrapped harness.
    pub fn harness(&self) -> &Arc<LiveHarness> {
        &self.harness
    }
}

impl ExecBackend for LiveBackend {
    fn name(&self) -> &'static str {
        "live"
    }

    fn try_run(
        &self,
        seed: u64,
        plan: &InterventionPlan,
        _config: &SimConfig,
    ) -> Result<Trace, VmError> {
        self.harness.set_plan(plan.clone());
        Ok(self.harness.run(&self.entries, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Npgsql shape on real threads: reader snapshots a bound, writer
    /// bumps the index; the reader fails if the bump lands in its window.
    fn build() -> (LiveHarness, MethodId, MethodId) {
        let mut h = LiveHarness::new(&["len", "next"]);
        let reader = h.method("Reader", |ctx| {
            let len = ctx.read(0) + 10;
            ctx.pause(200);
            let next = ctx.read(1);
            if next > len {
                return Err("IndexOutOfRange".into());
            }
            Ok(Some(next))
        });
        let writer = h.method("Writer", |ctx| {
            ctx.pause(100);
            ctx.write(1, 11);
            Ok(None)
        });
        (h, reader, writer)
    }

    #[test]
    fn live_run_records_events_and_accesses() {
        let (h, reader, writer) = build();
        let set = h.collect(&[reader, writer], 5);
        assert_eq!(set.traces.len(), 5);
        for t in &set.traces {
            assert_eq!(t.events.len(), 2, "one event per entry method");
            let r = t.events.iter().find(|e| e.method == reader).unwrap();
            assert!(!r.accesses.is_empty());
            assert!(r.end >= r.start);
        }
    }

    #[test]
    fn serialize_intervention_holds_on_real_threads() {
        let (h, reader, writer) = build();
        h.set_plan(InterventionPlan::single(Intervention::SerializeMethods {
            a: reader,
            b: writer,
        }));
        let set = h.collect(&[reader, writer], 10);
        for t in &set.traces {
            let r = t.events.iter().find(|e| e.method == reader).unwrap();
            let w = t.events.iter().find(|e| e.method == writer).unwrap();
            assert!(
                r.end <= w.start || w.end <= r.start,
                "serialized methods must not overlap: r=[{},{}] w=[{},{}]",
                r.start,
                r.end,
                w.start,
                w.end
            );
        }
    }

    #[test]
    fn force_return_applies_on_live_threads() {
        let mut h = LiveHarness::new(&[]);
        let get = h.method("Get", |_| Ok(Some(41)));
        h.set_plan(InterventionPlan::single(Intervention::ForceReturn {
            method: get,
            instance: crate::plan::InstanceFilter::All,
            value: 42,
        }));
        let t = h.run(&[get], 0);
        assert_eq!(t.events[0].returned, Some(42));
    }
}

#[cfg(test)]
mod backend_tests {
    use super::*;
    use crate::backend::Backend;

    #[test]
    fn live_backend_runs_through_the_exec_trait() {
        let mut h = LiveHarness::new(&["len", "next"]);
        let reader = h.method("Reader", |ctx| {
            let len = ctx.read(0) + 10;
            ctx.pause(50);
            let next = ctx.read(1);
            if next > len {
                return Err("IndexOutOfRange".into());
            }
            Ok(Some(next))
        });
        let writer = h.method("Writer", |ctx| {
            ctx.write(1, 11);
            Ok(None)
        });
        let backend = LiveBackend::new(Arc::new(h), vec![reader, writer]);
        assert_eq!(backend.name(), "live");
        assert_ne!(backend.name(), Backend::Bytecode.name());
        let plan = InterventionPlan::single(Intervention::SerializeMethods {
            a: reader,
            b: writer,
        });
        let t = backend
            .try_run(0, &plan, &SimConfig::default())
            .expect("live runs do not trap");
        assert_eq!(t.events.len(), 2, "one event per entry method");
        let r = t.events.iter().find(|e| e.method == reader).unwrap();
        let w = t.events.iter().find(|e| e.method == writer).unwrap();
        assert!(
            r.end <= w.start || w.end <= r.start,
            "plan installed via the trait serializes the methods"
        );
    }
}
