//! Differential fuzzing: the bytecode VM against the tree-walk interpreter.
//!
//! Generates a few hundred random programs (random bodies, random thread
//! topologies, lock critical sections, flaky sites, waits, throws), runs
//! each under the empty plan plus random intervention plans on both
//! backends, and asserts the resulting `Trace`s are **equal** — the
//! bit-identical contract the `ExecBackend` API promises.
//!
//! The generator stays inside the machine's documented preconditions (it
//! never releases an unowned lock, never spawns a thread twice, and only
//! targets the dedicated pure getter with return-value interventions), so
//! every run must succeed on both backends; any divergence is a bug in the
//! compiler or VM, not in the input.

use aid_sim::backend::{BytecodeBackend, ExecBackend, TreeWalkBackend};
use aid_sim::{
    Cmp, Expr, InstanceFilter, Intervention, InterventionPlan, Program, ProgramBuilder, Reg,
    SimConfig,
};
use aid_trace::{ChannelId, MethodId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random pure expression over registers, data objects, and constants.
fn gen_expr(rng: &mut StdRng, data: &[aid_trace::ObjectId], depth: u32) -> Expr {
    let leaf = depth == 0 || rng.random_bool(0.6);
    if leaf {
        match rng.random_range(0..4u32) {
            0 => Expr::Const(rng.random_range(-3..8i64)),
            1 => Expr::Reg(Reg(rng.random_range(0..4u8))),
            2 => Expr::Obj(data[rng.random_range(0..data.len())]),
            _ => Expr::Now,
        }
    } else if rng.random_bool(0.5) {
        Expr::add(
            gen_expr(rng, data, depth - 1),
            gen_expr(rng, data, depth - 1),
        )
    } else {
        Expr::sub(
            gen_expr(rng, data, depth - 1),
            gen_expr(rng, data, depth - 1),
        )
    }
}

fn gen_cmp(rng: &mut StdRng) -> Cmp {
    [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge][rng.random_range(0..6)]
}

/// One random program: a pure getter, a layered call DAG (method `i` calls
/// only methods `< i`, so no recursion), worker threads, and a main thread
/// that spawns and joins the non-auto-start workers.
fn gen_program(rng: &mut StdRng, tag: usize) -> (Program, Vec<MethodId>, MethodId, Vec<ChannelId>) {
    let mut b = ProgramBuilder::new(&format!("fuzz{tag}"));

    let n_data = rng.random_range(2..=4usize);
    let data: Vec<_> = (0..n_data)
        .map(|i| b.object(&format!("d{i}"), rng.random_range(0..4i64)))
        .collect();
    let n_locks = rng.random_range(1..=2usize);
    let locks: Vec<_> = (0..n_locks)
        .map(|i| b.object(&format!("lk{i}"), 0))
        .collect();
    // Channels: mixed capacities and latency ranges, including the
    // degenerate min == max (no scheduler draw) and bounded capacity
    // (send can block, possibly forever — Deadlock is a valid outcome
    // and must be bit-identical too).
    let n_chans = rng.random_range(1..=2usize);
    let chans: Vec<ChannelId> = (0..n_chans)
        .map(|i| {
            let capacity = match rng.random_range(0..3u32) {
                0 => None,
                _ => Some(rng.random_range(1..=2u32)),
            };
            let min = rng.random_range(1..=3u64);
            let max = min + rng.random_range(0..=3u64);
            b.channel(&format!("ch{i}"), capacity, min, max)
        })
        .collect();

    // The only method return-value interventions may target.
    let ret = rng.random_range(0..10i64);
    let getter = b.pure_method("Get", |m| {
        m.set(Reg(0), Expr::Const(ret)).ret(Expr::Reg(Reg(0)));
    });
    let mut methods = vec![getter];

    let n_methods = rng.random_range(2..=5usize);
    for mi in 0..n_methods {
        let callable = methods.clone();
        // Draw the body's random choices *outside* the closure so the
        // generator stream is independent of builder internals.
        let n_ops = rng.random_range(3..=8usize);
        let mut plan: Vec<(u32, u64, u64)> = Vec::new();
        for _ in 0..n_ops {
            plan.push((
                rng.random_range(0..16u32),
                rng.random_range(0..64u64),
                rng.random_range(0..64u64),
            ));
        }
        let exprs: Vec<Expr> = (0..n_ops).map(|_| gen_expr(rng, &data, 2)).collect();
        let cmps: Vec<Cmp> = (0..n_ops).map(|_| gen_cmp(rng)).collect();
        let m = b.method(&format!("M{mi}"), |mb| {
            for (i, &(kind, a, c)) in plan.iter().enumerate() {
                let dobj = data[a as usize % data.len()];
                let reg = Reg((a % 4) as u8);
                match kind {
                    0 => {
                        mb.read(dobj, reg);
                    }
                    1 => {
                        mb.write(dobj, exprs[i].clone());
                    }
                    2 => {
                        mb.compute(1 + c % 5);
                    }
                    3 => {
                        // min == max half the time exercises the
                        // no-draw-when-degenerate rule.
                        let min = c % 4;
                        let max = min + a % 2 * (1 + c % 3);
                        mb.jitter(min, max);
                    }
                    4 => {
                        let prob = [0.0, 0.3, 0.7, 1.0][(c % 4) as usize];
                        mb.flaky_delay(prob, 1 + a % 4);
                    }
                    5 => {
                        mb.set(reg, exprs[i].clone());
                    }
                    6 => {
                        let lo = (a % 5) as i64 - 2;
                        mb.rand_range(reg, lo, lo + 1 + (c % 6) as i64);
                    }
                    7 => {
                        let callee = callable[c as usize % callable.len()];
                        if a % 2 == 0 {
                            mb.call(callee);
                        } else {
                            mb.try_call(callee);
                        }
                    }
                    8 => {
                        // Balanced critical section: the machine asserts on
                        // unowned release, so acquire/release always pair.
                        let lk = locks[a as usize % locks.len()];
                        mb.acquire(lk)
                            .write(dobj, exprs[i].clone())
                            .compute(1 + c % 3)
                            .release(lk);
                    }
                    9 => {
                        mb.sleep(1 + c % 3);
                    }
                    10 => {
                        if a % 2 == 0 {
                            // Usually satisfiable; the liveness valve rescues
                            // the rest, identically on both backends.
                            mb.wait_until(Expr::Obj(dobj), Cmp::Ge, Expr::Const((c % 3) as i64));
                        } else {
                            // Time-dependent wait: flips while other threads
                            // burn — the exact waiter the VM's scan-free spin
                            // must not skip past.
                            mb.wait_until(Expr::Now, Cmp::Ge, Expr::Const((c % 40) as i64));
                        }
                    }
                    11 => {
                        mb.throw_if_obj(dobj, cmps[i], Expr::Const((c % 6) as i64), "Efuzz");
                    }
                    12 => {
                        mb.set_if(
                            reg,
                            exprs[i].clone(),
                            cmps[i],
                            Expr::Const((c % 4) as i64),
                            Expr::Const(a as i64 % 7),
                            Expr::Reg(reg),
                        );
                    }
                    13 => {
                        let ch = chans[a as usize % chans.len()];
                        if c % 3 == 0 {
                            mb.send_if(
                                ch,
                                exprs[i].clone(),
                                Expr::Reg(reg),
                                cmps[i],
                                Expr::Const((c % 4) as i64),
                            );
                        } else {
                            mb.send(ch, exprs[i].clone());
                        }
                    }
                    14 => {
                        let ch = chans[a as usize % chans.len()];
                        if a % 4 == 0 {
                            // Blocking receive: may never be satisfied —
                            // Deadlock is a legal, bit-identical outcome.
                            mb.recv(ch, reg);
                        } else {
                            mb.recv_timeout(ch, reg, 1 + c % 24);
                        }
                    }
                    _ => {
                        let ch = chans[a as usize % chans.len()];
                        mb.set(reg, Expr::ChanLen(ch));
                    }
                }
            }
        });
        methods.push(m);
    }

    // Worker threads; main spawns the non-auto-start ones (exactly once —
    // the machine asserts on double spawn). Spawned workers run to
    // completion on their own; the scheduler handles orphan completion
    // identically on both backends, so no joins are needed.
    let n_workers = rng.random_range(2..=3usize);
    let mut worker_specs = Vec::new();
    for wi in 0..n_workers {
        let entry = methods[rng.random_range(0..methods.len())];
        let auto = rng.random_bool(0.5);
        worker_specs.push((format!("w{wi}"), entry, auto));
    }
    let main_calls: Vec<MethodId> = (0..rng.random_range(1..=2usize))
        .map(|_| methods[rng.random_range(0..methods.len())])
        .collect();
    let main = b.method("Main", |mb| {
        for (name, _, auto) in &worker_specs {
            if !auto {
                mb.spawn_named(name);
            }
        }
        for m in &main_calls {
            mb.call(*m);
        }
    });
    b.thread("main", main, true);
    for (name, entry, auto) in &worker_specs {
        b.thread(name, *entry, *auto);
    }
    methods.push(main);
    (b.build(), methods, getter, chans)
}

/// A random plan over `methods`; return-value interventions only target the
/// pure `getter`. Channel fault-plane interventions target `chans`.
fn gen_plan(
    rng: &mut StdRng,
    methods: &[MethodId],
    getter: MethodId,
    chans: &[ChannelId],
) -> InterventionPlan {
    let mut plan = InterventionPlan::empty();
    let any = |rng: &mut StdRng| methods[rng.random_range(0..methods.len())];
    let filt = |rng: &mut StdRng| {
        if rng.random_bool(0.5) {
            InstanceFilter::All
        } else {
            InstanceFilter::Only(rng.random_range(0..2u32))
        }
    };
    let chan = |rng: &mut StdRng| chans[rng.random_range(0..chans.len())];
    for _ in 0..rng.random_range(1..=3usize) {
        let iv = match rng.random_range(0..13u32) {
            0 => Intervention::SerializeMethods {
                a: any(rng),
                b: any(rng),
            },
            1 => Intervention::DelayStart {
                method: any(rng),
                instance: filt(rng),
                ticks: rng.random_range(1..=5u64),
            },
            2 => Intervention::DelayEnd {
                method: any(rng),
                instance: filt(rng),
                ticks: rng.random_range(1..=5u64),
            },
            3 => Intervention::PrematureReturn {
                method: getter,
                instance: filt(rng),
                value: rng.random_range(0..10i64),
            },
            4 => Intervention::ForceReturn {
                method: getter,
                instance: filt(rng),
                value: rng.random_range(0..10i64),
            },
            5 => Intervention::CatchException {
                method: any(rng),
                instance: filt(rng),
            },
            6 => Intervention::ForceOrder {
                first: any(rng),
                then: any(rng),
                instance: filt(rng),
            },
            7 => Intervention::SuppressFlaky {
                method: any(rng),
                instance: filt(rng),
            },
            8 => Intervention::ForceRand {
                method: any(rng),
                instance: filt(rng),
                value: rng.random_range(0..10i64),
            },
            9 => Intervention::DelayDelivery {
                channel: chan(rng),
                seq: filt(rng),
                ticks: rng.random_range(1..=6u64),
            },
            10 => Intervention::DropDelivery {
                channel: chan(rng),
                seq: filt(rng),
            },
            11 => Intervention::DuplicateDelivery {
                channel: chan(rng),
                seq: filt(rng),
            },
            _ => Intervention::ReorderDelivery {
                channel: chan(rng),
                seq: filt(rng),
            },
        };
        plan.push(iv);
    }
    plan
}

#[test]
fn bytecode_matches_tree_walk_on_random_programs() {
    let mut rng = StdRng::seed_from_u64(0xF022_D1FF);
    let cfg = SimConfig { max_steps: 4_000 };
    let cases: usize = std::env::var("AID_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);
    for case in 0..cases {
        let (program, methods, getter, chans) = gen_program(&mut rng, case);
        let tree = TreeWalkBackend::new(program.clone());
        let byte = BytecodeBackend::new(&program);
        for plan_i in 0..3 {
            let plan = if plan_i == 0 {
                InterventionPlan::empty()
            } else {
                gen_plan(&mut rng, &methods, getter, &chans)
            };
            for s in 0..3u64 {
                let seed = (case as u64) << 8 | (plan_i as u64) << 4 | s;
                let a = tree
                    .try_run(seed, &plan, &cfg)
                    .expect("tree-walk runs stay inside machine preconditions");
                let b = byte.try_run(seed, &plan, &cfg).unwrap_or_else(|e| {
                    panic!("case {case} plan {plan_i} seed {seed}: VM trapped: {e}")
                });
                assert_eq!(
                    a, b,
                    "case {case} plan {plan_i} seed {seed}: traces diverged\nplan: {plan:?}\nprogram: {}",
                    program.name
                );
            }
        }
    }
}
