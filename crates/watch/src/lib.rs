//! `aid_watch` — standing queries: continuous root-cause discovery over
//! unbounded trace streams.
//!
//! The paper frames AID as a batch tool: collect traces, discover once.
//! Its adaptive-intervention economics, though, pay off precisely when the
//! same predicates and cached interventions are reused across *many*
//! failures — the long-lived, CI-attached deployment. A [`Watcher`] makes
//! discovery a standing query over a [`TraceStore`]:
//!
//! * **Stream in, window out** — trace tails are appended forever; the
//!   store's [`RetentionPolicy`](aid_store::RetentionPolicy) bounds memory
//!   by count and/or age, and the incremental view stays equivalent to
//!   batch analysis over the retained window.
//! * **Delta-gated re-probing** — after each refresh the watcher
//!   fingerprints every candidate predicate: its SD occurrence counts and
//!   its AC-DAG reduction neighborhood, both keyed by predicate *content*
//!   (ids may shift across catalog rebuilds). Discovery is resubmitted
//!   only when the catalog's shape, some candidate's fingerprint, or the
//!   failure signature moved; otherwise the previous convergence — whose
//!   predicate ids are only meaningful against that exact catalog — is
//!   republished without touching the engine at all. When
//!   it does resubmit, the engine's `InterventionCache` answers every probe
//!   whose (program, catalog, failure, interventions, seed) key is
//!   unchanged — so a stat-neutral append costs zero executions, and a
//!   stat-moving one costs only the probes its delta actually invalidated.
//! * **Typed events** — each [`Watcher::tick`] returns [`WatchEvent`]s:
//!   convergence, root-cause changes, first sight of a new failure class,
//!   and probe-budget exhaustion.
//!
//! The discovery parameters are held fixed across re-runs, so a watcher's
//! converged [`DiscoveryResult`] over a corpus equals one-shot discovery
//! over the same corpus — the conformance harness in `aid_lab` checks this
//! for every generated scenario.

use aid_core::{DiscoverOptions, DiscoveryResult, Strategy};
use aid_engine::{EngineHandle, SessionError};
use aid_obs::Counter;
use aid_predicates::PredicateKind;
use aid_sim::Simulator;
use aid_store::{StoreConfig, StoreStats, TraceStore};
use aid_trace::{FailureSignature, Trace, TraceSet};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Standing-query configuration.
#[derive(Clone, Debug)]
pub struct WatchConfig {
    /// Store sizing, extraction, and the retention window.
    pub store: StoreConfig,
    /// Discovery strategy for every (re)submission.
    pub strategy: Strategy,
    /// Tie-breaking seed for the discovery algorithms (fixed across
    /// re-runs so convergence is comparable to one-shot discovery).
    pub discovery_seed: u64,
    /// Intervention runs per round.
    pub runs_per_round: usize,
    /// First intervention seed.
    pub first_seed: u64,
    /// Definition-2 prune quorum.
    pub prune_quorum: usize,
    /// Lifetime probe budget in scheduled intervention runs
    /// (`rounds × runs_per_round`, summed over resubmissions). `None` is
    /// unbounded. When spent, ticks that would re-probe emit
    /// [`WatchEvent::BudgetExhausted`] instead of submitting.
    pub max_probe_runs: Option<u64>,
    /// Session-name prefix for engine telemetry.
    pub name: String,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            store: StoreConfig::default(),
            strategy: Strategy::Aid,
            discovery_seed: 11,
            runs_per_round: 10,
            first_seed: 1_000_000,
            prune_quorum: 1,
            max_probe_runs: None,
            name: "watch".to_string(),
        }
    }
}

/// What a [`Watcher::tick`] observed.
#[derive(Clone, Debug, PartialEq)]
pub enum WatchEvent {
    /// Discovery (re)converged and the root cause is unchanged since the
    /// last convergence (or this is the first).
    Converged {
        /// The converged discovery result.
        result: DiscoveryResult,
        /// Candidates whose SD counts or DAG neighborhood moved since the
        /// last convergence (what the delta rule re-probed).
        reprobed: u32,
        /// Candidates whose fingerprints were unchanged (their cached
        /// intervention outcomes stayed valid).
        skipped: u32,
        /// False when the delta was empty and the previous convergence was
        /// republished without submitting a discovery session at all.
        resubmitted: bool,
    },
    /// Discovery reconverged on a *different* root cause.
    RootChanged {
        /// The new root cause (id within `result`'s catalog).
        root: Option<aid_predicates::PredicateId>,
        /// The new converged discovery result.
        result: DiscoveryResult,
    },
    /// A failure signature this watcher had never seen became the
    /// majority class under analysis.
    NewFailureClass {
        /// The newly seen signature.
        signature: FailureSignature,
        /// Distinct signatures seen so far, this one included.
        classes: u32,
    },
    /// A re-probe was needed but the probe budget is spent; the standing
    /// query stops consuming engine capacity until the budget is raised.
    BudgetExhausted {
        /// Probe runs scheduled over this watcher's lifetime.
        probe_runs: u64,
        /// The configured budget.
        budget: u64,
    },
}

/// Watcher lifetime counters — a plain-value snapshot assembled from the
/// watcher's internal [`aid_obs`] cells by [`Watcher::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WatchStats {
    /// Ticks processed.
    pub ticks: u64,
    /// Discovery sessions actually submitted.
    pub discoveries: u64,
    /// Ticks whose delta was empty: convergence republished, engine
    /// untouched.
    pub discoveries_skipped: u64,
    /// Intervention runs scheduled (`rounds × runs_per_round`, summed).
    pub probe_runs: u64,
    /// Events emitted.
    pub events: u64,
}

/// The live counter cells behind [`WatchStats`]. Per-watcher and detached:
/// many watchers can coexist, so the cells are not registry-registered
/// (names would collide) — servers expose the watch tier through their own
/// registry counters and the `serve.watch.tick_us` histogram instead.
#[derive(Debug, Default)]
struct WatchCells {
    ticks: Counter,
    discoveries: Counter,
    discoveries_skipped: Counter,
    probe_runs: Counter,
    events: Counter,
}

/// A standing-query failure.
#[derive(Debug)]
pub enum WatchError {
    /// The engine session backing a re-probe died.
    Session(SessionError),
}

impl std::fmt::Display for WatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatchError::Session(e) => write!(f, "discovery session failed: {e}"),
        }
    }
}

impl std::error::Error for WatchError {}

/// One candidate's content-keyed fingerprint: SD occurrence counts plus
/// the sorted AC-DAG reduction neighborhood. `total_runs` is deliberately
/// excluded — it moves on every append, but discovery consumes only the
/// catalog, candidate set, and DAG, so a success that satisfies no
/// candidate must not invalidate anything.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CandidateState {
    holds_in: usize,
    holds_in_failed: usize,
    failed_runs: usize,
    neighbors: Vec<PredicateKind>,
}

type Fingerprint = BTreeMap<PredicateKind, CandidateState>;

/// The state of the last convergence, for delta comparison.
struct Convergence {
    signature: FailureSignature,
    /// Every catalog predicate's kind, in id order. The cached `result`
    /// names predicates by id, so it can only be republished while the
    /// catalog it was computed against is still the catalog — any
    /// inserted or reshaped predicate shifts ids and forces a re-probe
    /// even when no candidate's own fingerprint moved.
    kinds: Vec<PredicateKind>,
    fingerprint: Fingerprint,
    root: Option<PredicateKind>,
    result: DiscoveryResult,
}

/// A standing query: a windowed [`TraceStore`] plus an [`EngineHandle`],
/// re-running discovery only when appended traces actually moved the
/// analysis under it.
pub struct Watcher {
    config: WatchConfig,
    store: TraceStore,
    engine: EngineHandle,
    simulator: Arc<Simulator>,
    generation: u64,
    seen_signatures: BTreeSet<FailureSignature>,
    last: Option<Convergence>,
    stats: WatchCells,
}

impl Watcher {
    /// A standing query over `simulator`, submitting re-probes to `engine`.
    pub fn new(config: WatchConfig, simulator: Arc<Simulator>, engine: EngineHandle) -> Watcher {
        let store = TraceStore::with_pool(config.store.clone(), engine.pool());
        Watcher {
            config,
            store,
            engine,
            simulator,
            generation: 0,
            seen_signatures: BTreeSet::new(),
            last: None,
            stats: WatchCells::default(),
        }
    }

    /// Appends a chunk of encoded trace-tail bytes (any framing; chunks may
    /// end mid-line — the store's streaming decoder reassembles).
    pub fn push_bytes(&mut self, chunk: &[u8]) {
        self.store.ingest_bytes(chunk);
    }

    /// Flushes end-of-stream decoder state (quarantining a dangling
    /// partial line). Further tails may still follow.
    pub fn finish_tail(&mut self) {
        self.store.finish_ingest();
    }

    /// Appends an in-memory trace set.
    pub fn append_set(&mut self, set: &TraceSet) {
        self.store.append_set(set);
    }

    /// Appends one live trace (names resolved through `names`).
    pub fn append_run(&mut self, names: &TraceSet, trace: Trace) {
        self.store.append_run(names, trace);
    }

    /// The underlying store (retention counters, quarantine, analysis).
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// Aggregate store telemetry.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Watcher lifetime counters, snapshotted from the live cells.
    pub fn stats(&self) -> WatchStats {
        WatchStats {
            ticks: self.stats.ticks.get(),
            discoveries: self.stats.discoveries.get(),
            discoveries_skipped: self.stats.discoveries_skipped.get(),
            probe_runs: self.stats.probe_runs.get(),
            events: self.stats.events.get(),
        }
    }

    /// The last converged result, if any tick has converged.
    pub fn converged(&self) -> Option<&DiscoveryResult> {
        self.last.as_ref().map(|c| &c.result)
    }

    /// Brings the analysis up to date with everything appended since the
    /// last tick and re-runs discovery if — and only if — the delta rule
    /// says the previous convergence may be stale. Returns the events this
    /// tick produced (empty when nothing new arrived or no failure is
    /// retained).
    pub fn tick(&mut self) -> Result<Vec<WatchEvent>, WatchError> {
        self.stats.ticks.inc();
        let mut events = Vec::new();
        let Some(analysis) = self.store.refresh() else {
            return Ok(events);
        };

        // Owned delta inputs, so the store borrow can end before we mutate.
        let signature = analysis.extraction.signature.clone();
        let catalog = &analysis.extraction.catalog;
        let kinds: Vec<PredicateKind> = catalog.iter().map(|(_, p)| p.kind.clone()).collect();
        let mut neighbors: BTreeMap<u32, Vec<PredicateKind>> = BTreeMap::new();
        for (a, b) in analysis.dag.reduction_edges() {
            neighbors
                .entry(a.raw())
                .or_default()
                .push(catalog.get(b).kind.clone());
            neighbors
                .entry(b.raw())
                .or_default()
                .push(catalog.get(a).kind.clone());
        }
        let mut fingerprint = Fingerprint::new();
        for &c in &analysis.candidates {
            let score = &analysis.sd.scores[c.index()];
            let mut ns = neighbors.remove(&c.raw()).unwrap_or_default();
            ns.sort();
            fingerprint.insert(
                catalog.get(c).kind.clone(),
                CandidateState {
                    holds_in: score.holds_in,
                    holds_in_failed: score.holds_in_failed,
                    failed_runs: score.failed_runs,
                    neighbors: ns,
                },
            );
        }

        if self.seen_signatures.insert(signature.clone()) {
            events.push(WatchEvent::NewFailureClass {
                signature: signature.clone(),
                classes: self.seen_signatures.len() as u32,
            });
        }

        // The delta rule: identical signature, catalog, and candidate
        // fingerprints mean the discovery inputs are unchanged — republish.
        let unchanged = self.last.as_ref().is_some_and(|prev| {
            prev.signature == signature && prev.kinds == kinds && prev.fingerprint == fingerprint
        });
        if unchanged {
            let prev = self.last.as_ref().expect("unchanged implies last");
            let skipped = fingerprint.len() as u32;
            self.store.record_probe_delta(0, skipped as u64);
            self.stats.discoveries_skipped.inc();
            events.push(WatchEvent::Converged {
                result: prev.result.clone(),
                reprobed: 0,
                skipped,
                resubmitted: false,
            });
            self.stats.events.add(events.len() as u64);
            return Ok(events);
        }
        let (reprobed, skipped) = match &self.last {
            Some(prev) if prev.signature == signature && prev.kinds == kinds => {
                let moved = fingerprint
                    .iter()
                    .filter(|(kind, state)| prev.fingerprint.get(*kind) != Some(*state))
                    .count() as u32;
                (moved, fingerprint.len() as u32 - moved)
            }
            // First convergence, a signature flip, or a reshaped catalog
            // (which shifts ids and intervention-cache keys): everything
            // is probed.
            _ => (fingerprint.len() as u32, 0),
        };

        if let Some(budget) = self.config.max_probe_runs {
            if self.stats.probe_runs.get() >= budget {
                events.push(WatchEvent::BudgetExhausted {
                    probe_runs: self.stats.probe_runs.get(),
                    budget,
                });
                self.stats.events.add(events.len() as u64);
                return Ok(events);
            }
        }

        let snapshot = self.store.snapshot().expect("analysis just published");
        self.generation += 1;
        let mut job = snapshot.discovery_job(
            format!("{}#{}", self.config.name, self.generation),
            Arc::clone(&self.simulator),
            self.config.runs_per_round,
            self.config.first_seed,
            self.config.strategy,
            self.config.discovery_seed,
        );
        job.options = DiscoverOptions {
            prune_quorum: self.config.prune_quorum,
        };
        let result = self
            .engine
            .submit(job)
            .join()
            .map_err(WatchError::Session)?
            .result;
        self.store
            .record_probe_delta(reprobed as u64, skipped as u64);
        self.stats.discoveries.inc();
        self.stats
            .probe_runs
            .add((result.rounds * self.config.runs_per_round) as u64);

        let root = result
            .root_cause()
            .map(|id| snapshot.catalog.get(id).kind.clone());
        let root_moved = self
            .last
            .as_ref()
            .is_some_and(|prev| prev.root != root && prev.signature == signature);
        events.push(if root_moved {
            WatchEvent::RootChanged {
                root: result.root_cause(),
                result: result.clone(),
            }
        } else {
            WatchEvent::Converged {
                result: result.clone(),
                reprobed,
                skipped,
                resubmitted: true,
            }
        });
        self.last = Some(Convergence {
            signature,
            kinds,
            fingerprint,
            root,
            result,
        });
        self.stats.events.add(events.len() as u64);
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_cases::{all_cases, collect_logs_sized};
    use aid_engine::Engine;
    use aid_store::RetentionPolicy;
    use aid_trace::{codec, Outcome};

    fn case_watcher(engine: &Engine) -> (Watcher, TraceSet) {
        let case = &all_cases()[0];
        let set = collect_logs_sized(case, 10, 10);
        let sim = Arc::new(Simulator::new(case.program.clone()));
        let config = WatchConfig {
            store: StoreConfig {
                extraction: case.config.clone(),
                ..StoreConfig::default()
            },
            runs_per_round: case.runs_per_round,
            ..WatchConfig::default()
        };
        (Watcher::new(config, sim, engine.handle()), set)
    }

    fn converged_result(events: &[WatchEvent]) -> &DiscoveryResult {
        events
            .iter()
            .find_map(|e| match e {
                WatchEvent::Converged { result, .. } | WatchEvent::RootChanged { result, .. } => {
                    Some(result)
                }
                _ => None,
            })
            .expect("a convergence event")
    }

    #[test]
    fn first_tick_converges_and_reports_new_class() {
        let engine = Engine::with_workers(2);
        let (mut watcher, set) = case_watcher(&engine);
        watcher.append_set(&set);
        let events = watcher.tick().expect("tick");
        assert!(matches!(
            events[0],
            WatchEvent::NewFailureClass { classes: 1, .. }
        ));
        assert!(matches!(
            events[1],
            WatchEvent::Converged {
                resubmitted: true,
                skipped: 0,
                ..
            }
        ));
        assert!(watcher.converged().is_some());
        engine.shutdown();
    }

    #[test]
    fn stat_neutral_appends_skip_discovery_entirely() {
        let engine = Engine::with_workers(2);
        let (mut watcher, set) = case_watcher(&engine);
        watcher.append_set(&set);
        let first = watcher.tick().expect("tick");
        let baseline = converged_result(&first).clone();
        let candidates = match &first[1] {
            WatchEvent::Converged { reprobed, .. } => *reprobed,
            other => panic!("expected first convergence, got {other:?}"),
        };
        assert!(candidates > 0);
        let executions = engine.stats().executions;
        assert!(executions > 0, "first convergence ran interventions");

        // Replaying a successful run already in the corpus leaves every
        // pass-1 statistic (site stability, duration envelopes, unique
        // returns) and every candidate fingerprint untouched.
        let replay = set
            .traces
            .iter()
            .find(|t| matches!(t.outcome, Outcome::Success))
            .cloned()
            .expect("case corpora contain successful runs");
        let neutral = TraceSet {
            methods: set.methods.clone(),
            objects: set.objects.clone(),
            channels: set.channels.clone(),
            traces: vec![replay],
        };
        for _ in 0..3 {
            watcher.append_set(&neutral);
            let events = watcher.tick().expect("tick");
            assert_eq!(events.len(), 1);
            match &events[0] {
                WatchEvent::Converged {
                    result,
                    reprobed,
                    resubmitted,
                    ..
                } => {
                    assert_eq!(result, &baseline);
                    assert_eq!(*reprobed, 0);
                    assert!(!resubmitted);
                }
                other => panic!("expected a cached convergence, got {other:?}"),
            }
        }
        assert_eq!(
            engine.stats().executions,
            executions,
            "stat-neutral appends must execute zero new interventions"
        );
        let stats = watcher.stats();
        assert_eq!(stats.discoveries, 1);
        assert_eq!(stats.discoveries_skipped, 3);
        let view = watcher.store_stats().view;
        assert_eq!(view.predicates_reprobed, u64::from(candidates));
        assert_eq!(view.predicates_skipped, 3 * u64::from(candidates));
        engine.shutdown();
    }

    #[test]
    fn streamed_tails_converge_to_one_shot_discovery() {
        let engine = Engine::with_workers(2);
        let (mut watcher, set) = case_watcher(&engine);
        let encoded = codec::encode(&set);
        // Stream the corpus as byte tails, ticking mid-stream too.
        let bytes = encoded.as_bytes();
        let mid = bytes.len() / 2;
        watcher.push_bytes(&bytes[..mid]);
        watcher.tick().expect("mid-stream tick");
        watcher.push_bytes(&bytes[mid..]);
        watcher.finish_tail();
        let events = watcher.tick().expect("final tick");
        let streamed = converged_result(&events).clone();

        // One-shot: a fresh store over the full corpus, one submission.
        let case = &all_cases()[0];
        let mut store = TraceStore::new(StoreConfig {
            extraction: case.config.clone(),
            ..StoreConfig::default()
        });
        store.append_set(&set);
        store.refresh();
        let snapshot = store.snapshot().expect("analysis");
        let job = snapshot.discovery_job(
            "one-shot",
            Arc::new(Simulator::new(case.program.clone())),
            case.runs_per_round,
            1_000_000,
            Strategy::Aid,
            11,
        );
        let one_shot = engine.submit(job).join().expect("session").result;
        assert_eq!(streamed, one_shot);
        engine.shutdown();
    }

    #[test]
    fn budget_exhaustion_stops_probing() {
        let engine = Engine::with_workers(2);
        let case = &all_cases()[0];
        let set = collect_logs_sized(case, 6, 6);
        let sim = Arc::new(Simulator::new(case.program.clone()));
        let config = WatchConfig {
            store: StoreConfig {
                extraction: case.config.clone(),
                ..StoreConfig::default()
            },
            runs_per_round: case.runs_per_round,
            max_probe_runs: Some(0),
            ..WatchConfig::default()
        };
        let mut watcher = Watcher::new(config, sim, engine.handle());
        watcher.append_set(&set);
        let events = watcher.tick().expect("tick");
        assert!(events
            .iter()
            .any(|e| matches!(e, WatchEvent::BudgetExhausted { budget: 0, .. })));
        assert_eq!(engine.stats().executions, 0);
        assert_eq!(watcher.stats().discoveries, 0);
        engine.shutdown();
    }

    #[test]
    fn windowed_watcher_tracks_the_retained_tail() {
        let engine = Engine::with_workers(2);
        let case = &all_cases()[0];
        let set = collect_logs_sized(case, 8, 8);
        let sim = Arc::new(Simulator::new(case.program.clone()));
        let config = WatchConfig {
            store: StoreConfig {
                extraction: case.config.clone(),
                retention: RetentionPolicy::keep_last(12),
                ..StoreConfig::default()
            },
            runs_per_round: case.runs_per_round,
            ..WatchConfig::default()
        };
        let mut watcher = Watcher::new(config, sim, engine.handle());
        for t in &set.traces {
            watcher.append_run(&set, t.clone());
            watcher.tick().expect("tick");
        }
        assert_eq!(watcher.store().len(), 12);
        assert!(watcher.store_stats().columns.evicted > 0);
        assert!(watcher.converged().is_some());
        engine.shutdown();
    }
}
