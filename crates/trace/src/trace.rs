//! Whole-run traces and labeled collections of runs.

use crate::clock::Time;
use crate::event::{
    ChannelId, ChannelTag, MethodEvent, MethodId, MethodTag, MsgEvent, ObjectId, ObjectTag, Outcome,
};
use aid_util::IdArena;
use serde::{Deserialize, Serialize};

/// The trace of a single execution of the program under test.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Scheduler seed that produced this run (for reproduction).
    pub seed: u64,
    /// Method events, in start-time order (ties broken by end time, then by
    /// method id — a deterministic total order).
    pub events: Vec<MethodEvent>,
    /// Message lifecycle events, in time order (ties broken by channel, then
    /// sequence number, then lifecycle kind, then the duplicate flag). Empty
    /// for programs with no channels.
    pub msgs: Vec<MsgEvent>,
    /// How the run ended.
    pub outcome: Outcome,
    /// Virtual time at which the run ended.
    pub duration: Time,
}

impl Trace {
    /// Sorts events into the canonical order and assigns per-method instance
    /// indices. Instrumentation backends call this once after collection.
    pub fn normalize(&mut self) {
        // The key is a total order (no two events share start, end, method,
        // AND thread — a thread executes one instruction per tick), so the
        // unstable sort is deterministic and avoids the stable sort's
        // per-call merge-buffer allocation.
        self.events
            .sort_unstable_by_key(|e| (e.start, e.end, e.method, e.thread));
        // Instance renumbering: stack counters for the common method count,
        // heap spill only beyond that.
        let mut small = [0u32; 64];
        let mut spill: Vec<u32> = Vec::new();
        for e in &mut self.events {
            let idx = e.method.index();
            let c = if idx < 64 {
                &mut small[idx]
            } else {
                if idx - 64 >= spill.len() {
                    spill.resize(idx - 64 + 1, 0);
                }
                &mut spill[idx - 64]
            };
            e.instance = *c;
            *c += 1;
        }
        self.msgs
            .sort_unstable_by_key(|m| (m.at, m.channel, m.seq, m.kind, m.dup));
    }

    /// Events of a given method, in instance order.
    pub fn events_of(&self, method: MethodId) -> impl Iterator<Item = &MethodEvent> {
        self.events.iter().filter(move |e| e.method == method)
    }

    /// True if the run failed.
    pub fn failed(&self) -> bool {
        self.outcome.is_failure()
    }
}

/// A set of labeled runs of one program, with shared id arenas.
///
/// This is AID's raw input: "the instrumented application is executed
/// multiple times with the same input, to generate a set of predicate logs,
/// each labeled as a successful or failed execution" (§3.2) — the predicate
/// logs are derived from these traces by `aid-predicates`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TraceSet {
    /// Interned method names.
    pub methods: IdArena<String, MethodTag>,
    /// Interned object names.
    pub objects: IdArena<String, ObjectTag>,
    /// Interned channel names. Empty for shared-memory-only programs, so
    /// sets that predate message passing encode byte-identically.
    pub channels: IdArena<String, ChannelTag>,
    /// The collected runs.
    pub traces: Vec<Trace>,
}

impl TraceSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a method name.
    pub fn method(&mut self, name: &str) -> MethodId {
        self.methods.intern(name.to_owned())
    }

    /// Interns an object name.
    pub fn object(&mut self, name: &str) -> ObjectId {
        self.objects.intern(name.to_owned())
    }

    /// Resolves a method id to its name.
    pub fn method_name(&self, id: MethodId) -> &str {
        self.methods.resolve(id)
    }

    /// Interns a channel name.
    pub fn channel(&mut self, name: &str) -> ChannelId {
        self.channels.intern(name.to_owned())
    }

    /// Resolves an object id to its name.
    pub fn object_name(&self, id: ObjectId) -> &str {
        self.objects.resolve(id)
    }

    /// Resolves a channel id to its name.
    pub fn channel_name(&self, id: ChannelId) -> &str {
        self.channels.resolve(id)
    }

    /// Adds a run.
    pub fn push(&mut self, trace: Trace) {
        self.traces.push(trace);
    }

    /// Iterates successful runs.
    pub fn successes(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter().filter(|t| !t.failed())
    }

    /// Iterates failed runs.
    pub fn failures(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter().filter(|t| t.failed())
    }

    /// `(successes, failures)` counts.
    pub fn counts(&self) -> (usize, usize) {
        let f = self.traces.iter().filter(|t| t.failed()).count();
        (self.traces.len() - f, f)
    }

    /// Keeps only successful runs plus failed runs matching `signature`,
    /// implementing the failure-signature grouping that upholds the paper's
    /// single-root-cause assumption (Assumption 1).
    pub fn filter_failures_by_signature(
        &self,
        signature: &crate::event::FailureSignature,
    ) -> TraceSet {
        TraceSet {
            methods: self.methods.clone(),
            objects: self.objects.clone(),
            channels: self.channels.clone(),
            traces: self
                .traces
                .iter()
                .filter(|t| match &t.outcome {
                    Outcome::Success => true,
                    Outcome::Failure(sig) => sig == signature,
                })
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FailureSignature, ThreadId};

    fn mk_event(method: u32, start: Time, end: Time) -> MethodEvent {
        MethodEvent {
            method: MethodId::from_raw(method),
            instance: 99, // deliberately wrong; normalize() must fix it
            thread: ThreadId::from_raw(0),
            start,
            end,
            accesses: vec![],
            returned: None,
            exception: None,
            caught: false,
        }
    }

    #[test]
    fn normalize_sorts_and_numbers_instances() {
        let mut t = Trace {
            seed: 0,
            events: vec![mk_event(1, 30, 40), mk_event(0, 0, 5), mk_event(1, 10, 20)],
            msgs: vec![],
            outcome: Outcome::Success,
            duration: 40,
        };
        t.normalize();
        let order: Vec<(u32, u32)> = t
            .events
            .iter()
            .map(|e| (e.method.raw(), e.instance))
            .collect();
        assert_eq!(order, vec![(0, 0), (1, 0), (1, 1)]);
    }

    #[test]
    fn counts_and_filters() {
        let mut set = TraceSet::new();
        let m = set.method("Crash");
        let sig = FailureSignature {
            kind: "Boom".into(),
            method: m,
        };
        let other = FailureSignature {
            kind: "Other".into(),
            method: m,
        };
        for outcome in [
            Outcome::Success,
            Outcome::Failure(sig.clone()),
            Outcome::Failure(other),
            Outcome::Failure(sig.clone()),
        ] {
            set.push(Trace {
                seed: 0,
                events: vec![],
                msgs: vec![],
                outcome,
                duration: 0,
            });
        }
        assert_eq!(set.counts(), (1, 3));
        let grouped = set.filter_failures_by_signature(&sig);
        assert_eq!(grouped.counts(), (1, 2));
    }

    #[test]
    fn normalize_orders_msgs() {
        use crate::event::{ChannelId, MsgEvent, MsgKind};
        let msg = |at: Time, seq: u32, kind: MsgKind, dup: bool| MsgEvent {
            channel: ChannelId::from_raw(0),
            kind,
            seq,
            value: 7,
            sent: 0,
            at,
            thread: ThreadId::from_raw(0),
            dup,
        };
        let mut t = Trace {
            seed: 0,
            events: vec![],
            msgs: vec![
                msg(5, 1, MsgKind::Deliver, true),
                msg(5, 1, MsgKind::Deliver, false),
                msg(2, 0, MsgKind::Send, false),
                msg(5, 0, MsgKind::Recv, false),
            ],
            outcome: Outcome::Success,
            duration: 10,
        };
        t.normalize();
        let order: Vec<(Time, u32, bool)> = t.msgs.iter().map(|m| (m.at, m.seq, m.dup)).collect();
        assert_eq!(
            order,
            vec![(2, 0, false), (5, 0, false), (5, 1, false), (5, 1, true)]
        );
    }

    #[test]
    fn method_interning_is_stable() {
        let mut set = TraceSet::new();
        let a = set.method("foo");
        let b = set.method("bar");
        assert_eq!(set.method("foo"), a);
        assert_eq!(set.method_name(b), "bar");
    }
}
