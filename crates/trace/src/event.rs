//! Events recorded in an execution trace.

use crate::clock::Time;
use aid_util::Id;
use serde::{Deserialize, Serialize};

/// Tag type for method ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MethodTag;
/// Tag type for shared-object ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectTag;
/// Tag type for thread ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadTag;
/// Tag type for channel ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelTag;

/// Identifies a (static) method of the program under test.
pub type MethodId = Id<MethodTag>;
/// Identifies a shared object (variable, array, cache, lock target).
pub type ObjectId = Id<ObjectTag>;
/// Identifies a thread of the program under test.
pub type ThreadId = Id<ThreadTag>;
/// Identifies a message channel of the program under test.
pub type ChannelId = Id<ChannelTag>;

/// Whether an access read or wrote the object. A data race requires at least
/// one [`AccessKind::Write`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The object was read.
    Read,
    /// The object was written.
    Write,
}

/// One access to a shared object, attributed to the enclosing method event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessEvent {
    /// The object accessed.
    pub object: ObjectId,
    /// Read or write.
    pub kind: AccessKind,
    /// When the access happened.
    pub at: Time,
    /// Whether the access happened while holding at least one lock. Lock-free
    /// conflicting accesses are what the data-race predicate looks for.
    pub locked: bool,
}

/// One dynamic execution of a method: the unit the appendix's "method
/// execution signature list" records.
///
/// The same static method executed multiple times in a run (loop, recursion,
/// repeated call) yields several events distinguished by `instance`; Section
/// 4 requires this so temporal precedence over-approximates causality even
/// through loops.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MethodEvent {
    /// The static method.
    pub method: MethodId,
    /// 0-based index of this dynamic execution among the run's executions of
    /// the same method, in start-time order.
    pub instance: u32,
    /// Executing thread.
    pub thread: ThreadId,
    /// Start timestamp (inclusive).
    pub start: Time,
    /// End timestamp (inclusive; `end >= start`).
    pub end: Time,
    /// Shared-object accesses made directly by this execution.
    pub accesses: Vec<AccessEvent>,
    /// Return value, if the method returned one.
    pub returned: Option<i64>,
    /// Exception kind raised inside this execution, if any.
    pub exception: Option<String>,
    /// True if the exception was handled (caught) within the method or by an
    /// injected try/catch; an unhandled exception escapes and fails the run.
    pub caught: bool,
}

impl MethodEvent {
    /// True if this execution raised an exception that escaped.
    pub fn failed(&self) -> bool {
        self.exception.is_some() && !self.caught
    }

    /// Duration in ticks.
    pub fn duration(&self) -> Time {
        self.end - self.start
    }

    /// True if the two events' `[start, end]` windows overlap in time and
    /// they ran on different threads (a prerequisite for a data race).
    pub fn overlaps_concurrently(&self, other: &MethodEvent) -> bool {
        self.thread != other.thread && self.start <= other.end && other.start <= self.end
    }
}

/// What happened to a message at one point of its lifecycle.
///
/// A message that is sent, transits the channel, and is consumed produces a
/// `Send` → `Deliver` → `Recv` sequence sharing one `(channel, seq)` key; a
/// dropped message produces `Send` → `Drop` and never reaches a mailbox.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MsgKind {
    /// The sender enqueued the message into the channel.
    Send,
    /// The channel moved the message from transit into the receiver-visible
    /// mailbox (delivery happens at the message's scheduled delivery tick).
    Deliver,
    /// A receiver consumed the message from the mailbox.
    Recv,
    /// The fault plane discarded the message at send time; it never transits.
    Drop,
}

/// One step in a message's lifecycle over a channel.
///
/// Message events live beside the method-event plane: channel operations also
/// record plain [`AccessEvent`]s on per-channel pseudo-objects so the
/// predicate extractors see them, while `MsgEvent`s carry the
/// message-identity detail (sequence number, payload, sender clock) the
/// shared-memory plane cannot express.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgEvent {
    /// The channel the message travelled on.
    pub channel: ChannelId,
    /// Lifecycle step.
    pub kind: MsgKind,
    /// Per-channel sequence number assigned at send time (send order).
    pub seq: u32,
    /// Message payload.
    pub value: i64,
    /// Sender's clock at send time (the "sender clock" of the delivery
    /// contract; delivery and receipt never precede it).
    pub sent: Time,
    /// When this lifecycle step happened.
    pub at: Time,
    /// For `Send`/`Drop`: the sending thread. For `Deliver`: the sending
    /// thread (delivery is attributed to the sender, it happens outside any
    /// frame). For `Recv`: the receiving thread.
    pub thread: ThreadId,
    /// True on the fault-plane duplicate copy of a message.
    pub dup: bool,
}

/// How a run ended.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The run completed without an escaped exception or failed assertion.
    Success,
    /// The run failed; the signature groups failures by root-cause identity
    /// (Assumption 1: AID treats each signature group separately).
    Failure(FailureSignature),
}

impl Outcome {
    /// True for [`Outcome::Failure`].
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::Failure(_))
    }
}

/// Metadata identifying *which* failure occurred — the stand-in for the
/// stack-trace/binary-location metadata failure trackers collect.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FailureSignature {
    /// Exception kind (e.g. `IndexOutOfRange`) or assertion label.
    pub kind: String,
    /// Method in which the failure surfaced.
    pub method: MethodId,
}

impl std::fmt::Display for FailureSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@m{}", self.kind, self.method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: u32, start: Time, end: Time) -> MethodEvent {
        MethodEvent {
            method: MethodId::from_raw(0),
            instance: 0,
            thread: ThreadId::from_raw(thread),
            start,
            end,
            accesses: vec![],
            returned: None,
            exception: None,
            caught: false,
        }
    }

    #[test]
    fn overlap_requires_different_threads() {
        let a = ev(0, 0, 10);
        let b = ev(0, 5, 15);
        assert!(!a.overlaps_concurrently(&b), "same thread never races");
        let c = ev(1, 5, 15);
        assert!(a.overlaps_concurrently(&c));
        assert!(c.overlaps_concurrently(&a), "overlap is symmetric");
    }

    #[test]
    fn overlap_boundaries_are_inclusive() {
        let a = ev(0, 0, 10);
        let touching = ev(1, 10, 20);
        assert!(a.overlaps_concurrently(&touching));
        let disjoint = ev(1, 11, 20);
        assert!(!a.overlaps_concurrently(&disjoint));
    }

    #[test]
    fn failed_means_uncaught() {
        let mut e = ev(0, 0, 1);
        assert!(!e.failed());
        e.exception = Some("Boom".into());
        assert!(e.failed());
        e.caught = true;
        assert!(!e.failed(), "caught exceptions do not fail the run");
    }
}
