//! Events recorded in an execution trace.

use crate::clock::Time;
use aid_util::Id;
use serde::{Deserialize, Serialize};

/// Tag type for method ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MethodTag;
/// Tag type for shared-object ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectTag;
/// Tag type for thread ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadTag;

/// Identifies a (static) method of the program under test.
pub type MethodId = Id<MethodTag>;
/// Identifies a shared object (variable, array, cache, lock target).
pub type ObjectId = Id<ObjectTag>;
/// Identifies a thread of the program under test.
pub type ThreadId = Id<ThreadTag>;

/// Whether an access read or wrote the object. A data race requires at least
/// one [`AccessKind::Write`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The object was read.
    Read,
    /// The object was written.
    Write,
}

/// One access to a shared object, attributed to the enclosing method event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessEvent {
    /// The object accessed.
    pub object: ObjectId,
    /// Read or write.
    pub kind: AccessKind,
    /// When the access happened.
    pub at: Time,
    /// Whether the access happened while holding at least one lock. Lock-free
    /// conflicting accesses are what the data-race predicate looks for.
    pub locked: bool,
}

/// One dynamic execution of a method: the unit the appendix's "method
/// execution signature list" records.
///
/// The same static method executed multiple times in a run (loop, recursion,
/// repeated call) yields several events distinguished by `instance`; Section
/// 4 requires this so temporal precedence over-approximates causality even
/// through loops.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MethodEvent {
    /// The static method.
    pub method: MethodId,
    /// 0-based index of this dynamic execution among the run's executions of
    /// the same method, in start-time order.
    pub instance: u32,
    /// Executing thread.
    pub thread: ThreadId,
    /// Start timestamp (inclusive).
    pub start: Time,
    /// End timestamp (inclusive; `end >= start`).
    pub end: Time,
    /// Shared-object accesses made directly by this execution.
    pub accesses: Vec<AccessEvent>,
    /// Return value, if the method returned one.
    pub returned: Option<i64>,
    /// Exception kind raised inside this execution, if any.
    pub exception: Option<String>,
    /// True if the exception was handled (caught) within the method or by an
    /// injected try/catch; an unhandled exception escapes and fails the run.
    pub caught: bool,
}

impl MethodEvent {
    /// True if this execution raised an exception that escaped.
    pub fn failed(&self) -> bool {
        self.exception.is_some() && !self.caught
    }

    /// Duration in ticks.
    pub fn duration(&self) -> Time {
        self.end - self.start
    }

    /// True if the two events' `[start, end]` windows overlap in time and
    /// they ran on different threads (a prerequisite for a data race).
    pub fn overlaps_concurrently(&self, other: &MethodEvent) -> bool {
        self.thread != other.thread && self.start <= other.end && other.start <= self.end
    }
}

/// How a run ended.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The run completed without an escaped exception or failed assertion.
    Success,
    /// The run failed; the signature groups failures by root-cause identity
    /// (Assumption 1: AID treats each signature group separately).
    Failure(FailureSignature),
}

impl Outcome {
    /// True for [`Outcome::Failure`].
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::Failure(_))
    }
}

/// Metadata identifying *which* failure occurred — the stand-in for the
/// stack-trace/binary-location metadata failure trackers collect.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FailureSignature {
    /// Exception kind (e.g. `IndexOutOfRange`) or assertion label.
    pub kind: String,
    /// Method in which the failure surfaced.
    pub method: MethodId,
}

impl std::fmt::Display for FailureSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@m{}", self.kind, self.method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(thread: u32, start: Time, end: Time) -> MethodEvent {
        MethodEvent {
            method: MethodId::from_raw(0),
            instance: 0,
            thread: ThreadId::from_raw(thread),
            start,
            end,
            accesses: vec![],
            returned: None,
            exception: None,
            caught: false,
        }
    }

    #[test]
    fn overlap_requires_different_threads() {
        let a = ev(0, 0, 10);
        let b = ev(0, 5, 15);
        assert!(!a.overlaps_concurrently(&b), "same thread never races");
        let c = ev(1, 5, 15);
        assert!(a.overlaps_concurrently(&c));
        assert!(c.overlaps_concurrently(&a), "overlap is symmetric");
    }

    #[test]
    fn overlap_boundaries_are_inclusive() {
        let a = ev(0, 0, 10);
        let touching = ev(1, 10, 20);
        assert!(a.overlaps_concurrently(&touching));
        let disjoint = ev(1, 11, 20);
        assert!(!a.overlaps_concurrently(&disjoint));
    }

    #[test]
    fn failed_means_uncaught() {
        let mut e = ev(0, 0, 1);
        assert!(!e.failed());
        e.exception = Some("Boom".into());
        assert!(e.failed());
        e.caught = true;
        assert!(!e.failed(), "caught exceptions do not fail the run");
    }
}
