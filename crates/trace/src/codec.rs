//! A line-oriented codec for persisting trace sets.
//!
//! Deliberately a purpose-built text format rather than a general
//! serialization dependency: trace logs are the artifact developers inspect
//! when AID's answer surprises them, so the format is greppable and diffable.
//!
//! ```text
//! #AID-TRACE v1
//! method 0 TryGetValue
//! object 0 _nextSlot
//! trace <seed> ok|fail <kind> <method-id>
//! event <method> <thread> <start> <end> <ret|-> <exc|-> <caught:0|1>
//! access <object> R|W <time> <locked:0|1>
//! endtrace <duration>
//! ```
//!
//! `access` lines attach to the most recent `event` line. Instance indices
//! are not stored; they are recomputed by [`Trace::normalize`] on decode.
//! Names must not contain whitespace (enforced on encode).

use crate::event::{
    AccessEvent, AccessKind, FailureSignature, MethodEvent, MethodId, ObjectId, Outcome, ThreadId,
};
use crate::trace::{Trace, TraceSet};
use bytes::BufMut;
use std::fmt::Write as _;

/// Errors produced while decoding a trace log.
#[derive(Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace log line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a trace set to the line format.
pub fn encode(set: &TraceSet) -> String {
    let mut out = String::new();
    out.push_str("#AID-TRACE v1\n");
    for (id, name) in set.methods.iter() {
        assert!(
            !name.chars().any(char::is_whitespace),
            "method name {name:?} contains whitespace"
        );
        writeln!(out, "method {} {}", id.raw(), name).unwrap();
    }
    for (id, name) in set.objects.iter() {
        assert!(
            !name.chars().any(char::is_whitespace),
            "object name {name:?} contains whitespace"
        );
        writeln!(out, "object {} {}", id.raw(), name).unwrap();
    }
    for t in &set.traces {
        match &t.outcome {
            Outcome::Success => writeln!(out, "trace {} ok - -", t.seed).unwrap(),
            Outcome::Failure(sig) => writeln!(
                out,
                "trace {} fail {} {}",
                t.seed,
                sig.kind,
                sig.method.raw()
            )
            .unwrap(),
        }
        for e in &t.events {
            let ret = e.returned.map_or("-".to_string(), |v| v.to_string());
            let exc = e.exception.clone().unwrap_or_else(|| "-".into());
            writeln!(
                out,
                "event {} {} {} {} {} {} {}",
                e.method.raw(),
                e.thread.raw(),
                e.start,
                e.end,
                ret,
                exc,
                u8::from(e.caught)
            )
            .unwrap();
            for a in &e.accesses {
                let k = match a.kind {
                    AccessKind::Read => 'R',
                    AccessKind::Write => 'W',
                };
                writeln!(
                    out,
                    "access {} {} {} {}",
                    a.object.raw(),
                    k,
                    a.at,
                    u8::from(a.locked)
                )
                .unwrap();
            }
        }
        writeln!(out, "endtrace {}", t.duration).unwrap();
    }
    out
}

/// Encodes into a byte buffer (for streaming writers).
pub fn encode_to_buf(set: &TraceSet, buf: &mut impl BufMut) {
    buf.put_slice(encode(set).as_bytes());
}

/// Decodes a trace set from the line format.
pub fn decode(input: &str) -> Result<TraceSet, DecodeError> {
    let mut set = TraceSet::new();
    let mut current: Option<Trace> = None;

    let err = |line: usize, message: &str| DecodeError {
        line,
        message: message.to_string(),
    };

    for (idx, raw_line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let tag = parts.next().unwrap();
        let mut next = |what: &str| -> Result<&str, DecodeError> {
            parts
                .next()
                .ok_or_else(|| err(lineno, &format!("missing {what}")))
        };
        match tag {
            "method" => {
                let _id: u32 = next("id")?
                    .parse()
                    .map_err(|_| err(lineno, "bad method id"))?;
                let name = next("name")?;
                set.methods.intern(name.to_string());
            }
            "object" => {
                let _id: u32 = next("id")?
                    .parse()
                    .map_err(|_| err(lineno, "bad object id"))?;
                let name = next("name")?;
                set.objects.intern(name.to_string());
            }
            "trace" => {
                if current.is_some() {
                    return Err(err(lineno, "trace without endtrace"));
                }
                let seed: u64 = next("seed")?.parse().map_err(|_| err(lineno, "bad seed"))?;
                let status = next("status")?;
                let kind = next("kind")?.to_string();
                let method = next("method")?;
                let outcome = match status {
                    "ok" => Outcome::Success,
                    "fail" => Outcome::Failure(FailureSignature {
                        kind,
                        method: MethodId::from_raw(
                            method
                                .parse()
                                .map_err(|_| err(lineno, "bad failure method"))?,
                        ),
                    }),
                    _ => return Err(err(lineno, "status must be ok or fail")),
                };
                current = Some(Trace {
                    seed,
                    events: vec![],
                    outcome,
                    duration: 0,
                });
            }
            "event" => {
                let t = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "event outside trace"))?;
                let method = MethodId::from_raw(
                    next("method")?
                        .parse()
                        .map_err(|_| err(lineno, "bad method"))?,
                );
                let thread = ThreadId::from_raw(
                    next("thread")?
                        .parse()
                        .map_err(|_| err(lineno, "bad thread"))?,
                );
                let start = next("start")?
                    .parse()
                    .map_err(|_| err(lineno, "bad start"))?;
                let end = next("end")?.parse().map_err(|_| err(lineno, "bad end"))?;
                let ret = match next("ret")? {
                    "-" => None,
                    v => Some(v.parse().map_err(|_| err(lineno, "bad return value"))?),
                };
                let exc = match next("exc")? {
                    "-" => None,
                    v => Some(v.to_string()),
                };
                let caught = next("caught")? == "1";
                t.events.push(MethodEvent {
                    method,
                    instance: 0,
                    thread,
                    start,
                    end,
                    accesses: vec![],
                    returned: ret,
                    exception: exc,
                    caught,
                });
            }
            "access" => {
                let t = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "access outside trace"))?;
                let e = t
                    .events
                    .last_mut()
                    .ok_or_else(|| err(lineno, "access before any event"))?;
                let object = ObjectId::from_raw(
                    next("object")?
                        .parse()
                        .map_err(|_| err(lineno, "bad object"))?,
                );
                let kind = match next("kind")? {
                    "R" => AccessKind::Read,
                    "W" => AccessKind::Write,
                    _ => return Err(err(lineno, "access kind must be R or W")),
                };
                let at = next("time")?.parse().map_err(|_| err(lineno, "bad time"))?;
                let locked = next("locked")? == "1";
                e.accesses.push(AccessEvent {
                    object,
                    kind,
                    at,
                    locked,
                });
            }
            "endtrace" => {
                let mut t = current
                    .take()
                    .ok_or_else(|| err(lineno, "endtrace without trace"))?;
                t.duration = next("duration")?
                    .parse()
                    .map_err(|_| err(lineno, "bad duration"))?;
                t.normalize();
                set.traces.push(t);
            }
            other => return Err(err(lineno, &format!("unknown record {other:?}"))),
        }
    }
    if current.is_some() {
        return Err(DecodeError {
            line: input.lines().count(),
            message: "unterminated trace".into(),
        });
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSet {
        let mut set = TraceSet::new();
        let m0 = set.method("TryGetValue");
        let m1 = set.method("GetOrAdd");
        let o = set.object("_nextSlot");
        let mut t = Trace {
            seed: 42,
            events: vec![
                MethodEvent {
                    method: m0,
                    instance: 0,
                    thread: ThreadId::from_raw(1),
                    start: 100,
                    end: 200,
                    accesses: vec![AccessEvent {
                        object: o,
                        kind: AccessKind::Read,
                        at: 150,
                        locked: false,
                    }],
                    returned: Some(-1),
                    exception: None,
                    caught: false,
                },
                MethodEvent {
                    method: m1,
                    instance: 0,
                    thread: ThreadId::from_raw(2),
                    start: 150,
                    end: 190,
                    accesses: vec![AccessEvent {
                        object: o,
                        kind: AccessKind::Write,
                        at: 160,
                        locked: false,
                    }],
                    returned: None,
                    exception: Some("IndexOutOfRange".into()),
                    caught: false,
                },
            ],
            outcome: Outcome::Failure(FailureSignature {
                kind: "IndexOutOfRange".into(),
                method: m1,
            }),
            duration: 210,
        };
        t.normalize();
        set.push(t);
        set
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let set = sample();
        let text = encode(&set);
        let back = decode(&text).expect("decode");
        assert_eq!(back.methods.len(), set.methods.len());
        assert_eq!(back.objects.len(), set.objects.len());
        assert_eq!(back.traces.len(), 1);
        assert_eq!(back.traces[0], set.traces[0]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("bogus line").is_err());
        let e = decode("event 0 0 0 0 - - 0").unwrap_err();
        assert!(e.message.contains("outside trace"), "{e}");
        let e = decode("trace 1 ok - -\n").unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");
    }

    #[test]
    fn decode_skips_comments_and_blanks() {
        let set = sample();
        let mut text = String::from("# leading comment\n\n");
        text.push_str(&encode(&set));
        assert!(decode(&text).is_ok());
    }

    #[test]
    fn encode_to_buf_matches_encode() {
        let set = sample();
        let mut buf = Vec::new();
        encode_to_buf(&set, &mut buf);
        assert_eq!(String::from_utf8(buf).unwrap(), encode(&set));
    }
}
