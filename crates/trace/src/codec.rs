//! A line-oriented codec for persisting trace sets.
//!
//! Deliberately a purpose-built text format rather than a general
//! serialization dependency: trace logs are the artifact developers inspect
//! when AID's answer surprises them, so the format is greppable and diffable.
//!
//! ```text
//! #AID-TRACE v1
//! method 0 TryGetValue
//! object 0 _nextSlot
//! channel 0 requests
//! trace <seed> ok|fail <kind> <method-id>
//! event <method> <thread> <start> <end> <ret|-> <exc|-> <caught:0|1>
//! access <object> R|W <time> <locked:0|1>
//! msg <channel> S|D|R|X <seq> <value> <sent> <at> <thread> <dup:0|1>
//! endtrace <duration>
//! ```
//!
//! `access` lines attach to the most recent `event` line; `msg` lines attach
//! to the enclosing trace (S = send, D = deliver, R = recv, X = dropped by
//! the fault plane). Channel declarations and `msg` lines are emitted only
//! when a set actually uses channels, so shared-memory-only logs are
//! byte-identical to the pre-channel format. Instance indices are not
//! stored; they are recomputed by [`Trace::normalize`] on decode. Names must
//! not contain whitespace (enforced on encode).

use crate::clock::Time;
use crate::event::{
    AccessEvent, AccessKind, ChannelId, FailureSignature, MethodEvent, MethodId, MsgEvent, MsgKind,
    ObjectId, Outcome, ThreadId,
};
use crate::trace::{Trace, TraceSet};
use bytes::BufMut;
use std::fmt::Write as _;

/// Why a line (or stream) failed to decode. Every way the format can go
/// wrong maps to exactly one variant, so consumers that *recover* from bad
/// input (the `aid_store` streaming ingester quarantines records instead of
/// aborting the batch) can classify failures without string matching.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeErrorKind {
    /// A record is missing a required field (the field name is attached).
    MissingField(&'static str),
    /// A numeric field failed to parse (the field name is attached).
    InvalidNumber(&'static str),
    /// A `trace` record's status was neither `ok` nor `fail`.
    InvalidStatus,
    /// An `access` record's kind was neither `R` nor `W`.
    InvalidAccessKind,
    /// A `msg` record's kind was not one of `S`, `D`, `R`, `X`.
    InvalidMsgKind,
    /// A boolean field (`caught`, `locked`) was neither `0` nor `1`.
    InvalidFlag(&'static str),
    /// A record carried tokens after its last defined field.
    TrailingTokens,
    /// The line's leading tag names no known record type.
    UnknownRecord,
    /// A structurally valid record arrived where the grammar forbids it
    /// (e.g. an `event` outside any trace); the attached text says which
    /// rule was violated.
    UnexpectedRecord(&'static str),
    /// An event or failure signature referenced an undeclared method id.
    UnknownMethod(u32),
    /// An access referenced an undeclared object id.
    UnknownObject(u32),
    /// A msg record referenced an undeclared channel id.
    UnknownChannel(u32),
    /// A `method`/`object` declaration's id disagrees with the id the
    /// decoder assigns (declarations must arrive in dense id order, and
    /// re-declarations must be consistent).
    MisnumberedDeclaration {
        /// The id the decoder would assign this name.
        expected: u32,
        /// The id the line declared.
        found: u32,
    },
    /// The input ended inside a trace (no `endtrace`).
    UnterminatedTrace,
    /// The input ended mid-line (byte-stream decoding only). A partial
    /// line can prefix-parse as a *different* valid record — `endtrace 40`
    /// truncated to `endtrace 4` is well-formed but wrong — so stream
    /// decoders must quarantine the tail rather than ingest it.
    TruncatedLine,
    /// The line is not valid UTF-8 (byte-stream decoding only).
    InvalidUtf8,
}

impl DecodeErrorKind {
    fn render(&self) -> String {
        match self {
            DecodeErrorKind::MissingField(f) => format!("missing {f}"),
            DecodeErrorKind::InvalidNumber(f) => format!("bad {f}"),
            DecodeErrorKind::InvalidStatus => "status must be ok or fail".into(),
            DecodeErrorKind::InvalidAccessKind => "access kind must be R or W".into(),
            DecodeErrorKind::InvalidMsgKind => "msg kind must be S, D, R, or X".into(),
            DecodeErrorKind::InvalidFlag(f) => format!("{f} must be 0 or 1"),
            DecodeErrorKind::TrailingTokens => "trailing tokens after record".into(),
            DecodeErrorKind::UnknownRecord => "unknown record".into(),
            DecodeErrorKind::UnexpectedRecord(what) => (*what).into(),
            DecodeErrorKind::UnknownMethod(id) => format!("undeclared method id {id}"),
            DecodeErrorKind::UnknownObject(id) => format!("undeclared object id {id}"),
            DecodeErrorKind::UnknownChannel(id) => format!("undeclared channel id {id}"),
            DecodeErrorKind::MisnumberedDeclaration { expected, found } => {
                format!("declaration id {found} out of order (expected {expected})")
            }
            DecodeErrorKind::UnterminatedTrace => "unterminated trace".into(),
            DecodeErrorKind::TruncatedLine => "input ended mid-line".into(),
            DecodeErrorKind::InvalidUtf8 => "line is not valid UTF-8".into(),
        }
    }
}

/// Errors produced while decoding a trace log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong, typed.
    pub kind: DecodeErrorKind,
    /// Human-readable rendering of `kind`.
    pub message: String,
}

impl DecodeError {
    /// Builds an error at `line` from its typed kind.
    pub fn new(line: usize, kind: DecodeErrorKind) -> Self {
        let message = kind.render();
        DecodeError {
            line,
            kind,
            message,
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace log line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DecodeError {}

/// One parsed line of the format — the context-free layer shared by the
/// batch [`decode`] below and `aid_store`'s resumable streaming decoder.
/// Context rules (events belong to traces, ids must be declared) are the
/// caller's job; [`parse_line`] only validates the line's own shape.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A `method <id> <name>` declaration.
    Method {
        /// Declared dense id.
        id: u32,
        /// Interned name.
        name: String,
    },
    /// An `object <id> <name>` declaration.
    Object {
        /// Declared dense id.
        id: u32,
        /// Interned name.
        name: String,
    },
    /// A `trace <seed> <status> <kind> <method>` header opening a run.
    TraceStart {
        /// Scheduler seed of the run.
        seed: u64,
        /// Parsed outcome (`ok` or `fail` + signature).
        outcome: Outcome,
    },
    /// An `event …` record (instance is recomputed on `endtrace`).
    Event(MethodEvent),
    /// An `access …` record, attaching to the most recent event.
    Access(AccessEvent),
    /// A `channel <id> <name>` declaration.
    Channel {
        /// Declared dense id.
        id: u32,
        /// Interned name.
        name: String,
    },
    /// A `msg …` record, attaching to the enclosing trace.
    Msg(MsgEvent),
    /// An `endtrace <duration>` record closing a run.
    TraceEnd {
        /// Virtual end time of the run.
        duration: Time,
    },
}

/// Parses one line into a [`Record`]. Returns `Ok(None)` for blank lines and
/// `#` comments. Never panics: every malformed shape maps to a typed
/// [`DecodeError`] at `lineno`.
pub fn parse_line(raw_line: &str, lineno: usize) -> Result<Option<Record>, DecodeError> {
    let line = raw_line.trim_end();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let err = |kind: DecodeErrorKind| DecodeError::new(lineno, kind);
    let mut parts = line.split_ascii_whitespace();
    let tag = parts.next().expect("non-empty trimmed line has a token");
    let mut next = |what: &'static str| -> Result<&str, DecodeError> {
        parts
            .next()
            .ok_or_else(|| err(DecodeErrorKind::MissingField(what)))
    };
    macro_rules! num {
        ($what:literal) => {
            next($what)?
                .parse()
                .map_err(|_| err(DecodeErrorKind::InvalidNumber($what)))?
        };
    }
    macro_rules! flag {
        ($what:literal) => {
            match next($what)? {
                "0" => false,
                "1" => true,
                _ => return Err(err(DecodeErrorKind::InvalidFlag($what))),
            }
        };
    }
    let record = match tag {
        "method" => Record::Method {
            id: num!("method id"),
            name: next("name")?.to_string(),
        },
        "object" => Record::Object {
            id: num!("object id"),
            name: next("name")?.to_string(),
        },
        "trace" => {
            let seed = num!("seed");
            let status = next("status")?;
            let kind = next("kind")?.to_string();
            let method = next("method")?;
            let outcome = match status {
                "ok" => Outcome::Success,
                "fail" => Outcome::Failure(FailureSignature {
                    kind,
                    method: MethodId::from_raw(
                        method
                            .parse()
                            .map_err(|_| err(DecodeErrorKind::InvalidNumber("failure method")))?,
                    ),
                }),
                _ => return Err(err(DecodeErrorKind::InvalidStatus)),
            };
            Record::TraceStart { seed, outcome }
        }
        "event" => {
            let method = MethodId::from_raw(num!("method"));
            let thread = ThreadId::from_raw(num!("thread"));
            let start = num!("start");
            let end = num!("end");
            let returned = match next("ret")? {
                "-" => None,
                v => Some(
                    v.parse()
                        .map_err(|_| err(DecodeErrorKind::InvalidNumber("return value")))?,
                ),
            };
            let exception = match next("exc")? {
                "-" => None,
                v => Some(v.to_string()),
            };
            let caught = flag!("caught");
            Record::Event(MethodEvent {
                method,
                instance: 0,
                thread,
                start,
                end,
                accesses: vec![],
                returned,
                exception,
                caught,
            })
        }
        "access" => {
            let object = ObjectId::from_raw(num!("object"));
            let kind = match next("kind")? {
                "R" => AccessKind::Read,
                "W" => AccessKind::Write,
                _ => return Err(err(DecodeErrorKind::InvalidAccessKind)),
            };
            let at = num!("time");
            let locked = flag!("locked");
            Record::Access(AccessEvent {
                object,
                kind,
                at,
                locked,
            })
        }
        "channel" => Record::Channel {
            id: num!("channel id"),
            name: next("name")?.to_string(),
        },
        "msg" => {
            let channel = ChannelId::from_raw(num!("channel"));
            let kind = match next("kind")? {
                "S" => MsgKind::Send,
                "D" => MsgKind::Deliver,
                "R" => MsgKind::Recv,
                "X" => MsgKind::Drop,
                _ => return Err(err(DecodeErrorKind::InvalidMsgKind)),
            };
            let seq = num!("seq");
            let value = num!("value");
            let sent = num!("sent");
            let at = num!("time");
            let thread = ThreadId::from_raw(num!("thread"));
            let dup = flag!("dup");
            Record::Msg(MsgEvent {
                channel,
                kind,
                seq,
                value,
                sent,
                at,
                thread,
                dup,
            })
        }
        "endtrace" => Record::TraceEnd {
            duration: num!("duration"),
        },
        _ => return Err(err(DecodeErrorKind::UnknownRecord)),
    };
    if parts.next().is_some() {
        return Err(err(DecodeErrorKind::TrailingTokens));
    }
    Ok(Some(record))
}

/// Encodes a trace set to the line format.
pub fn encode(set: &TraceSet) -> String {
    let mut out = String::new();
    out.push_str("#AID-TRACE v1\n");
    for (id, name) in set.methods.iter() {
        assert!(
            !name.chars().any(char::is_whitespace),
            "method name {name:?} contains whitespace"
        );
        writeln!(out, "method {} {}", id.raw(), name).unwrap();
    }
    for (id, name) in set.objects.iter() {
        assert!(
            !name.chars().any(char::is_whitespace),
            "object name {name:?} contains whitespace"
        );
        writeln!(out, "object {} {}", id.raw(), name).unwrap();
    }
    for (id, name) in set.channels.iter() {
        assert!(
            !name.chars().any(char::is_whitespace),
            "channel name {name:?} contains whitespace"
        );
        writeln!(out, "channel {} {}", id.raw(), name).unwrap();
    }
    for t in &set.traces {
        match &t.outcome {
            Outcome::Success => writeln!(out, "trace {} ok - -", t.seed).unwrap(),
            Outcome::Failure(sig) => writeln!(
                out,
                "trace {} fail {} {}",
                t.seed,
                sig.kind,
                sig.method.raw()
            )
            .unwrap(),
        }
        for e in &t.events {
            let ret = e.returned.map_or("-".to_string(), |v| v.to_string());
            let exc = e.exception.clone().unwrap_or_else(|| "-".into());
            writeln!(
                out,
                "event {} {} {} {} {} {} {}",
                e.method.raw(),
                e.thread.raw(),
                e.start,
                e.end,
                ret,
                exc,
                u8::from(e.caught)
            )
            .unwrap();
            for a in &e.accesses {
                let k = match a.kind {
                    AccessKind::Read => 'R',
                    AccessKind::Write => 'W',
                };
                writeln!(
                    out,
                    "access {} {} {} {}",
                    a.object.raw(),
                    k,
                    a.at,
                    u8::from(a.locked)
                )
                .unwrap();
            }
        }
        for m in &t.msgs {
            let k = match m.kind {
                MsgKind::Send => 'S',
                MsgKind::Deliver => 'D',
                MsgKind::Recv => 'R',
                MsgKind::Drop => 'X',
            };
            writeln!(
                out,
                "msg {} {} {} {} {} {} {} {}",
                m.channel.raw(),
                k,
                m.seq,
                m.value,
                m.sent,
                m.at,
                m.thread.raw(),
                u8::from(m.dup)
            )
            .unwrap();
        }
        writeln!(out, "endtrace {}", t.duration).unwrap();
    }
    out
}

/// Encodes into a byte buffer (for streaming writers).
pub fn encode_to_buf(set: &TraceSet, buf: &mut impl BufMut) {
    buf.put_slice(encode(set).as_bytes());
}

/// Interns a declared name, checking the declared id against the id the
/// arena assigns. Re-declaring an existing `(id, name)` pair is legal (log
/// segments from one source may repeat their header when concatenated);
/// any other mismatch is a [`DecodeErrorKind::MisnumberedDeclaration`].
/// Shared by the strict [`decode`] and `aid_store`'s quarantining streaming
/// decoder so the two classify declarations identically.
pub fn declare<Tag>(
    arena: &mut aid_util::IdArena<String, Tag>,
    id: u32,
    name: String,
    lineno: usize,
) -> Result<(), DecodeError> {
    let expected = arena.get(&name).map_or(arena.len() as u32, |a| a.raw());
    if expected != id {
        return Err(DecodeError::new(
            lineno,
            DecodeErrorKind::MisnumberedDeclaration {
                expected,
                found: id,
            },
        ));
    }
    arena.intern(name);
    Ok(())
}

/// Decodes a trace set from the line format.
///
/// Strict, all-or-nothing: the first malformed line aborts with a typed
/// [`DecodeError`] (use `aid_store`'s streaming decoder for quarantine-and-
/// continue semantics). Beyond line shape this validates the stream's
/// *references*: declarations must arrive in dense id order, and every
/// method/object id an event, access, or failure signature mentions must
/// already be declared.
pub fn decode(input: &str) -> Result<TraceSet, DecodeError> {
    let mut set = TraceSet::new();
    let mut current: Option<Trace> = None;

    for (idx, raw_line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let err = |kind: DecodeErrorKind| DecodeError::new(lineno, kind);
        match parse_line(raw_line, lineno)? {
            None => {}
            Some(Record::Method { id, name }) => declare(&mut set.methods, id, name, lineno)?,
            Some(Record::Object { id, name }) => declare(&mut set.objects, id, name, lineno)?,
            Some(Record::Channel { id, name }) => declare(&mut set.channels, id, name, lineno)?,
            Some(Record::TraceStart { seed, outcome }) => {
                if current.is_some() {
                    return Err(err(DecodeErrorKind::UnexpectedRecord(
                        "trace without endtrace",
                    )));
                }
                if let Outcome::Failure(sig) = &outcome {
                    if sig.method.index() >= set.methods.len() {
                        return Err(err(DecodeErrorKind::UnknownMethod(sig.method.raw())));
                    }
                }
                current = Some(Trace {
                    seed,
                    events: vec![],
                    msgs: vec![],
                    outcome,
                    duration: 0,
                });
            }
            Some(Record::Event(e)) => {
                let t = current
                    .as_mut()
                    .ok_or_else(|| err(DecodeErrorKind::UnexpectedRecord("event outside trace")))?;
                if e.method.index() >= set.methods.len() {
                    return Err(err(DecodeErrorKind::UnknownMethod(e.method.raw())));
                }
                t.events.push(e);
            }
            Some(Record::Access(a)) => {
                let t = current.as_mut().ok_or_else(|| {
                    err(DecodeErrorKind::UnexpectedRecord("access outside trace"))
                })?;
                let e = t.events.last_mut().ok_or_else(|| {
                    err(DecodeErrorKind::UnexpectedRecord("access before any event"))
                })?;
                if a.object.index() >= set.objects.len() {
                    return Err(err(DecodeErrorKind::UnknownObject(a.object.raw())));
                }
                e.accesses.push(a);
            }
            Some(Record::Msg(m)) => {
                let t = current
                    .as_mut()
                    .ok_or_else(|| err(DecodeErrorKind::UnexpectedRecord("msg outside trace")))?;
                if m.channel.index() >= set.channels.len() {
                    return Err(err(DecodeErrorKind::UnknownChannel(m.channel.raw())));
                }
                t.msgs.push(m);
            }
            Some(Record::TraceEnd { duration }) => {
                let mut t = current.take().ok_or_else(|| {
                    err(DecodeErrorKind::UnexpectedRecord("endtrace without trace"))
                })?;
                t.duration = duration;
                t.normalize();
                set.traces.push(t);
            }
        }
    }
    if current.is_some() {
        return Err(DecodeError::new(
            input.lines().count(),
            DecodeErrorKind::UnterminatedTrace,
        ));
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSet {
        let mut set = TraceSet::new();
        let m0 = set.method("TryGetValue");
        let m1 = set.method("GetOrAdd");
        let o = set.object("_nextSlot");
        let mut t = Trace {
            seed: 42,
            events: vec![
                MethodEvent {
                    method: m0,
                    instance: 0,
                    thread: ThreadId::from_raw(1),
                    start: 100,
                    end: 200,
                    accesses: vec![AccessEvent {
                        object: o,
                        kind: AccessKind::Read,
                        at: 150,
                        locked: false,
                    }],
                    returned: Some(-1),
                    exception: None,
                    caught: false,
                },
                MethodEvent {
                    method: m1,
                    instance: 0,
                    thread: ThreadId::from_raw(2),
                    start: 150,
                    end: 190,
                    accesses: vec![AccessEvent {
                        object: o,
                        kind: AccessKind::Write,
                        at: 160,
                        locked: false,
                    }],
                    returned: None,
                    exception: Some("IndexOutOfRange".into()),
                    caught: false,
                },
            ],
            msgs: vec![],
            outcome: Outcome::Failure(FailureSignature {
                kind: "IndexOutOfRange".into(),
                method: m1,
            }),
            duration: 210,
        };
        t.normalize();
        set.push(t);
        set
    }

    fn sample_with_channels() -> TraceSet {
        let mut set = TraceSet::new();
        let m = set.method("Producer");
        let ch = set.channel("requests");
        let mut t = Trace {
            seed: 7,
            events: vec![MethodEvent {
                method: m,
                instance: 0,
                thread: ThreadId::from_raw(0),
                start: 0,
                end: 10,
                accesses: vec![],
                returned: None,
                exception: None,
                caught: false,
            }],
            msgs: vec![
                MsgEvent {
                    channel: ch,
                    kind: MsgKind::Send,
                    seq: 0,
                    value: 42,
                    sent: 3,
                    at: 3,
                    thread: ThreadId::from_raw(0),
                    dup: false,
                },
                MsgEvent {
                    channel: ch,
                    kind: MsgKind::Deliver,
                    seq: 0,
                    value: 42,
                    sent: 3,
                    at: 5,
                    thread: ThreadId::from_raw(0),
                    dup: true,
                },
            ],
            outcome: Outcome::Success,
            duration: 12,
        };
        t.normalize();
        set.push(t);
        set
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let set = sample();
        let text = encode(&set);
        let back = decode(&text).expect("decode");
        assert_eq!(back.methods.len(), set.methods.len());
        assert_eq!(back.objects.len(), set.objects.len());
        assert_eq!(back.traces.len(), 1);
        assert_eq!(back.traces[0], set.traces[0]);
    }

    #[test]
    fn channel_roundtrip_preserves_msgs() {
        let set = sample_with_channels();
        let text = encode(&set);
        assert!(text.contains("channel 0 requests"), "{text}");
        assert!(text.contains("msg 0 S 0 42 3 3 0 0"), "{text}");
        assert!(text.contains("msg 0 D 0 42 3 5 0 1"), "{text}");
        let back = decode(&text).expect("decode");
        assert_eq!(back.channels.len(), 1);
        assert_eq!(back.traces[0], set.traces[0]);
    }

    #[test]
    fn channel_free_sets_encode_without_channel_records() {
        let text = encode(&sample());
        assert!(!text.contains("channel"), "{text}");
        assert!(!text.contains("\nmsg"), "{text}");
    }

    #[test]
    fn msg_decode_errors_are_typed() {
        let e = decode("msg 0 S 0 1 0 0 0 0").unwrap_err();
        assert_eq!(
            e.kind,
            DecodeErrorKind::UnexpectedRecord("msg outside trace")
        );
        let e = decode("trace 1 ok - -\nmsg 0 S 0 1 0 0 0 0\nendtrace 1\n").unwrap_err();
        assert_eq!(e.kind, DecodeErrorKind::UnknownChannel(0));
        let e =
            decode("channel 0 c\ntrace 1 ok - -\nmsg 0 Q 0 1 0 0 0 0\nendtrace 1\n").unwrap_err();
        assert_eq!(e.kind, DecodeErrorKind::InvalidMsgKind);
        let e =
            decode("channel 0 c\ntrace 1 ok - -\nmsg 0 S 0 1 0 0 0 2\nendtrace 1\n").unwrap_err();
        assert_eq!(e.kind, DecodeErrorKind::InvalidFlag("dup"));
        let e = decode("channel 2 c").unwrap_err();
        assert_eq!(
            e.kind,
            DecodeErrorKind::MisnumberedDeclaration {
                expected: 0,
                found: 2
            }
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("bogus line").is_err());
        let e = decode("event 0 0 0 0 - - 0").unwrap_err();
        assert!(e.message.contains("outside trace"), "{e}");
        let e = decode("trace 1 ok - -\n").unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");
    }

    #[test]
    fn decode_errors_are_typed() {
        let cases: Vec<(&str, DecodeErrorKind)> = vec![
            ("method 0", DecodeErrorKind::MissingField("name")),
            ("method x Foo", DecodeErrorKind::InvalidNumber("method id")),
            (
                "method 3 Foo",
                DecodeErrorKind::MisnumberedDeclaration {
                    expected: 0,
                    found: 3,
                },
            ),
            ("trace 1 maybe - -", DecodeErrorKind::InvalidStatus),
            ("trace 1 fail Boom 0", DecodeErrorKind::UnknownMethod(0)),
            ("wat 1 2", DecodeErrorKind::UnknownRecord),
            ("endtrace 5 extra", DecodeErrorKind::TrailingTokens),
            (
                "endtrace 5",
                DecodeErrorKind::UnexpectedRecord("endtrace without trace"),
            ),
        ];
        for (input, kind) in cases {
            let e = decode(input).unwrap_err();
            assert_eq!(e.kind, kind, "for input {input:?}");
            assert_eq!(e.line, 1);
        }
        let long = "method 0 M\ntrace 1 ok - -\nevent 0 0 0 0 - - 2\nendtrace 1\n";
        let e = decode(long).unwrap_err();
        assert_eq!(e.kind, DecodeErrorKind::InvalidFlag("caught"));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn decode_rejects_undeclared_references() {
        let text = "method 0 M\ntrace 1 ok - -\nevent 7 0 0 0 - - 0\nendtrace 1\n";
        assert_eq!(
            decode(text).unwrap_err().kind,
            DecodeErrorKind::UnknownMethod(7)
        );
        let text = "method 0 M\ntrace 1 ok - -\nevent 0 0 0 0 - - 0\naccess 2 R 0 0\nendtrace 1\n";
        assert_eq!(
            decode(text).unwrap_err().kind,
            DecodeErrorKind::UnknownObject(2)
        );
    }

    #[test]
    fn consistent_redeclaration_is_accepted() {
        // Two concatenated segments from the same source repeat the header.
        let seg = encode(&sample());
        let doubled = format!("{seg}{seg}");
        let set = decode(&doubled).expect("consistent redeclaration");
        assert_eq!(set.traces.len(), 2);
        assert_eq!(set.methods.len(), 2);
    }

    #[test]
    fn decode_skips_comments_and_blanks() {
        let set = sample();
        let mut text = String::from("# leading comment\n\n");
        text.push_str(&encode(&set));
        assert!(decode(&text).is_ok());
    }

    #[test]
    fn encode_to_buf_matches_encode() {
        let set = sample();
        let mut buf = Vec::new();
        encode_to_buf(&set, &mut buf);
        assert_eq!(String::from_utf8(buf).unwrap(), encode(&set));
    }
}
