//! Time in the simulated runtime.
//!
//! The VM keeps a global virtual clock in abstract *ticks*; every executed
//! operation advances it, and all trace timestamps come from it, so temporal
//! precedence between events is exact within a run. Section 4 of the paper
//! notes that wall clocks can mis-order events across cores; the VM's single
//! global clock plays the role of a perfectly synchronized clock, and
//! [`LamportClock`] is provided for consumers that want logical ordering when
//! stitching traces from multiple trace sources.

use serde::{Deserialize, Serialize};

/// A timestamp in virtual ticks.
pub type Time = u64;

/// A classic Lamport logical clock (Lamport 1978), cited by the paper as the
/// remedy when physical clocks are too coarse or unsynchronized.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LamportClock {
    counter: u64,
}

impl LamportClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        LamportClock { counter: 0 }
    }

    /// A local event: increments and returns the new timestamp.
    pub fn tick(&mut self) -> u64 {
        self.counter += 1;
        self.counter
    }

    /// Observes a timestamp received from another process: the clock jumps
    /// past it, preserving the happened-before order.
    pub fn observe(&mut self, other: u64) -> u64 {
        self.counter = self.counter.max(other) + 1;
        self.counter
    }

    /// Current value without advancing.
    pub fn now(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_monotonic() {
        let mut c = LamportClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
    }

    #[test]
    fn observe_preserves_happened_before() {
        let mut sender = LamportClock::new();
        let mut receiver = LamportClock::new();
        for _ in 0..5 {
            sender.tick();
        }
        let sent = sender.tick(); // 6
        let received = receiver.observe(sent);
        assert!(received > sent, "receive must be ordered after send");
        // A later local event on the receiver stays ahead.
        assert!(receiver.tick() > sent);
    }

    #[test]
    fn observe_of_stale_timestamp_still_advances() {
        let mut c = LamportClock::new();
        c.tick();
        c.tick();
        let before = c.now();
        let after = c.observe(1);
        assert!(after > before);
    }
}
