//! Execution traces: the data AID actually consumes.
//!
//! AID never looks at an application's source. Instrumentation (here: the
//! `aid-sim` virtual machine, or the `aid-sim::live` real-thread harness)
//! emits an execution trace per run: one [`MethodEvent`] per dynamic method
//! execution, carrying the thread id, start/end timestamps, the shared
//! objects it read or wrote, its return value, and whether it threw. The
//! appendix of the paper ("Program Instrumentation") motivates this
//! separation: predicates are designed *after* trace collection, offline.
//!
//! A [`TraceSet`] bundles many labeled runs of the same program with shared
//! id arenas, so that `method #3` means the same method in every run.

pub mod clock;
pub mod codec;
pub mod event;
pub mod trace;

pub use clock::{LamportClock, Time};
pub use event::{
    AccessEvent, AccessKind, ChannelId, ChannelTag, FailureSignature, MethodEvent, MethodId,
    MethodTag, MsgEvent, MsgKind, ObjectId, ObjectTag, Outcome, ThreadId, ThreadTag,
};
pub use trace::{Trace, TraceSet};
