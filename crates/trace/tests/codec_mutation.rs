//! Adversarial property tests for the line codec's decoder: arbitrary
//! mutations of a valid encoded log (truncation, line deletion/duplication/
//! reordering, byte corruption, garbage injection) must never panic, and
//! every rejection must carry a sensible typed [`codec::DecodeErrorKind`]
//! anchored to a real line of the input.

use aid_trace::{
    codec, AccessEvent, AccessKind, FailureSignature, MethodEvent, MethodId, MsgEvent, MsgKind,
    Outcome, ThreadId, Trace, TraceSet,
};
use proptest::prelude::*;

/// A small but feature-complete corpus: two methods, one object, one
/// channel, one successful and one failed trace, with accesses, returns,
/// exceptions, and a full send/deliver/recv message lifecycle.
fn corpus() -> String {
    let mut set = TraceSet::new();
    let m0 = set.method("TryGetValue");
    let m1 = set.method("GetOrAdd");
    let o = set.object("_nextSlot");
    let ch = set.channel("requests");
    let msg = |kind, at| MsgEvent {
        channel: ch,
        kind,
        seq: 0,
        value: 42,
        sent: 2,
        at,
        thread: ThreadId::from_raw(0),
        dup: false,
    };
    let ev = |m: MethodId, th: u32, start, end, ret: Option<i64>, exc: Option<&str>| MethodEvent {
        method: m,
        instance: 0,
        thread: ThreadId::from_raw(th),
        start,
        end,
        accesses: vec![AccessEvent {
            object: o,
            kind: if th == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            },
            at: start + 1,
            locked: false,
        }],
        returned: ret,
        exception: exc.map(str::to_string),
        caught: false,
    };
    let mut ok = Trace {
        seed: 1,
        events: vec![
            ev(m0, 0, 0, 10, Some(-1), None),
            ev(m1, 1, 5, 20, None, None),
        ],
        msgs: vec![
            msg(MsgKind::Send, 2),
            msg(MsgKind::Deliver, 6),
            msg(MsgKind::Recv, 8),
        ],
        outcome: Outcome::Success,
        duration: 25,
    };
    ok.normalize();
    set.push(ok);
    let mut bad = Trace {
        seed: 2,
        events: vec![
            ev(m0, 0, 0, 10, Some(3), None),
            ev(m1, 1, 4, 30, None, Some("IndexOutOfRange")),
        ],
        msgs: vec![msg(MsgKind::Send, 3), msg(MsgKind::Drop, 3)],
        outcome: Outcome::Failure(FailureSignature {
            kind: "IndexOutOfRange".into(),
            method: m1,
        }),
        duration: 40,
    };
    bad.normalize();
    set.push(bad);
    codec::encode(&set)
}

/// Shared postcondition: decoding must terminate without panicking, and any
/// error must classify itself with a line number inside the input.
fn assert_well_behaved(mutated: &str) {
    match codec::decode(mutated) {
        Ok(set) => {
            // A surviving set must re-encode cleanly (names stay
            // whitespace-free under these mutation operators).
            let _ = codec::encode(&set);
        }
        Err(e) => {
            let lines = mutated.lines().count();
            assert!(
                e.line <= lines.max(1),
                "error line {} beyond input ({} lines)",
                e.line,
                lines
            );
            assert!(!e.message.is_empty());
            assert!(e.to_string().contains("line"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Truncating the stream anywhere is either still decodable (cut at a
    /// record boundary) or fails with a structural error — never a panic,
    /// and never a misclassified "bad number"-style error for a cut that
    /// removed whole lines cleanly.
    #[test]
    fn prop_truncation_is_classified(cut in 0usize..4096) {
        let text = corpus();
        let cut = cut % (text.len() + 1);
        let mutated = &text[..cut];
        assert_well_behaved(mutated);
        if let Err(e) = codec::decode(mutated) {
            use codec::DecodeErrorKind as K;
            assert!(
                matches!(
                    e.kind,
                    K::UnterminatedTrace
                        | K::MissingField(_)
                        | K::InvalidNumber(_)
                        | K::InvalidFlag(_)
                        | K::InvalidStatus
                        | K::InvalidAccessKind
                        | K::InvalidMsgKind
                        | K::UnknownRecord
                ),
                "truncation at {cut} produced unexpected kind {:?}",
                e.kind
            );
        }
    }

    /// Deleting, duplicating, or swapping whole lines never panics; the
    /// decoder either accepts the result or reports a typed structural
    /// error (dangling references, misnumbered declarations, orphaned
    /// records, unterminated traces).
    #[test]
    fn prop_line_shuffles_are_classified(op in 0u8..3, a in 0usize..64, b in 0usize..64) {
        let text = corpus();
        let lines: Vec<&str> = text.lines().collect();
        let a = a % lines.len();
        let b = b % lines.len();
        let mutated: Vec<&str> = match op {
            0 => lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != a)
                .map(|(_, l)| *l)
                .collect(),
            1 => {
                let mut v = lines.clone();
                v.insert(a, lines[a]);
                v
            }
            _ => {
                let mut v = lines.clone();
                v.swap(a, b);
                v
            }
        };
        let mutated = mutated.join("\n");
        assert_well_behaved(&mutated);
    }

    /// Corrupting a single byte (to an ASCII letter, digit, or dash) never
    /// panics and never reports a line outside the input; UTF-8 handling is
    /// untouched because the replacement is ASCII.
    #[test]
    fn prop_byte_corruption_is_classified(pos in 0usize..4096, repl in 0usize..3) {
        let text = corpus();
        let pos = pos % text.len();
        let mut bytes = text.into_bytes();
        bytes[pos] = b"x9-"[repl];
        let mutated = String::from_utf8(bytes).expect("ASCII replacement");
        assert_well_behaved(&mutated);
        if let Err(e) = codec::decode(&mutated) {
            assert_ne!(
                e.kind,
                codec::DecodeErrorKind::InvalidUtf8,
                "ASCII corruption cannot produce UTF-8 errors"
            );
        }
    }

    /// Injecting a garbage line is rejected as exactly `UnknownRecord` at
    /// exactly the injected line (or tolerated when it parses as a comment).
    #[test]
    fn prop_garbage_line_is_pinpointed(at in 0usize..64, garbage in 0usize..3) {
        let text = corpus();
        let payload = ["%% not a record", "record of no kind", "\u{1F980} crab"][garbage];
        let mut lines: Vec<&str> = text.lines().collect();
        let at = at % (lines.len() + 1);
        lines.insert(at, payload);
        let mutated = lines.join("\n");
        match codec::decode(&mutated) {
            Ok(_) => prop_assert!(false, "garbage line must be rejected"),
            Err(e) => {
                prop_assert_eq!(e.kind, codec::DecodeErrorKind::UnknownRecord);
                prop_assert_eq!(e.line, at + 1);
            }
        }
    }
}
