//! Property tests: the line codec is the identity on every well-formed
//! `TraceSet`, including empty sets, empty traces, and traces carrying
//! intervention artifacts (locked accesses from `SerializeMethods`, caught
//! exceptions from `CatchException`, forced return values from
//! `ForceReturn`).

use aid_trace::{
    codec, AccessEvent, AccessKind, ChannelId, FailureSignature, MethodEvent, MethodId, MsgEvent,
    MsgKind, ObjectId, Outcome, ThreadId, Trace, TraceSet,
};
use proptest::prelude::*;

/// Exception/failure kinds the generator draws from (whitespace-free, as
/// the codec requires of all names).
const KINDS: [&str; 3] = ["IndexOutOfRange", "Deadlock", "Boom"];

/// Raw sampled access: (object slot, is-write, time, locked).
fn access_strategy() -> impl Strategy<Value = (usize, bool, u64, bool)> {
    (0usize..8, any::<bool>(), 0u64..1_000, any::<bool>())
}

type RawEvent = (
    // (method slot, thread, start, duration)
    (usize, u32, u64, u64),
    // (has return value, return value) — forced returns are negative too
    (bool, i64),
    // (exception kind slot: 0 = none, caught)
    (usize, bool),
    Vec<(usize, bool, u64, bool)>,
);

fn event_strategy() -> impl Strategy<Value = RawEvent> {
    (
        (0usize..8, 0u32..4, 0u64..1_000, 0u64..60),
        (any::<bool>(), -100i64..1_000),
        (0usize..3, any::<bool>()),
        proptest::collection::vec(access_strategy(), 0..4),
    )
}

/// Raw sampled message: ((channel slot, kind, seq), (value, sent, at, dup)).
type RawMsg = ((usize, usize, u32), (i64, u64, u64, bool));

fn msg_strategy() -> impl Strategy<Value = RawMsg> {
    (
        (0usize..4, 0usize..4, 0u32..16),
        (-100i64..1_000, 0u64..500, 0u64..1_000, any::<bool>()),
    )
}

/// Raw sampled trace: (seed, failed, failure kind slot, events, msgs). An
/// empty event list models a run that crashed before instrumentation saw a
/// call.
type RawTrace = (u64, bool, usize, Vec<RawEvent>, Vec<RawMsg>);

fn trace_strategy() -> impl Strategy<Value = Vec<RawTrace>> {
    proptest::collection::vec(
        (
            0u64..1_000_000,
            any::<bool>(),
            0usize..KINDS.len(),
            proptest::collection::vec(event_strategy(), 0..6),
            proptest::collection::vec(msg_strategy(), 0..6),
        ),
        0..5,
    )
}

/// Builds a well-formed `TraceSet` from sampled raw data: ids are taken
/// modulo the interned counts so every reference resolves.
fn build_set(
    method_count: usize,
    object_count: usize,
    channel_count: usize,
    raw: Vec<RawTrace>,
) -> TraceSet {
    let mut set = TraceSet::new();
    let methods: Vec<MethodId> = (0..method_count)
        .map(|i| set.method(&format!("m{i}")))
        .collect();
    let objects: Vec<ObjectId> = (0..object_count)
        .map(|i| set.object(&format!("obj{i}")))
        .collect();
    let channels: Vec<ChannelId> = (0..channel_count)
        .map(|i| set.channel(&format!("chan{i}")))
        .collect();
    for (seed, failed, kind_slot, raw_events, raw_msgs) in raw {
        let mut events = Vec::new();
        for ((m, thread, start, dur), (has_ret, ret), (exc_slot, caught), accesses) in raw_events {
            let method = methods[m % methods.len()];
            events.push(MethodEvent {
                method,
                instance: 0, // recomputed by normalize()
                thread: ThreadId::from_raw(thread),
                start,
                end: start + dur,
                accesses: accesses
                    .into_iter()
                    .filter(|_| !objects.is_empty())
                    .map(|(o, write, at, locked)| AccessEvent {
                        object: objects[o % objects.len()],
                        kind: if write {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                        at,
                        locked,
                    })
                    .collect(),
                returned: has_ret.then_some(ret),
                exception: (exc_slot > 0).then(|| KINDS[exc_slot - 1].to_string()),
                caught,
            });
        }
        let msgs: Vec<MsgEvent> = raw_msgs
            .into_iter()
            .filter(|_| !channels.is_empty())
            .enumerate()
            // `at + i*1009` keeps timestamps distinct across sampled msgs
            // (at < 1000), so the normalize() sort key is a total order the
            // way it is for real machine output.
            .map(|(i, ((ch, kind, seq), (value, sent, at, dup)))| MsgEvent {
                channel: channels[ch % channels.len()],
                kind: [
                    MsgKind::Send,
                    MsgKind::Deliver,
                    MsgKind::Recv,
                    MsgKind::Drop,
                ][kind],
                seq,
                value,
                sent,
                at: at + i as u64 * 1009,
                thread: ThreadId::from_raw(seq % 4),
                dup,
            })
            .collect();
        let max_end = events.iter().map(|e| e.end).max().unwrap_or(0);
        let mut trace = Trace {
            seed,
            events,
            msgs,
            outcome: if failed {
                Outcome::Failure(FailureSignature {
                    kind: KINDS[kind_slot].to_string(),
                    method: methods[kind_slot % methods.len()],
                })
            } else {
                Outcome::Success
            },
            duration: max_end + 1,
        };
        trace.normalize();
        set.push(trace);
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity on traces, methods, and objects.
    #[test]
    fn prop_encode_decode_is_identity(
        method_count in 1usize..=4,
        object_count in 0usize..=3,
        channel_count in 0usize..=2,
        raw in trace_strategy(),
    ) {
        let set = build_set(method_count, object_count, channel_count, raw);
        let text = codec::encode(&set);
        let back = codec::decode(&text)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back.methods.len(), set.methods.len());
        prop_assert_eq!(back.objects.len(), set.objects.len());
        prop_assert_eq!(back.channels.len(), set.channels.len());
        prop_assert_eq!(back.traces.len(), set.traces.len());
        for (a, b) in set.traces.iter().zip(&back.traces) {
            prop_assert_eq!(a, b);
        }
    }

    /// Re-encoding the decoded set reproduces the byte stream: the textual
    /// form itself is canonical, so logs survive arbitrarily many
    /// round-trips unchanged.
    #[test]
    fn prop_reencode_is_canonical(
        method_count in 1usize..=3,
        object_count in 0usize..=2,
        channel_count in 0usize..=2,
        raw in trace_strategy(),
    ) {
        let set = build_set(method_count, object_count, channel_count, raw);
        let text = codec::encode(&set);
        let back = codec::decode(&text)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(codec::encode(&back), text);
    }
}
