//! Byte-framing fuzz for `StreamDecoder` resynchronization: the decoder's
//! quarantine-and-continue behavior must be a function of the *bytes*, not
//! of how they arrive. Every chunking of the same corrupted stream —
//! including 1-byte chunks that split every record mid-line and mid-field —
//! must yield identical surviving traces, identical quarantine entries, and
//! identical counters.

use aid_store::StreamDecoder;
use aid_trace::{
    codec, AccessEvent, AccessKind, FailureSignature, MethodEvent, MsgEvent, MsgKind, Outcome,
    ThreadId, Trace, TraceSet,
};

fn sample_set(traces: usize) -> TraceSet {
    let mut set = TraceSet::new();
    let m0 = set.method("Fetch");
    let m1 = set.method("Commit");
    let o = set.object("cache");
    for seed in 0..traces as u64 {
        let failed = seed % 3 == 1;
        let mut t = Trace {
            seed,
            events: vec![
                MethodEvent {
                    method: m0,
                    instance: 0,
                    thread: ThreadId::from_raw(0),
                    start: 0,
                    end: 10 + seed,
                    accesses: vec![AccessEvent {
                        object: o,
                        kind: AccessKind::Read,
                        at: 5,
                        locked: seed % 2 == 0,
                    }],
                    returned: Some(seed as i64 - 3),
                    exception: None,
                    caught: false,
                },
                MethodEvent {
                    method: m1,
                    instance: 0,
                    thread: ThreadId::from_raw(1),
                    start: 20,
                    end: 31 + seed,
                    accesses: vec![],
                    returned: None,
                    exception: failed.then(|| "Boom".to_string()),
                    caught: false,
                },
            ],
            msgs: vec![],
            outcome: if failed {
                Outcome::Failure(FailureSignature {
                    kind: "Boom".into(),
                    method: m1,
                })
            } else {
                Outcome::Success
            },
            duration: 40 + seed,
        };
        t.normalize();
        set.push(t);
    }
    set
}

/// Decodes `bytes` under the given chunking and returns
/// (traces, quarantine `(line, rendered error)` pairs, stats).
fn decode_chunked(
    bytes: &[u8],
    chunk: usize,
) -> (Vec<Trace>, Vec<(usize, String)>, aid_store::IngestStats) {
    let mut dec = StreamDecoder::new();
    for piece in bytes.chunks(chunk) {
        dec.push_bytes(piece);
    }
    dec.finish();
    let traces = dec.drain();
    let quarantine = dec
        .quarantine()
        .iter()
        .map(|q| (q.line, q.error.to_string()))
        .collect();
    (traces, quarantine, dec.stats())
}

/// Corrupts selected lines of an encoded stream: mangles a numeric field
/// mid-record (`event` line), injects garbage, and drops an `endtrace`.
fn corrupt(text: &str) -> String {
    let mut event_seen = 0usize;
    let mut endtrace_seen = 0usize;
    let mut trace_seen = 0usize;
    let mut out = Vec::new();
    for line in text.lines() {
        if line.starts_with("trace") {
            trace_seen += 1;
            if trace_seen == 3 {
                // An isolated bad line *between* traces: quarantined alone,
                // costing no neighbor.
                out.push("garbage not a record".to_string());
            }
        }
        if line.starts_with("event") {
            event_seen += 1;
            if event_seen == 4 {
                // Mid-field corruption: a number becomes a partial token,
                // poisoning the open trace.
                out.push(line.replacen(' ', " 12x4 ", 1));
                continue;
            }
        }
        if line.starts_with("endtrace") {
            endtrace_seen += 1;
            if endtrace_seen == 5 {
                // A trace left open: the next `trace` header must resync.
                continue;
            }
        }
        out.push(line.to_string());
    }
    out.join("\n") + "\n"
}

#[test]
fn every_chunking_of_a_clean_stream_agrees() {
    let set = sample_set(8);
    let text = codec::encode(&set);
    let reference = decode_chunked(text.as_bytes(), usize::MAX);
    assert_eq!(reference.0, set.traces);
    assert!(reference.1.is_empty());
    for chunk in [1usize, 2, 3, 5, 16, 61, 255, 4096] {
        let got = decode_chunked(text.as_bytes(), chunk);
        assert_eq!(got.0, reference.0, "traces @ chunk {chunk}");
        assert_eq!(got.1, reference.1, "quarantine @ chunk {chunk}");
        assert_eq!(got.2, reference.2, "stats @ chunk {chunk}");
    }
}

#[test]
fn every_chunking_of_a_corrupted_stream_agrees() {
    let set = sample_set(10);
    let text = corrupt(&codec::encode(&set));
    let reference = decode_chunked(text.as_bytes(), usize::MAX);

    // The corruption costs exactly the poisoned traces: the mid-field
    // mangle kills one trace, the dropped endtrace kills another (its
    // events are absorbed into the quarantine at the next header).
    assert_eq!(reference.0.len(), set.traces.len() - 2);
    assert_eq!(
        reference.1.len(),
        3,
        "mangle + garbage + open trace each quarantine once: {:?}",
        reference.1
    );
    assert!(reference.2.skipped_lines > 0, "resync must skip lines");
    assert_eq!(reference.2.traces as usize, reference.0.len());
    assert_eq!(reference.2.quarantined as usize, reference.1.len());

    // Framing independence: byte-at-a-time through page-sized chunks, and
    // a sweep of coprime sizes so every record is eventually split at every
    // offset — mid-line, mid-field, mid-number.
    for chunk in [1usize, 2, 3, 5, 7, 11, 13, 17, 31, 64, 127, 1021, 8192] {
        let got = decode_chunked(text.as_bytes(), chunk);
        assert_eq!(got.0, reference.0, "traces @ chunk {chunk}");
        assert_eq!(got.1, reference.1, "quarantine @ chunk {chunk}");
        assert_eq!(got.2, reference.2, "stats @ chunk {chunk}");
    }

    // The surviving traces are the untouched originals, byte for byte.
    let survivors: Vec<&Trace> = set
        .traces
        .iter()
        .filter(|t| reference.0.contains(t))
        .collect();
    assert_eq!(survivors.len(), reference.0.len());
}

/// A message-passing corpus: every trace carries send/deliver/recv records
/// on two declared channels, alongside ordinary events.
fn channel_set(traces: usize) -> TraceSet {
    let mut set = TraceSet::new();
    let m0 = set.method("Producer");
    let o = set.object("chan:req");
    let req = set.channel("req");
    let ack = set.channel("ack");
    for seed in 0..traces as u64 {
        let mut t = Trace {
            seed,
            events: vec![MethodEvent {
                method: m0,
                instance: 0,
                thread: ThreadId::from_raw(0),
                start: 0,
                end: 10 + seed,
                accesses: vec![AccessEvent {
                    object: o,
                    kind: AccessKind::Write,
                    at: 2,
                    locked: false,
                }],
                returned: None,
                exception: None,
                caught: false,
            }],
            msgs: vec![
                MsgEvent {
                    channel: req,
                    kind: MsgKind::Send,
                    seq: 0,
                    value: seed as i64,
                    sent: 2,
                    at: 2,
                    thread: ThreadId::from_raw(0),
                    dup: false,
                },
                MsgEvent {
                    channel: req,
                    kind: MsgKind::Deliver,
                    seq: 0,
                    value: seed as i64,
                    sent: 2,
                    at: 4 + seed,
                    thread: ThreadId::from_raw(0),
                    dup: false,
                },
                MsgEvent {
                    channel: ack,
                    kind: MsgKind::Recv,
                    seq: 0,
                    value: 1,
                    sent: 5,
                    at: 7 + seed,
                    thread: ThreadId::from_raw(1),
                    dup: seed % 2 == 1,
                },
            ],
            outcome: Outcome::Success,
            duration: 40 + seed,
        };
        t.normalize();
        set.push(t);
    }
    set
}

/// Corrupts msg records three ways: an invalid lifecycle kind letter, a
/// reference to an undeclared channel, and a mid-number mangle — each
/// poisoning exactly the trace it sits in.
fn corrupt_msgs(text: &str) -> String {
    let mut msg_seen = 0usize;
    let mut out = Vec::new();
    for line in text.lines() {
        if line.starts_with("msg") {
            msg_seen += 1;
            match msg_seen {
                2 => {
                    // Invalid kind letter (trace #1 poisoned).
                    out.push(line.replacen(" D ", " Q ", 1));
                    continue;
                }
                4 => {
                    // Undeclared channel id (trace #2 poisoned).
                    out.push(format!("msg 9{}", line.strip_prefix("msg 0").unwrap()));
                    continue;
                }
                8 => {
                    // Mid-number mangle in the seq field (trace #3 poisoned).
                    out.push(line.replacen(" 0 ", " 0x0 ", 1));
                    continue;
                }
                _ => {}
            }
        }
        out.push(line.to_string());
    }
    out.join("\n") + "\n"
}

/// Malformed channel records must quarantine with exact counts under every
/// chunk framing — never panic, never misattribute damage to a neighboring
/// trace.
#[test]
fn every_chunking_of_corrupted_channel_records_agrees() {
    let set = channel_set(6);
    let text = corrupt_msgs(&codec::encode(&set));
    let reference = decode_chunked(text.as_bytes(), usize::MAX);

    // Exactly the three poisoned traces die; the other three survive
    // byte-identical, message payloads included.
    assert_eq!(reference.0.len(), set.traces.len() - 3, "{:?}", reference.1);
    assert_eq!(
        reference.1.len(),
        3,
        "each corrupted msg line quarantines exactly once: {:?}",
        reference.1
    );
    assert!(
        reference.1[0].1.contains("msg kind"),
        "first entry is the invalid kind: {:?}",
        reference.1
    );
    assert!(
        reference.1[1].1.contains("channel"),
        "second entry is the unknown channel: {:?}",
        reference.1
    );
    assert_eq!(reference.2.traces as usize, reference.0.len());
    assert_eq!(reference.2.quarantined as usize, reference.1.len());
    assert!(reference.2.skipped_lines > 0, "resync must skip lines");
    let survivors: Vec<&Trace> = set
        .traces
        .iter()
        .filter(|t| reference.0.contains(t))
        .collect();
    assert_eq!(survivors.len(), reference.0.len());
    assert!(
        survivors.iter().all(|t| !t.msgs.is_empty()),
        "surviving traces keep their message events"
    );

    // Framing independence across coprime chunk sizes: every msg record is
    // eventually split mid-line, mid-field, and mid-number.
    for chunk in [1usize, 2, 3, 5, 7, 11, 13, 17, 31, 64, 127, 1021, 8192] {
        let got = decode_chunked(text.as_bytes(), chunk);
        assert_eq!(got.0, reference.0, "traces @ chunk {chunk}");
        assert_eq!(got.1, reference.1, "quarantine @ chunk {chunk}");
        assert_eq!(got.2, reference.2, "stats @ chunk {chunk}");
    }
}

#[test]
fn clean_channel_stream_roundtrips_under_all_framings() {
    let set = channel_set(5);
    let text = codec::encode(&set);
    let reference = decode_chunked(text.as_bytes(), usize::MAX);
    assert_eq!(reference.0, set.traces);
    assert!(reference.1.is_empty());
    for chunk in [1usize, 3, 7, 64, 4096] {
        let got = decode_chunked(text.as_bytes(), chunk);
        assert_eq!(got.0, reference.0, "traces @ chunk {chunk}");
        assert_eq!(got.1, reference.1, "quarantine @ chunk {chunk}");
        assert_eq!(got.2, reference.2, "stats @ chunk {chunk}");
    }
}

#[test]
fn split_utf8_and_trailing_partial_lines_are_framing_safe() {
    let set = sample_set(3);
    let mut bytes = codec::encode(&set).into_bytes();
    // A multi-byte UTF-8 comment that every 1-byte chunking must split.
    bytes.extend_from_slice("# trailing comment: ✓🚀\n".as_bytes());
    // And a final record with no terminating newline.
    bytes.extend_from_slice(b"garbage-tail");
    let reference = decode_chunked(&bytes, usize::MAX);
    assert_eq!(reference.0, set.traces);
    assert_eq!(reference.1.len(), 1, "only the tail quarantines");
    for chunk in [1usize, 2, 3, 4, 5] {
        let got = decode_chunked(&bytes, chunk);
        assert_eq!(got.0, reference.0, "traces @ chunk {chunk}");
        assert_eq!(got.1, reference.1, "quarantine @ chunk {chunk}");
        assert_eq!(got.2, reference.2, "stats @ chunk {chunk}");
    }
}
