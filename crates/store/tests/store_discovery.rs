//! Acceptance: an engine discovery session whose observation window comes
//! from a store snapshot returns the **same** `DiscoveryResult` as one
//! sourced from the equivalent in-memory `TraceSet` analysis — for the
//! streamed-bytes ingestion path and the live-append path alike.

use aid_cases::{collect_logs_sized, npgsql};
use aid_core::{analyze, Strategy};
use aid_engine::{DiscoveryJob, Engine};
use aid_sim::Simulator;
use aid_store::{StoreConfig, TraceStore};
use aid_trace::codec;
use std::sync::Arc;

#[test]
fn snapshot_sourced_discovery_matches_traceset_sourced() {
    let case = npgsql::case();
    let set = collect_logs_sized(&case, 25, 25);
    let sim = Arc::new(Simulator::new(case.program.clone()));

    // Path A: classic in-memory batch analysis.
    let batch = analyze(&set, &case.config);

    // Path B: the same corpus streamed into a store as encoded bytes,
    // with the engine's own pool fanning the ingestion work.
    let engine = Engine::with_workers(2);
    let mut store = TraceStore::with_pool(
        StoreConfig {
            extraction: case.config.clone(),
            ..StoreConfig::default()
        },
        engine.pool(),
    );
    let encoded = codec::encode(&set);
    for chunk in encoded.as_bytes().chunks(4096) {
        store.ingest_bytes(chunk);
    }
    store.finish_ingest();
    assert!(store.quarantine().is_empty());
    store.refresh().expect("corpus has failures");
    let snapshot = store.snapshot().expect("analysis published");
    assert_eq!(snapshot.traces, set.traces.len());

    // Same engine, same strategy/seed/budget — only the observation-window
    // source differs.
    for strategy in [Strategy::Aid, Strategy::Tagt] {
        let from_store = snapshot.discovery_job(
            "from-store",
            Arc::clone(&sim),
            case.runs_per_round,
            1_000_000,
            strategy,
            11,
        );
        let from_set = DiscoveryJob::sim(
            "from-set",
            Arc::new(batch.dag.clone()),
            Arc::clone(&sim),
            Arc::new(batch.extraction.catalog.clone()),
            batch.extraction.failure,
            case.runs_per_round,
            1_000_000,
            strategy,
            11,
        );
        let results = engine.run_all(vec![from_store, from_set]);
        assert_eq!(
            results[0].result, results[1].result,
            "{strategy:?}: store-sourced and set-sourced sessions diverged"
        );
        assert!(results[0].result.root_cause().is_some());
    }

    // Path C: live appends (simulator → store, no codec round-trip) produce
    // the same snapshot inputs as well.
    let mut live = TraceStore::new(StoreConfig {
        extraction: case.config.clone(),
        ..StoreConfig::default()
    });
    let names = sim.trace_set_skeleton();
    for t in &set.traces {
        live.append_run(&names, t.clone());
    }
    live.refresh().expect("failures present");
    let live_snap = live.snapshot().unwrap();
    assert_eq!(live_snap.dag.as_ref(), &batch.dag);
    assert_eq!(live_snap.failure, batch.extraction.failure);
    assert_eq!(live_snap.signature, batch.extraction.signature);
}
