//! Property test: `ColumnStore` losslessly re-encodes *arbitrary* trace
//! sets — not just the six case corpora the equivalence suite replays.
//! Columnarization (interned names, packed flags, per-field columns,
//! sharding) must be invisible: re-materializing the store and encoding it
//! reproduces the original byte stream exactly, for any well-formed input
//! and any shard count, with and without batch splits.

use aid_store::{ColumnStore, StoreConfig, TraceStore};
use aid_trace::{
    codec, AccessEvent, AccessKind, FailureSignature, MethodEvent, MethodId, ObjectId, Outcome,
    ThreadId, Trace, TraceSet,
};
use proptest::prelude::*;

const KINDS: [&str; 3] = ["IndexOutOfRange", "ObjectDisposed", "Timeout"];

type RawEvent = (
    // (method slot, thread, start, duration)
    (usize, u32, u64, u64),
    // (has return value, return value)
    (bool, i64),
    // (exception kind slot: 0 = none, caught)
    (usize, bool),
    // accesses: (object slot, is-write, time, locked)
    Vec<(usize, bool, u64, bool)>,
);

fn event_strategy() -> impl Strategy<Value = RawEvent> {
    (
        (0usize..8, 0u32..4, 0u64..900, 0u64..70),
        (any::<bool>(), -50i64..500),
        (0usize..=KINDS.len(), any::<bool>()),
        proptest::collection::vec((0usize..6, any::<bool>(), 0u64..900, any::<bool>()), 0..4),
    )
}

type RawTrace = (u64, bool, usize, Vec<RawEvent>);

fn set_strategy() -> impl Strategy<Value = (usize, usize, Vec<RawTrace>)> {
    (
        1usize..=5,
        0usize..=4,
        proptest::collection::vec(
            (
                0u64..1_000_000,
                any::<bool>(),
                0usize..KINDS.len(),
                proptest::collection::vec(event_strategy(), 0..5),
            ),
            0..6,
        ),
    )
}

fn build_set(method_count: usize, object_count: usize, raw: Vec<RawTrace>) -> TraceSet {
    let mut set = TraceSet::new();
    let methods: Vec<MethodId> = (0..method_count)
        .map(|i| set.method(&format!("m{i}")))
        .collect();
    let objects: Vec<ObjectId> = (0..object_count)
        .map(|i| set.object(&format!("obj{i}")))
        .collect();
    for (seed, failed, kind_slot, raw_events) in raw {
        let mut events = Vec::new();
        for ((m, thread, start, dur), (has_ret, ret), (exc_slot, caught), accesses) in raw_events {
            events.push(MethodEvent {
                method: methods[m % methods.len()],
                instance: 0, // recomputed by normalize()
                thread: ThreadId::from_raw(thread),
                start,
                end: start + dur,
                accesses: accesses
                    .into_iter()
                    .filter(|_| !objects.is_empty())
                    .map(|(o, write, at, locked)| AccessEvent {
                        object: objects[o % objects.len()],
                        kind: if write {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                        at,
                        locked,
                    })
                    .collect(),
                returned: has_ret.then_some(ret),
                exception: (exc_slot > 0).then(|| KINDS[exc_slot - 1].to_string()),
                caught,
            });
        }
        let max_end = events.iter().map(|e| e.end).max().unwrap_or(0);
        let mut trace = Trace {
            seed,
            events,
            msgs: vec![],
            outcome: if failed {
                Outcome::Failure(FailureSignature {
                    kind: KINDS[kind_slot].to_string(),
                    method: methods[kind_slot % methods.len()],
                })
            } else {
                Outcome::Success
            },
            duration: max_end + 1,
        };
        trace.normalize();
        set.push(trace);
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Store → re-materialize → encode reproduces the original bytes for
    /// any shard count.
    #[test]
    fn prop_column_store_reencodes_arbitrary_sets(
        raw_set in set_strategy(),
        shards in 1usize..=5,
    ) {
        let (method_count, object_count, raw) = raw_set;
        let set = build_set(method_count, object_count, raw);
        let text = codec::encode(&set);
        let mut columns = ColumnStore::new(shards);
        let (m, o, c) = columns.remap_tables(&set.methods, &set.objects, &set.channels);
        columns.append_batch(set.traces.clone(), &m, &o, &c, None);
        prop_assert_eq!(columns.len(), set.traces.len());
        let back = columns.to_trace_set();
        prop_assert_eq!(&back.traces, &set.traces);
        prop_assert_eq!(codec::encode(&back), text);
        // Per-trace re-materialization agrees with the bulk path.
        for (gid, t) in set.traces.iter().enumerate() {
            prop_assert_eq!(&columns.trace(gid), t);
        }
    }

    /// Splitting the same set across many appends (the streaming shape)
    /// changes nothing about the stored bytes.
    #[test]
    fn prop_split_appends_match_bulk_append(
        raw_set in set_strategy(),
        split in 1usize..=4,
    ) {
        let (method_count, object_count, raw) = raw_set;
        let set = build_set(method_count, object_count, raw);
        // Name arenas travel with appends, so an empty set interns nothing
        // piecewise but everything in bulk; the comparison needs traffic.
        prop_assume!(!set.traces.is_empty());
        let mut bulk = TraceStore::new(StoreConfig::default());
        bulk.append_set(&set);
        let mut piecewise = TraceStore::new(StoreConfig::default());
        for chunk in set.traces.chunks(split) {
            let mut part = TraceSet {
                methods: set.methods.clone(),
                objects: set.objects.clone(),
                channels: set.channels.clone(),
                traces: chunk.to_vec(),
            };
            // Appending through the run-at-a-time API too: half the chunk
            // via append_set, the rest via append_run.
            let rest = part.traces.split_off(part.traces.len() / 2);
            piecewise.append_set(&part);
            for t in rest {
                piecewise.append_run(&set, t);
            }
        }
        prop_assert_eq!(
            codec::encode(&piecewise.to_trace_set()),
            codec::encode(&bulk.to_trace_set())
        );
    }
}
