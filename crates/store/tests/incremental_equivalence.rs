//! The store's equivalence contract, pinned against all six case studies:
//! appending each corpus **one trace at a time** and refreshing after every
//! append must produce, at *every* prefix, an analysis structurally
//! identical to `aid_core::analyze` recomputed from scratch over that
//! prefix — catalog, per-run observations, SD scores, candidate set, and
//! AC-DAG alike. The columnar layer is additionally held to byte-identical
//! codec round-trips at the end of each corpus.

use aid_cases::{all_cases, collect_logs_sized};
use aid_core::{analyze, AidAnalysis};
use aid_store::{StoreConfig, TraceStore};
use aid_trace::{codec, TraceSet};

fn assert_analysis_eq(incremental: &AidAnalysis, batch: &AidAnalysis, ctx: &str) {
    // Catalog: same predicates with the same ids and metadata.
    assert_eq!(
        incremental.extraction.catalog.len(),
        batch.extraction.catalog.len(),
        "{ctx}: catalog size"
    );
    for ((ia, pa), (ib, pb)) in incremental
        .extraction
        .catalog
        .iter()
        .zip(batch.extraction.catalog.iter())
    {
        assert_eq!(ia, ib, "{ctx}: predicate id order");
        assert_eq!(pa, pb, "{ctx}: predicate {ia:?}");
    }
    assert_eq!(
        incremental.extraction.failure, batch.extraction.failure,
        "{ctx}: failure id"
    );
    assert_eq!(
        incremental.extraction.signature, batch.extraction.signature,
        "{ctx}: signature"
    );
    assert_eq!(
        incremental.extraction.observations, batch.extraction.observations,
        "{ctx}: observations"
    );
    assert_eq!(incremental.sd.scores, batch.sd.scores, "{ctx}: SD scores");
    assert_eq!(
        incremental.sd.discriminative, batch.sd.discriminative,
        "{ctx}: discriminative set"
    );
    assert_eq!(
        incremental.sd.fully_discriminative, batch.sd.fully_discriminative,
        "{ctx}: fully-discriminative set"
    );
    assert_eq!(
        incremental.candidates, batch.candidates,
        "{ctx}: candidates"
    );
    assert_eq!(incremental.dag, batch.dag, "{ctx}: AC-DAG");
}

/// Regression (found by the `aid_lab` conformance harness): a refresh that
/// sees only successes before the first failure must still keep per-trace
/// window rows aligned. An *event-less* success is the trigger — it leaves
/// every pass-1 statistic untouched, so the first failure takes the cheap
/// extend path rather than a rebuild, and the missing row mispaired every
/// later trace with the wrong window prefix.
#[test]
fn stat_neutral_success_prefix_stays_aligned() {
    use aid_trace::{FailureSignature, MethodEvent, Outcome, ThreadId, Trace};

    let mut set = TraceSet::new();
    let m = set.method("Commit");
    set.push(Trace {
        seed: 0,
        events: vec![], // crashed before instrumentation saw a call
        msgs: vec![],
        outcome: Outcome::Success,
        duration: 3,
    });
    let mut failing = Trace {
        seed: 1,
        events: vec![MethodEvent {
            method: m,
            instance: 0,
            thread: ThreadId::from_raw(0),
            start: 0,
            end: 9,
            accesses: vec![],
            returned: None,
            exception: Some("Boom".into()),
            caught: false,
        }],
        msgs: vec![],
        outcome: Outcome::Failure(FailureSignature {
            kind: "Boom".into(),
            method: m,
        }),
        duration: 10,
    };
    failing.normalize();
    set.push(failing);

    let config = aid_predicates::ExtractionConfig::default();
    let mut store = TraceStore::new(StoreConfig {
        shards: 2,
        extraction: config.clone(),
        ..StoreConfig::default()
    });
    for k in 0..set.traces.len() {
        store.append_run(&set, set.traces[k].clone());
        let analysis = store.refresh();
        if k == 0 {
            assert!(analysis.is_none(), "no failure yet");
            continue;
        }
        let prefix = TraceSet {
            methods: set.methods.clone(),
            objects: set.objects.clone(),
            channels: set.channels.clone(),
            traces: set.traces[..=k].to_vec(),
        };
        let batch = analyze(&prefix, &config);
        assert_analysis_eq(
            analysis.expect("failure folded"),
            &batch,
            &format!("prefix {}", k + 1),
        );
    }
}

#[test]
fn every_prefix_of_every_case_corpus_matches_batch() {
    for case in all_cases() {
        let set = collect_logs_sized(&case, 15, 15);
        let mut store = TraceStore::new(StoreConfig {
            shards: 3,
            extraction: case.config.clone(),
            ..StoreConfig::default()
        });
        let mut failures_seen = 0usize;
        for k in 0..set.traces.len() {
            store.append_run(&set, set.traces[k].clone());
            if set.traces[k].failed() {
                failures_seen += 1;
            }
            let analysis = store.refresh();
            if failures_seen == 0 {
                assert!(
                    analysis.is_none(),
                    "{}: analysis published before any failure",
                    case.name
                );
                continue;
            }
            let prefix = TraceSet {
                methods: set.methods.clone(),
                objects: set.objects.clone(),
                channels: set.channels.clone(),
                traces: set.traces[..=k].to_vec(),
            };
            let batch = analyze(&prefix, &case.config);
            let ctx = format!("{} prefix {}", case.name, k + 1);
            assert_analysis_eq(analysis.expect("failures present"), &batch, &ctx);
        }
        // The columnar layer reproduces the corpus byte for byte.
        assert_eq!(
            codec::encode(&store.to_trace_set()),
            codec::encode(&set),
            "{}: columnar round-trip",
            case.name
        );
        // The incremental machinery must actually have taken its cheap
        // paths, not re-derived everything from scratch each refresh.
        let stats = store.stats().view;
        assert!(
            stats.extensions > 0,
            "{}: no refresh used the incremental extension path ({stats:?})",
            case.name
        );
        // Refreshes before the first failure take neither path (there is
        // nothing to analyze yet), hence `<=`.
        assert!(
            stats.extensions + stats.rebuilds <= stats.refreshes,
            "{}: path accounting ({stats:?})",
            case.name
        );
    }
}
