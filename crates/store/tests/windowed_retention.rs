//! Windowed retention, held to the same standards as the append-only
//! store: (1) property test — *any* interleaving of appends and front
//! evictions leaves the retained window byte-identical to the same trace
//! suffix encoded directly; (2) equivalence pinning — with a count-bounded
//! retention policy, `StoreView::refresh` after every single-trace append
//! of all six case corpora matches batch `analyze` recomputed from scratch
//! over the retained window.

use aid_cases::{all_cases, collect_logs_sized};
use aid_core::{analyze, AidAnalysis};
use aid_store::{RetentionPolicy, StoreConfig, TraceStore};
use aid_trace::{
    codec, FailureSignature, MethodEvent, MethodId, Outcome, ThreadId, Trace, TraceSet,
};
use proptest::prelude::*;

/// A small deterministic trace vocabulary for the schedule property: what
/// matters here is the *bookkeeping* (extent rebasing, shard/row
/// arithmetic, id stability), which arbitrary schedules stress far harder
/// than arbitrary trace payloads do (`columns_roundtrip.rs` already covers
/// payload diversity).
fn trace(seed: u64, methods: &[MethodId], events: usize, failed: bool) -> Trace {
    let mut t = Trace {
        seed,
        events: (0..events)
            .map(|i| MethodEvent {
                method: methods[(seed as usize + i) % methods.len()],
                instance: 0,
                thread: ThreadId::from_raw((i % 2) as u32),
                start: 10 * i as u64,
                end: 10 * i as u64 + 3 + seed % 5,
                accesses: vec![],
                returned: (i % 2 == 0).then_some(seed as i64 + i as i64),
                exception: (failed && i + 1 == events).then(|| "Boom".to_string()),
                caught: false,
            })
            .collect(),
        msgs: vec![],
        outcome: if failed {
            Outcome::Failure(FailureSignature {
                kind: "Boom".into(),
                method: methods[seed as usize % methods.len()],
            })
        } else {
            Outcome::Success
        },
        duration: 10 * events as u64 + 7,
    };
    t.normalize();
    t
}

/// One schedule step: append a batch of generated traces, then evict —
/// either an explicit `evict_front(k)` or a `keep_last` policy pass.
type Step = (
    // appended traces: (event count, failed)
    Vec<(usize, bool)>,
    // (use explicit evict_front, its count)
    (bool, usize),
    // keep_last bound used on the policy path
    usize,
);

fn schedule_strategy() -> impl Strategy<Value = (usize, Vec<Step>)> {
    (
        1usize..=5, // shard count
        proptest::collection::vec(
            (
                proptest::collection::vec((0usize..4, any::<bool>()), 0..5),
                (any::<bool>(), 0usize..7),
                1usize..12,
            ),
            1..10,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Any eviction schedule preserves the byte-identical re-encode of the
    /// retained window, keeps global ids stable, and keeps per-trace
    /// accessors in agreement with full re-materialization.
    #[test]
    fn prop_any_eviction_schedule_preserves_retained_window(
        schedule in schedule_strategy(),
    ) {
        let (shards, steps) = schedule;
        let mut names = TraceSet::new();
        let methods = vec![names.method("Reader"), names.method("Writer")];
        let mut store = TraceStore::new(StoreConfig {
            shards,
            ..StoreConfig::default()
        });
        // The model: the full arrival sequence plus the count evicted.
        let mut arrived: Vec<Trace> = Vec::new();
        let mut evicted = 0usize;
        let mut seed = 0u64;
        for (appends, evict, keep) in steps {
            if !appends.is_empty() {
                let batch = TraceSet {
                    methods: names.methods.clone(),
                    objects: names.objects.clone(),
                    channels: names.channels.clone(),
                    traces: appends
                        .iter()
                        .map(|&(events, failed)| {
                            seed += 1;
                            trace(seed, &methods, events, failed)
                        })
                        .collect(),
                };
                arrived.extend(batch.traces.iter().cloned());
                store.append_set(&batch);
            }
            let (explicit, k) = evict;
            evicted += if explicit {
                store.evict_front(k)
            } else {
                store.apply_retention(RetentionPolicy::keep_last(keep))
            };
            // Ids are stable: the window is exactly `evicted..arrived`.
            prop_assert_eq!(store.retained(), evicted..arrived.len());
            // Name arenas travel with appends, so the byte comparison only
            // makes sense once the store has seen traffic.
            if arrived.is_empty() {
                continue;
            }
            let expected = TraceSet {
                methods: names.methods.clone(),
                objects: names.objects.clone(),
                channels: names.channels.clone(),
                traces: arrived[evicted..].to_vec(),
            };
            prop_assert_eq!(
                codec::encode(&store.to_trace_set()),
                codec::encode(&expected)
            );
            for gid in store.retained() {
                let t = store.trace(gid);
                prop_assert_eq!(&t, &arrived[gid]);
                prop_assert_eq!(store.columns().header(gid), (t.seed, t.duration));
                prop_assert_eq!(store.columns().failed(gid), t.failed());
            }
            prop_assert_eq!(store.columns().stats().evicted, evicted);
        }
    }
}

fn assert_analysis_eq(incremental: &AidAnalysis, batch: &AidAnalysis, ctx: &str) {
    assert_eq!(
        incremental.extraction.catalog.len(),
        batch.extraction.catalog.len(),
        "{ctx}: catalog size"
    );
    for ((ia, pa), (ib, pb)) in incremental
        .extraction
        .catalog
        .iter()
        .zip(batch.extraction.catalog.iter())
    {
        assert_eq!(ia, ib, "{ctx}: predicate id order");
        assert_eq!(pa, pb, "{ctx}: predicate {ia:?}");
    }
    assert_eq!(
        incremental.extraction.failure, batch.extraction.failure,
        "{ctx}: failure id"
    );
    assert_eq!(
        incremental.extraction.signature, batch.extraction.signature,
        "{ctx}: signature"
    );
    assert_eq!(
        incremental.extraction.observations, batch.extraction.observations,
        "{ctx}: observations"
    );
    assert_eq!(incremental.sd.scores, batch.sd.scores, "{ctx}: SD scores");
    assert_eq!(
        incremental.sd.discriminative, batch.sd.discriminative,
        "{ctx}: discriminative set"
    );
    assert_eq!(
        incremental.sd.fully_discriminative, batch.sd.fully_discriminative,
        "{ctx}: fully-discriminative set"
    );
    assert_eq!(
        incremental.candidates, batch.candidates,
        "{ctx}: candidates"
    );
    assert_eq!(incremental.dag, batch.dag, "{ctx}: AC-DAG");
}

/// The windowed generalization of the equivalence contract: with a
/// count-bounded retention policy in force, the view's analysis at every
/// prefix of all six case corpora equals batch `analyze` over exactly the
/// traces still retained at that prefix.
#[test]
fn every_prefix_matches_batch_over_retained_window() {
    const WINDOW: usize = 10;
    for case in all_cases() {
        let set = collect_logs_sized(&case, 15, 15);
        let mut store = TraceStore::new(StoreConfig {
            shards: 3,
            extraction: case.config.clone(),
            retention: RetentionPolicy::keep_last(WINDOW),
        });
        for k in 0..set.traces.len() {
            store.append_run(&set, set.traces[k].clone());
            let lo = (k + 1).saturating_sub(WINDOW);
            assert_eq!(store.retained(), lo..k + 1, "{}", case.name);
            let window = &set.traces[lo..=k];
            let analysis = store.refresh();
            if !window.iter().any(|t| t.failed()) {
                assert!(
                    analysis.is_none(),
                    "{}: analysis published with no failure in window",
                    case.name
                );
                continue;
            }
            let retained = TraceSet {
                methods: set.methods.clone(),
                objects: set.objects.clone(),
                channels: set.channels.clone(),
                traces: window.to_vec(),
            };
            let batch = analyze(&retained, &case.config);
            let ctx = format!("{} prefix {} window {lo}..={k}", case.name, k + 1);
            assert_analysis_eq(analysis.expect("failure in window"), &batch, &ctx);
        }
        // Every step past the window evicted exactly one trace.
        let stats = store.stats();
        assert_eq!(
            stats.columns.evicted,
            set.traces.len() - WINDOW,
            "{}: eviction accounting",
            case.name
        );
        assert!(
            stats.view.resets >= stats.columns.compactions as u64,
            "{}: each compaction forces a refold ({stats:?})",
            case.name
        );
    }
}
