//! Streaming, resumable ingestion of the `aid_trace::codec` line format.
//!
//! [`StreamDecoder`] consumes the format incrementally — from byte chunks of
//! any size (file reads, socket frames) or whole lines — and emits complete
//! [`Trace`]s as they close. Unlike the strict batch `codec::decode`, a
//! malformed or truncated record does not abort the batch: the offending
//! line (and, if one was open, the trace it belongs to) is **quarantined**
//! with its typed [`DecodeError`], the decoder resynchronizes at the next
//! `trace` header, and everything well-formed around the damage survives.
//!
//! The decoder is resumable by construction: all parse state (the partial
//! line carried between chunks, the open trace, the interning arenas) lives
//! in the struct, so a caller can feed a live log as it is appended to and
//! drain traces between pushes.

use aid_trace::codec::{self, parse_line, DecodeError, DecodeErrorKind, Record};
use aid_trace::{ChannelTag, MethodTag, ObjectTag, Outcome, Trace};
use aid_util::IdArena;

/// A record (line or whole trace) set aside instead of ingested.
#[derive(Clone, Debug)]
pub struct Quarantined {
    /// 1-based line number of the offending line in the stream.
    pub line: usize,
    /// The offending line's text (lossily decoded if it was not UTF-8),
    /// truncated to a sane length for reporting.
    pub raw: String,
    /// Why it was rejected.
    pub error: DecodeError,
    /// Number of already-buffered events discarded with it (non-zero when
    /// the error poisoned an open trace, zero for an isolated bad line).
    pub dropped_events: usize,
}

/// Ingestion counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Bytes consumed.
    pub bytes: u64,
    /// Lines consumed (including blanks/comments).
    pub lines: u64,
    /// Complete traces decoded.
    pub traces: u64,
    /// Quarantine entries recorded.
    pub quarantined: u64,
    /// Lines skipped while resynchronizing after a poisoned trace.
    pub skipped_lines: u64,
}

/// Longest raw-line excerpt kept in a quarantine entry.
const QUARANTINE_EXCERPT: usize = 120;

/// An incremental decoder for the line-oriented trace format.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    methods: IdArena<String, MethodTag>,
    objects: IdArena<String, ObjectTag>,
    channels: IdArena<String, ChannelTag>,
    /// Partial line carried between byte chunks.
    carry: Vec<u8>,
    lineno: usize,
    current: Option<Trace>,
    /// Inside a poisoned trace: drop records until the next `trace` header.
    skipping: bool,
    ready: Vec<Trace>,
    quarantine: Vec<Quarantined>,
    stats: IngestStats,
}

impl StreamDecoder {
    /// A fresh decoder with empty arenas.
    pub fn new() -> StreamDecoder {
        StreamDecoder::default()
    }

    /// Feeds a chunk of bytes; the chunk may end mid-line (the partial tail
    /// is carried into the next push).
    pub fn push_bytes(&mut self, chunk: &[u8]) {
        self.stats.bytes += chunk.len() as u64;
        let mut rest = chunk;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(nl);
            self.carry.extend_from_slice(head);
            rest = &tail[1..];
            let line = std::mem::take(&mut self.carry);
            self.consume_line(&line);
        }
        self.carry.extend_from_slice(rest);
    }

    /// Feeds a whole string chunk (may contain many lines and end mid-line).
    pub fn push_str(&mut self, chunk: &str) {
        self.push_bytes(chunk.as_bytes());
    }

    /// Drains everything a reader yields into the decoder.
    pub fn push_reader(&mut self, reader: &mut impl std::io::Read) -> std::io::Result<u64> {
        let mut buf = [0u8; 8192];
        let mut total = 0u64;
        loop {
            let n = reader.read(&mut buf)?;
            if n == 0 {
                return Ok(total);
            }
            total += n as u64;
            self.push_bytes(&buf[..n]);
        }
    }

    /// Flushes end-of-stream state: a trailing partial line (bytes after the
    /// last newline) is **quarantined** as [`DecodeErrorKind::TruncatedLine`]
    /// — never parsed, because a truncated record can prefix-parse as a
    /// different valid one (`endtrace 40` cut to `endtrace 4`) and silently
    /// corrupt the trace it closes — and a still-open trace is quarantined
    /// as unterminated. The decoder remains usable (a new stream can
    /// follow).
    pub fn finish(&mut self) {
        if !self.carry.is_empty() {
            let raw = std::mem::take(&mut self.carry);
            self.lineno += 1;
            self.stats.lines += 1;
            self.poison(
                DecodeError::new(self.lineno, DecodeErrorKind::TruncatedLine),
                &String::from_utf8_lossy(&raw),
            );
        }
        if self.current.is_some() {
            self.poison(
                DecodeError::new(self.lineno.max(1), DecodeErrorKind::UnterminatedTrace),
                "<end of stream>",
            );
        }
        // Nothing to skip: the stream is over.
        self.skipping = false;
    }

    /// Takes every fully decoded trace accumulated so far, in stream order.
    pub fn drain(&mut self) -> Vec<Trace> {
        std::mem::take(&mut self.ready)
    }

    /// Interned method names, in declaration order.
    pub fn methods(&self) -> &IdArena<String, MethodTag> {
        &self.methods
    }

    /// Interned object names, in declaration order.
    pub fn objects(&self) -> &IdArena<String, ObjectTag> {
        &self.objects
    }

    /// Interned channel names, in declaration order.
    pub fn channels(&self) -> &IdArena<String, ChannelTag> {
        &self.channels
    }

    /// Records set aside instead of ingested.
    pub fn quarantine(&self) -> &[Quarantined] {
        &self.quarantine
    }

    /// Takes the accumulated quarantine entries, releasing their memory —
    /// long-running consumers report-and-drain these periodically (the
    /// `quarantined` counter in [`IngestStats`] still records the total).
    pub fn drain_quarantine(&mut self) -> Vec<Quarantined> {
        std::mem::take(&mut self.quarantine)
    }

    /// Ingestion counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    fn consume_line(&mut self, raw: &[u8]) {
        self.lineno += 1;
        self.stats.lines += 1;
        let Ok(line) = std::str::from_utf8(raw) else {
            self.poison(
                DecodeError::new(self.lineno, DecodeErrorKind::InvalidUtf8),
                &String::from_utf8_lossy(raw),
            );
            return;
        };
        let parsed = match parse_line(line, self.lineno) {
            Ok(None) => return,
            Ok(Some(record)) => record,
            Err(e) => {
                self.poison(e, line);
                return;
            }
        };
        match parsed {
            Record::Method { id, name } => {
                if let Err(e) = codec::declare(&mut self.methods, id, name, self.lineno) {
                    self.quarantine_line(e, line);
                }
            }
            Record::Object { id, name } => {
                if let Err(e) = codec::declare(&mut self.objects, id, name, self.lineno) {
                    self.quarantine_line(e, line);
                }
            }
            Record::Channel { id, name } => {
                if let Err(e) = codec::declare(&mut self.channels, id, name, self.lineno) {
                    self.quarantine_line(e, line);
                }
            }
            Record::TraceStart { seed, outcome } => {
                // A new header resynchronizes a skipping decoder.
                self.skipping = false;
                if self.current.is_some() {
                    self.poison(
                        DecodeError::new(
                            self.lineno,
                            DecodeErrorKind::UnexpectedRecord("trace without endtrace"),
                        ),
                        line,
                    );
                    // The *new* trace is fine; only the open one is dropped.
                    self.skipping = false;
                }
                if let Outcome::Failure(sig) = &outcome {
                    if sig.method.index() >= self.methods.len() {
                        self.quarantine_line(
                            DecodeError::new(
                                self.lineno,
                                DecodeErrorKind::UnknownMethod(sig.method.raw()),
                            ),
                            line,
                        );
                        self.skipping = true;
                        return;
                    }
                }
                self.current = Some(Trace {
                    seed,
                    events: vec![],
                    msgs: vec![],
                    outcome,
                    duration: 0,
                });
            }
            Record::Event(e) => {
                if self.skipping {
                    self.stats.skipped_lines += 1;
                    return;
                }
                // Check trace context before the reference, mirroring the
                // strict batch decoder: both must classify an orphaned
                // event with an undeclared id as structural damage, not as
                // a dangling reference.
                if self.current.is_none() {
                    self.quarantine_line(
                        DecodeError::new(
                            self.lineno,
                            DecodeErrorKind::UnexpectedRecord("event outside trace"),
                        ),
                        line,
                    );
                    return;
                }
                if e.method.index() >= self.methods.len() {
                    let id = e.method.raw();
                    self.poison(
                        DecodeError::new(self.lineno, DecodeErrorKind::UnknownMethod(id)),
                        line,
                    );
                    return;
                }
                self.current.as_mut().expect("checked above").events.push(e);
            }
            Record::Access(a) => {
                if self.skipping {
                    self.stats.skipped_lines += 1;
                    return;
                }
                // Same classification order as the batch decoder: trace
                // context, then event context, then the reference.
                let Some(t) = self.current.as_mut() else {
                    self.quarantine_line(
                        DecodeError::new(
                            self.lineno,
                            DecodeErrorKind::UnexpectedRecord("access outside trace"),
                        ),
                        line,
                    );
                    return;
                };
                if t.events.is_empty() {
                    self.quarantine_line(
                        DecodeError::new(
                            self.lineno,
                            DecodeErrorKind::UnexpectedRecord("access before any event"),
                        ),
                        line,
                    );
                    return;
                }
                if a.object.index() >= self.objects.len() {
                    let id = a.object.raw();
                    self.poison(
                        DecodeError::new(self.lineno, DecodeErrorKind::UnknownObject(id)),
                        line,
                    );
                    return;
                }
                let event = self
                    .current
                    .as_mut()
                    .and_then(|t| t.events.last_mut())
                    .expect("checked above");
                event.accesses.push(a);
            }
            Record::Msg(m) => {
                if self.skipping {
                    self.stats.skipped_lines += 1;
                    return;
                }
                // Same classification order as the batch decoder: trace
                // context first, then the channel reference.
                if self.current.is_none() {
                    self.quarantine_line(
                        DecodeError::new(
                            self.lineno,
                            DecodeErrorKind::UnexpectedRecord("msg outside trace"),
                        ),
                        line,
                    );
                    return;
                }
                if m.channel.index() >= self.channels.len() {
                    let id = m.channel.raw();
                    self.poison(
                        DecodeError::new(self.lineno, DecodeErrorKind::UnknownChannel(id)),
                        line,
                    );
                    return;
                }
                self.current.as_mut().expect("checked above").msgs.push(m);
            }
            Record::TraceEnd { duration } => {
                if self.skipping {
                    // The poisoned trace's terminator: resume normal decoding.
                    self.skipping = false;
                    self.stats.skipped_lines += 1;
                    return;
                }
                match self.current.take() {
                    Some(mut t) => {
                        t.duration = duration;
                        t.normalize();
                        self.stats.traces += 1;
                        self.ready.push(t);
                    }
                    None => self.quarantine_line(
                        DecodeError::new(
                            self.lineno,
                            DecodeErrorKind::UnexpectedRecord("endtrace without trace"),
                        ),
                        line,
                    ),
                }
            }
        }
    }

    /// Quarantines a bad line, discarding any open trace with it and (if one
    /// was open) switching to resynchronization mode.
    fn poison(&mut self, error: DecodeError, raw: &str) {
        let open = self.current.take();
        if open.is_some() {
            self.skipping = true;
        }
        let dropped_events = open.map_or(0, |t| t.events.len());
        self.record_quarantine(error, raw, dropped_events);
    }

    /// Quarantines a bad line without touching any open trace.
    fn quarantine_line(&mut self, error: DecodeError, raw: &str) {
        self.record_quarantine(error, raw, 0);
    }

    fn record_quarantine(&mut self, error: DecodeError, raw: &str, dropped_events: usize) {
        let mut excerpt: String = raw.chars().take(QUARANTINE_EXCERPT).collect();
        if excerpt.len() < raw.len() {
            excerpt.push('…');
        }
        self.stats.quarantined += 1;
        self.quarantine.push(Quarantined {
            line: error.line,
            raw: excerpt,
            error,
            dropped_events,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_trace::codec;
    use aid_trace::{
        AccessEvent, AccessKind, FailureSignature, MethodEvent, Outcome, ThreadId, TraceSet,
    };

    fn sample_set() -> TraceSet {
        let mut set = TraceSet::new();
        let m0 = set.method("Fetch");
        let m1 = set.method("Commit");
        let o = set.object("cache");
        for seed in 0..4u64 {
            let failed = seed % 2 == 1;
            let mut t = Trace {
                seed,
                events: vec![
                    MethodEvent {
                        method: m0,
                        instance: 0,
                        thread: ThreadId::from_raw(0),
                        start: 0,
                        end: 10 + seed,
                        accesses: vec![AccessEvent {
                            object: o,
                            kind: AccessKind::Read,
                            at: 5,
                            locked: false,
                        }],
                        returned: Some(seed as i64),
                        exception: None,
                        caught: false,
                    },
                    MethodEvent {
                        method: m1,
                        instance: 0,
                        thread: ThreadId::from_raw(1),
                        start: 20,
                        end: 30,
                        accesses: vec![],
                        returned: None,
                        exception: failed.then(|| "Boom".to_string()),
                        caught: false,
                    },
                ],
                msgs: vec![],
                outcome: if failed {
                    Outcome::Failure(FailureSignature {
                        kind: "Boom".into(),
                        method: m1,
                    })
                } else {
                    Outcome::Success
                },
                duration: 40,
            };
            t.normalize();
            set.push(t);
        }
        set
    }

    #[test]
    fn chunked_pushes_decode_identically_to_batch() {
        let set = sample_set();
        let text = codec::encode(&set);
        // Feed in pathological chunk sizes, including 1 byte at a time.
        for chunk_size in [1usize, 3, 7, 64, 10_000] {
            let mut dec = StreamDecoder::new();
            for chunk in text.as_bytes().chunks(chunk_size) {
                dec.push_bytes(chunk);
            }
            dec.finish();
            let traces = dec.drain();
            assert_eq!(traces.len(), set.traces.len(), "chunk size {chunk_size}");
            for (a, b) in traces.iter().zip(&set.traces) {
                assert_eq!(a, b);
            }
            assert!(dec.quarantine().is_empty());
            assert_eq!(dec.methods().len(), set.methods.len());
            assert_eq!(dec.objects().len(), set.objects.len());
        }
    }

    #[test]
    fn malformed_trace_is_quarantined_and_stream_recovers() {
        let set = sample_set();
        let text = codec::encode(&set);
        // Poison the first event of the second trace (each trace carries two
        // event lines, so that is the third `event` line of the stream).
        let mut event_seen = 0;
        let mutated: String = text
            .lines()
            .map(|l| {
                if l.starts_with("event") {
                    event_seen += 1;
                    if event_seen == 3 {
                        return "event NOT A NUMBER".to_string();
                    }
                }
                l.to_string()
            })
            .collect::<Vec<_>>()
            .join("\n");

        let mut dec = StreamDecoder::new();
        dec.push_str(&mutated);
        dec.push_str("\n");
        dec.finish();
        let traces = dec.drain();
        // Trace #2 is dropped; 1, 3, 4 survive intact.
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[0], set.traces[0]);
        assert_eq!(traces[1], set.traces[2]);
        assert_eq!(traces[2], set.traces[3]);
        assert_eq!(dec.quarantine().len(), 1);
        let q = &dec.quarantine()[0];
        assert_eq!(
            q.error.kind,
            codec::DecodeErrorKind::InvalidNumber("method")
        );
        assert!(q.raw.contains("NOT A NUMBER"));
        assert!(dec.stats().skipped_lines > 0, "resync skipped lines");
    }

    #[test]
    fn truncated_stream_quarantines_open_trace() {
        let set = sample_set();
        let text = codec::encode(&set);
        // Cut the final `endtrace` line off, leaving the last trace open.
        let cut = text.rfind("endtrace").unwrap();
        let mut dec = StreamDecoder::new();
        dec.push_str(&text[..cut]);
        dec.finish();
        let traces = dec.drain();
        assert_eq!(traces.len(), 3, "first three traces survive");
        assert_eq!(
            dec.quarantine().last().unwrap().error.kind,
            codec::DecodeErrorKind::UnterminatedTrace
        );
        // The decoder stays usable: feed a fresh, fully-formed trace.
        dec.push_str("trace 9 ok - -\nevent 0 0 0 5 - - 0\nendtrace 6\n");
        dec.finish();
        assert_eq!(dec.drain().len(), 1);
    }

    /// A final chunk cut mid-line must not be ingested as if the partial
    /// line were complete: `endtrace 40` truncated to `endtrace 4` parses
    /// fine but closes the trace with a wrong duration. `finish()` has to
    /// quarantine the tail (and the trace it would have closed) instead.
    #[test]
    fn truncated_final_chunk_quarantines_partial_line() {
        let set = sample_set();
        let text = codec::encode(&set);
        // Cut inside the last line: drop the final newline plus one digit
        // of the closing `endtrace <duration>` record.
        let cut = text.trim_end().len() - 1;
        let mut dec = StreamDecoder::new();
        dec.push_str(&text[..cut]);
        dec.finish();
        let traces = dec.drain();
        assert_eq!(traces.len(), 3, "only fully-terminated traces survive");
        assert_eq!(traces[..], set.traces[..3]);
        let q = dec.quarantine();
        assert_eq!(q.len(), 1, "partial line + open trace is one entry");
        assert_eq!(q[0].error.kind, codec::DecodeErrorKind::TruncatedLine);
        assert!(q[0].raw.starts_with("endtrace"), "raw tail is reported");
        assert_eq!(q[0].dropped_events, 2, "the open trace died with it");
        // The decoder stays usable for a follow-up stream.
        dec.push_str("trace 9 ok - -\nevent 0 0 0 5 - - 0\nendtrace 6\n");
        dec.finish();
        assert_eq!(dec.drain().len(), 1);
        assert_eq!(dec.stats().quarantined, 1);
    }

    #[test]
    fn undeclared_references_are_typed() {
        let mut dec = StreamDecoder::new();
        dec.push_str("method 0 M\ntrace 0 ok - -\nevent 9 0 0 1 - - 0\nendtrace 2\n");
        dec.finish();
        assert!(dec.drain().is_empty(), "poisoned trace is dropped");
        assert_eq!(
            dec.quarantine()[0].error.kind,
            codec::DecodeErrorKind::UnknownMethod(9)
        );
        // Draining releases the entries but keeps the running counter.
        assert_eq!(dec.drain_quarantine().len(), 1);
        assert!(dec.quarantine().is_empty());
        assert_eq!(dec.stats().quarantined, 1);
    }

    #[test]
    fn invalid_utf8_is_quarantined_not_fatal() {
        let mut dec = StreamDecoder::new();
        dec.push_bytes(b"method 0 M\n\xff\xfe broken\ntrace 0 ok - -\nendtrace 1\n");
        dec.finish();
        assert_eq!(dec.drain().len(), 1);
        assert_eq!(
            dec.quarantine()[0].error.kind,
            codec::DecodeErrorKind::InvalidUtf8
        );
    }
}
