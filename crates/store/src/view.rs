//! The incrementally maintained analysis view over a [`ColumnStore`].
//!
//! [`StoreView::refresh`] folds newly appended traces into the observation-
//! phase state — predicate catalog, per-run observations, SD scores, and
//! the AC-DAG — under a hard **equivalence contract**: after any sequence
//! of appends and refreshes, the published [`AidAnalysis`] is structurally
//! identical to `aid_core::analyze` run from scratch over the same traces
//! in the same order (`tests/incremental_equivalence.rs` pins this for
//! every prefix of all six case-study corpora).
//!
//! The incremental decomposition mirrors the batch pipeline's two passes:
//!
//! * **Pass 1 (successes)** is a pure fold: duration envelopes, unique
//!   returns, stable sites, all-runs temporal orders, and per-success
//!   return maps update in O(run) per new success, and the fold reports
//!   whether anything *pass-2-relevant* moved.
//! * **Pass 2 (failures)** extends: catalog interning is insertion-ordered,
//!   so scanning only the newly arrived failures appends exactly the
//!   predicates a batch rescan would — as long as pass-1 state is
//!   unchanged. When a success *does* move the statistics (an envelope
//!   widens, a site loses stability, an order or collision invariant
//!   breaks), the view falls back to a full pass-2 rebuild for that
//!   refresh and says so in its telemetry.
//! * **Evaluation** extends per trace: stored window vectors grow by
//!   exactly the new catalog suffix (`aid_predicates::evaluate_extend`),
//!   optionally fanned across the engine worker pool.
//! * **SD** is counted from per-predicate occurrence bitmaps
//!   (`aid_util::DenseBitSet` over trace ids) rather than by re-scanning
//!   observations.
//! * **The AC-DAG** folds new failed runs into a live
//!   [`aid_causal::AcDagBuilder`] whenever the candidate set, failure id,
//!   and signature are unchanged, and replays otherwise.
//!
//! Under **windowed retention** the contract generalizes: when the store
//! has evicted traces since the last refresh (`store.base()` moved), the
//! view drops its incremental state and refolds the whole retained window,
//! so the published analysis is structurally identical to batch `analyze`
//! over *the retained traces* in arrival order. Refolds are deliberate:
//! pass-1 folds (envelope growth, stable-site intersection, unique-return
//! collapse) are not invertible, so forgetting a trace means replaying the
//! survivors — the `resets` counter makes that cost visible.

use crate::columns::ColumnStore;
use aid_causal::{AcDagBuilder, TypeAwarePolicy};
use aid_core::AidAnalysis;
use aid_engine::WorkerPool;
use aid_predicates::{
    evaluate_extend, scan_failure, success_return_map, Extraction, ExtractionConfig, Predicate,
    PredicateCatalog, PredicateId, PredicateKind, RunObservation, SuccessStats,
};
use aid_sd::{PredicateScore, SdReport};
use aid_trace::{FailureSignature, MethodEvent, Time, Trace};
use aid_util::DenseBitSet;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Telemetry for the incremental machinery: how often the cheap paths held.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Refresh calls that had new traces to fold.
    pub refreshes: u64,
    /// Refreshes that extended the catalog in place (cheap pass-2 path).
    pub extensions: u64,
    /// Refreshes that re-scanned every failure (success statistics moved).
    pub rebuilds: u64,
    /// Individual predicate windows computed (the evaluation workload; a
    /// batch recomputation would be `traces × catalog` per refresh).
    pub windows_evaluated: u64,
    /// Failed runs folded incrementally into a live AC-DAG builder.
    pub dag_runs_folded: u64,
    /// AC-DAG builder replays (candidate set, failure id, or signature
    /// changed).
    pub dag_rebuilds: u64,
    /// Full refolds of the retained window after the store evicted traces.
    pub resets: u64,
    /// Standing-query delta accounting: predicates whose SD score or
    /// AC-DAG neighborhood moved since the last convergence, forcing a
    /// re-probe (recorded by watchers via
    /// [`StoreView::record_probe_delta`]).
    pub predicates_reprobed: u64,
    /// Standing-query delta accounting: predicates left untouched by a
    /// refresh (their cached intervention outcomes stayed valid).
    pub predicates_skipped: u64,
}

fn site(e: &MethodEvent) -> (u32, u32) {
    (e.method.raw(), e.instance)
}

/// The incrementally maintained observation-phase analysis.
pub struct StoreView {
    config: ExtractionConfig,
    /// The store base this view's state was folded against. When the store
    /// evicts (its base advances past this), the incremental state is no
    /// longer a fold over the retained window and must be rebuilt.
    base: usize,
    /// Global-id high-water mark: traces `base..seen` are folded in. All
    /// per-trace state (`windows`, `occurrence`, `failed_bits`) is indexed
    /// by `gid - base`.
    seen: usize,
    // --- pass-1 state (successes) ---
    stats: SuccessStats,
    orders: BTreeSet<((u32, u32), (u32, u32))>,
    success_returns: Vec<BTreeMap<(u32, u32), i64>>,
    /// Pass-2 inputs moved since the catalog was last (re)built.
    stats_dirty: bool,
    // --- pass-2 state (failures) ---
    /// Global ids of failed traces, in arrival order.
    failures: Vec<usize>,
    /// How many entries of `failures` are scanned into `base`.
    scanned: usize,
    sig_counts: BTreeMap<FailureSignature, usize>,
    /// The catalog *without* the failure indicator.
    catalog: PredicateCatalog,
    /// Per retained trace (indexed `gid - base`): observation windows for
    /// every catalog predicate.
    windows: Vec<Vec<Option<(Time, Time)>>>,
    /// Per catalog predicate: which retained traces (`gid - base`) it
    /// holds in.
    occurrence: Vec<DenseBitSet>,
    /// Which retained traces (`gid - base`) failed (any signature).
    failed_bits: DenseBitSet,
    // --- AC-DAG state ---
    builder: Option<DagCache>,
    // --- published ---
    analysis: Option<AidAnalysis>,
    view_stats: ViewStats,
}

/// A live AC-DAG intersection plus the inputs it is valid for.
struct DagCache {
    candidates: Vec<PredicateId>,
    failure: PredicateId,
    signature: FailureSignature,
    builder: AcDagBuilder,
    /// Prefix of `failures` already folded in.
    folded: usize,
}

impl StoreView {
    /// An empty view with the given extraction configuration.
    pub fn new(config: ExtractionConfig) -> StoreView {
        StoreView {
            config,
            base: 0,
            seen: 0,
            stats: SuccessStats::default(),
            orders: BTreeSet::new(),
            success_returns: Vec::new(),
            stats_dirty: false,
            failures: Vec::new(),
            scanned: 0,
            sig_counts: BTreeMap::new(),
            catalog: PredicateCatalog::new(),
            windows: Vec::new(),
            occurrence: Vec::new(),
            failed_bits: DenseBitSet::new(0),
            builder: None,
            analysis: None,
            view_stats: ViewStats::default(),
        }
    }

    /// The published analysis, if at least one failure has been folded.
    pub fn analysis(&self) -> Option<&AidAnalysis> {
        self.analysis.as_ref()
    }

    /// Global-id high-water mark: traces `base()..seen()` are folded in.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// First retained global id this view's fold starts at.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Incremental-path telemetry.
    pub fn stats(&self) -> ViewStats {
        self.view_stats
    }

    /// Records one standing-query delta decision (how many predicates a
    /// watcher re-probed vs skipped after a refresh). Pure telemetry,
    /// folded into [`ViewStats`].
    pub fn record_probe_delta(&mut self, reprobed: u64, skipped: u64) {
        self.view_stats.predicates_reprobed += reprobed;
        self.view_stats.predicates_skipped += skipped;
    }

    /// Drops all incremental state and restarts the fold at the store's
    /// current base. Telemetry survives; everything else is rebuilt by the
    /// caller refolding `base..high`.
    fn reset_to(&mut self, base: usize) {
        let config = self.config.clone();
        let mut stats = self.view_stats;
        stats.resets += 1;
        *self = StoreView::new(config);
        self.base = base;
        self.seen = base;
        self.view_stats = stats;
    }

    /// Folds every store change beyond this view's high-water mark —
    /// appended traces, and evictions, which trigger a refold of the whole
    /// retained window — and republishes the analysis. `pool` (when given)
    /// fans the per-trace evaluation work out across the engine's workers;
    /// the result is identical either way.
    pub fn refresh(&mut self, store: &ColumnStore, pool: Option<&WorkerPool>) {
        if store.base() != self.base {
            // The store evicted traces this fold still incorporates (pass-1
            // folds are not invertible), so replay the retained window.
            self.reset_to(store.base());
        }
        let n = store.high();
        if n == self.seen {
            return;
        }
        self.view_stats.refreshes += 1;
        let first_new = self.seen;
        self.failed_bits.resize(n - self.base);
        // Fold pass-1 state and label the newcomers.
        let mut new_traces: Vec<Trace> = Vec::with_capacity(n - first_new);
        for gid in first_new..n {
            let t = store.trace(gid);
            if t.failed() {
                if let aid_trace::Outcome::Failure(sig) = &t.outcome {
                    *self.sig_counts.entry(sig.clone()).or_insert(0) += 1;
                }
                self.failures.push(gid);
                self.failed_bits.insert(gid - self.base);
            } else {
                self.stats_dirty |= self.observe_success(&t);
            }
            new_traces.push(t);
        }
        self.seen = n;
        if self.failures.is_empty() {
            // No failure signature yet: extraction is undefined (matching
            // the batch pipeline, which requires at least one failed run).
            // The per-trace window rows must still stay aligned with
            // `seen`, or the first extend after this refresh mispairs
            // traces with prefixes: the catalog is necessarily empty here,
            // so each row is the empty prefix. (Found by the aid_lab
            // conformance harness: a success that leaves pass-1 statistics
            // untouched — e.g. an event-less trace — otherwise slips a
            // rowless gap past the `stats_dirty` rebuild trigger.)
            self.windows.extend(new_traces.iter().map(|_| Vec::new()));
            self.analysis = None;
            return;
        }

        let rebuilt = self.stats_dirty;
        if rebuilt {
            self.rebuild_catalog(store, pool);
            self.stats_dirty = false;
        } else {
            self.extend_catalog(store, &new_traces, first_new, pool);
        }
        self.publish(store, rebuilt);
    }

    /// Folds one successful run into pass-1 state; returns whether anything
    /// a failure scan consumes (envelopes, unique returns, stable sites,
    /// orders, collision invariants) changed.
    fn observe_success(&mut self, t: &Trace) -> bool {
        let mut changed = false;
        let mut sites: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut span: BTreeMap<(u32, u32), (Time, Time)> = BTreeMap::new();
        for e in &t.events {
            let k = site(e);
            sites.insert(k);
            span.insert(k, (e.start, e.end));
            let d = e.duration();
            match self.stats.duration.entry(k) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert((d, d));
                    changed = true;
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let (lo, hi) = *o.get();
                    if d < lo || d > hi {
                        o.insert((lo.min(d), hi.max(d)));
                        changed = true;
                    }
                }
            }
            match self.stats.unique_return.entry(k) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(e.returned);
                    changed = true;
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if *o.get() != e.returned {
                        if o.get().is_some() {
                            changed = true;
                        }
                        o.insert(None);
                    }
                }
            }
        }
        self.stats.successes += 1;
        // Stable sites: present in every success so far.
        let new_stable: BTreeSet<(u32, u32)> = if self.stats.successes == 1 {
            sites.clone()
        } else {
            self.stats.stable.intersection(&sites).copied().collect()
        };
        if new_stable != self.stats.stable {
            changed = true;
            self.stats.stable = new_stable;
        }
        // All-runs temporal orders over stable sites.
        if self.config.order {
            let before = self.orders.len();
            if self.stats.successes == 1 {
                let stable: Vec<(u32, u32)> = self.stats.stable.iter().copied().collect();
                for (i, &a) in stable.iter().enumerate() {
                    for &b in stable.iter().skip(i + 1) {
                        let (sa, sb) = (span[&a], span[&b]);
                        if sa.1 < sb.0 {
                            self.orders.insert((a, b));
                        } else if sb.1 < sa.0 {
                            self.orders.insert((b, a));
                        }
                    }
                }
                changed |= !self.orders.is_empty();
            } else {
                let stable = &self.stats.stable;
                self.orders.retain(|&(a, b)| {
                    stable.contains(&a) && stable.contains(&b) && span[&a].1 < span[&b].0
                });
                changed |= self.orders.len() != before;
            }
        }
        let returns = success_return_map(t);
        // A new success can silently disqualify an already-materialized
        // value-collision predicate (its sides must return *distinct*
        // values in every success).
        if self.config.collisions && !changed {
            for (_, p) in self.catalog.iter() {
                if let PredicateKind::ValueCollision { a, b } = &p.kind {
                    let ka = (a.method.raw(), a.instance);
                    let kb = (b.method.raw(), b.instance);
                    let still_distinct = matches!(
                        (returns.get(&ka), returns.get(&kb)),
                        (Some(x), Some(y)) if x != y
                    );
                    if !still_distinct {
                        changed = true;
                        break;
                    }
                }
            }
        }
        self.success_returns.push(returns);
        changed
    }

    /// Cheap path: scan only the not-yet-scanned failures into the existing
    /// catalog, then grow every trace's windows by the new catalog suffix.
    fn extend_catalog(
        &mut self,
        store: &ColumnStore,
        new_traces: &[Trace],
        first_new: usize,
        pool: Option<&WorkerPool>,
    ) {
        self.view_stats.extensions += 1;
        let old_len = self.catalog.len();
        while self.scanned < self.failures.len() {
            // Mirrors the batch cap semantics: checked before each failure.
            if self.catalog.len() >= self.config.max_predicates {
                break;
            }
            let t = store.trace(self.failures[self.scanned]);
            scan_failure(
                &t.events,
                &self.config,
                &self.stats,
                &self.orders,
                &self.success_returns,
                &mut self.catalog,
            );
            self.scanned += 1;
        }
        let catalog = Arc::new(self.catalog.clone());
        // Old traces: extend by the new suffix (skip entirely when the
        // catalog didn't grow). New traces: evaluate the whole catalog.
        if catalog.len() > old_len {
            let old: Vec<Trace> = (self.base..first_new).map(|g| store.trace(g)).collect();
            let old_windows = std::mem::take(&mut self.windows);
            debug_assert_eq!(old_windows.len(), old.len());
            self.windows = evaluate_all(&catalog, old, old_windows, pool);
            self.view_stats.windows_evaluated +=
                ((first_new - self.base) * (catalog.len() - old_len)) as u64;
        }
        let fresh = evaluate_all(
            &catalog,
            new_traces.to_vec(),
            new_traces.iter().map(|_| Vec::new()).collect(),
            pool,
        );
        self.view_stats.windows_evaluated += (fresh.len() * catalog.len()) as u64;
        self.windows.extend(fresh);
        self.sync_occurrence(old_len, first_new);
    }

    /// Expensive path: pass-1 statistics moved, so the whole failure scan
    /// (and every trace's windows) must be recomputed against them.
    fn rebuild_catalog(&mut self, store: &ColumnStore, pool: Option<&WorkerPool>) {
        self.view_stats.rebuilds += 1;
        self.catalog = PredicateCatalog::new();
        self.scanned = 0;
        while self.scanned < self.failures.len() {
            if self.catalog.len() >= self.config.max_predicates {
                break;
            }
            let t = store.trace(self.failures[self.scanned]);
            scan_failure(
                &t.events,
                &self.config,
                &self.stats,
                &self.orders,
                &self.success_returns,
                &mut self.catalog,
            );
            self.scanned += 1;
        }
        let catalog = Arc::new(self.catalog.clone());
        let all: Vec<Trace> = (self.base..self.seen).map(|g| store.trace(g)).collect();
        let empty: Vec<Vec<Option<(Time, Time)>>> = all.iter().map(|_| Vec::new()).collect();
        self.windows = evaluate_all(&catalog, all, empty, pool);
        self.view_stats.windows_evaluated += ((self.seen - self.base) * catalog.len()) as u64;
        self.occurrence.clear();
        self.sync_occurrence(0, self.base);
    }

    /// Brings the per-predicate occurrence bitmaps in line with `windows`:
    /// bitmaps for predicates `>= from` are (re)built from every trace's
    /// windows, earlier ones only grow their universe and absorb the
    /// windows of traces `>= first_new`.
    fn sync_occurrence(&mut self, from: usize, first_new: usize) {
        let n = self.seen - self.base;
        debug_assert!(self.occurrence.len() == from);
        for occ in &mut self.occurrence {
            occ.resize(n);
        }
        while self.occurrence.len() < self.catalog.len() {
            self.occurrence.push(DenseBitSet::new(n));
        }
        if self.catalog.len() > from {
            for (rel, w) in self.windows.iter().enumerate() {
                for (p, window) in w.iter().enumerate().skip(from) {
                    if window.is_some() {
                        self.occurrence[p].insert(rel);
                    }
                }
            }
        }
        // Newly appended traces' bits for the old predicate prefix.
        for rel in (first_new - self.base)..n {
            for (p, window) in self.windows[rel].iter().enumerate().take(from) {
                if window.is_some() {
                    self.occurrence[p].insert(rel);
                }
            }
        }
    }

    /// Assembles and publishes the full analysis from incremental state.
    fn publish(&mut self, store: &ColumnStore, rebuilt: bool) {
        // Majority signature, with the batch tie-break (last maximum in
        // ascending signature order).
        let signature = self
            .sig_counts
            .iter()
            .max_by_key(|(_, c)| **c)
            .map(|(sig, _)| sig.clone())
            .expect("publish requires failures");
        let mut catalog = self.catalog.clone();
        let failure = catalog.insert(Predicate {
            kind: PredicateKind::Failure {
                signature: signature.clone(),
            },
            safe: true,
            action: None,
        });

        // Full observations over the retained window: stored catalog
        // windows plus the failure window.
        let observations: Vec<RunObservation> = (self.base..self.seen)
            .map(|gid| {
                let mut w = self.windows[gid - self.base].clone();
                let f_window = match store.signature(gid) {
                    Some(sig) if sig == signature => {
                        let (_, duration) = store.header(gid);
                        Some((duration, duration))
                    }
                    _ => None,
                };
                w.push(f_window);
                RunObservation::from_windows(store.failed(gid), w)
            })
            .collect();

        // SD scores from the occurrence bitmaps.
        let failed_runs = self.failures.len();
        let total_runs = self.seen - self.base;
        let mut scores: Vec<PredicateScore> = self
            .occurrence
            .iter()
            .map(|occ| PredicateScore {
                holds_in: occ.count(),
                holds_in_failed: occ.intersection_count(&self.failed_bits),
                failed_runs,
                total_runs,
            })
            .collect();
        let sig_holds = self.sig_counts[&signature];
        scores.push(PredicateScore {
            holds_in: sig_holds,
            holds_in_failed: sig_holds,
            failed_runs,
            total_runs,
        });
        let sd = SdReport::from_scores(scores);
        let candidates = sd.aid_candidates(&catalog, failure);

        // AC-DAG: fold incrementally when the node set is unchanged and the
        // stored windows were not recomputed; replay otherwise.
        let reusable = !rebuilt
            && self.builder.as_ref().is_some_and(|c| {
                c.candidates == candidates && c.failure == failure && c.signature == signature
            });
        if !reusable {
            self.view_stats.dag_rebuilds += 1;
            self.builder = Some(DagCache {
                candidates: candidates.clone(),
                failure,
                signature: signature.clone(),
                builder: AcDagBuilder::new(&candidates, failure),
                folded: 0,
            });
        }
        let cache = self.builder.as_mut().expect("just ensured");
        while cache.folded < self.failures.len() {
            let gid = self.failures[cache.folded];
            cache
                .builder
                .add_run(&catalog, &observations[gid - self.base], &TypeAwarePolicy);
            cache.folded += 1;
            if reusable {
                self.view_stats.dag_runs_folded += 1;
            }
        }
        let dag = cache.builder.build();

        self.analysis = Some(AidAnalysis {
            extraction: Extraction {
                catalog,
                observations,
                failure,
                signature,
            },
            sd,
            candidates,
            dag,
        });
    }
}

/// Evaluates (or extends) windows for a batch of traces, fanning across the
/// pool when one is provided. `prefixes[i]` is trace `i`'s already-computed
/// window prefix (empty for a full evaluation); results join in input order
/// either way.
fn evaluate_all(
    catalog: &Arc<PredicateCatalog>,
    traces: Vec<Trace>,
    prefixes: Vec<Vec<Option<(Time, Time)>>>,
    pool: Option<&WorkerPool>,
) -> Vec<Vec<Option<(Time, Time)>>> {
    debug_assert_eq!(traces.len(), prefixes.len());
    match pool {
        Some(pool) if traces.len() > 1 => {
            let jobs: Vec<Box<dyn FnOnce() -> Vec<Option<(Time, Time)>> + Send>> = traces
                .into_iter()
                .zip(prefixes)
                .map(|(t, mut w)| {
                    let catalog = Arc::clone(catalog);
                    Box::new(move || {
                        evaluate_extend(&catalog, &t, &mut w);
                        w
                    }) as Box<dyn FnOnce() -> Vec<Option<(Time, Time)>> + Send>
                })
                .collect();
            pool.run_batch(jobs)
        }
        _ => traces
            .into_iter()
            .zip(prefixes)
            .map(|(t, mut w)| {
                evaluate_extend(catalog, &t, &mut w);
                w
            })
            .collect(),
    }
}
