//! The sharded, append-only columnar trace store.
//!
//! Traces are normalized (see [`Trace::normalize`]) and decomposed into
//! flat, per-field columns — trace-level (seed, outcome, duration, event
//! extent), event-level (method, instance, thread, start/end, return,
//! exception, access extent), and access-level (object, time, kind/locked
//! flags) — with every string (method names, object names, exception and
//! failure kinds) interned into shared arenas. Columns live in `S` shards;
//! global trace id `g` maps to row `g / S` of shard `g % S`, so a batch
//! append can **fan the per-trace columnarization across the
//! `aid_engine` worker pool** and still produce a byte-identical store:
//! blocks are joined by submission index, and shard/row placement depends
//! only on the (deterministic) arrival order.
//!
//! The store is lossless: [`ColumnStore::trace`] re-materializes any trace
//! exactly, and `ColumnStore::to_trace_set` reproduces a `TraceSet` whose
//! `aid_trace::codec::encode` output is byte-identical to one built by
//! pushing the same traces into a `TraceSet` directly.
//!
//! For unbounded streams the store additionally supports **windowed
//! retention**: [`ColumnStore::evict_front`] compacts every shard in place,
//! dropping the oldest traces while global ids stay stable (ids are never
//! reused; the retained window is `retained()`). A [`RetentionPolicy`]
//! expresses the window by trace count and/or age in append batches, and
//! [`ColumnStore::apply_retention`] enforces it after each append. The
//! lossless re-encode property holds *per retained window*: `to_trace_set`
//! reproduces exactly the suffix of traces still retained (interning
//! arenas are append-only and survive eviction, so remap tables from
//! earlier batches stay valid).

use aid_engine::WorkerPool;
use aid_obs::Counter;
use aid_trace::{
    AccessEvent, AccessKind, ChannelId, ChannelTag, FailureSignature, MethodEvent, MethodId,
    MethodTag, MsgEvent, MsgKind, ObjectId, ObjectTag, Outcome, ThreadId, Time, Trace, TraceSet,
};
use aid_util::IdArena;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Tag type for interned exception/failure kind strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KindTag;

/// Event flag bits (packed into one `u8` column).
const EV_HAS_RET: u8 = 1;
const EV_CAUGHT: u8 = 2;
/// Access flag bits.
const AC_WRITE: u8 = 1;
const AC_LOCKED: u8 = 2;
/// Message kind/flag packing: the low two bits carry the lifecycle kind,
/// bit 2 the duplicate flag.
const MG_KIND_MASK: u8 = 0b11;
const MG_DUP: u8 = 4;

fn pack_msg_kind(kind: MsgKind, dup: bool) -> u8 {
    let k = match kind {
        MsgKind::Send => 0,
        MsgKind::Deliver => 1,
        MsgKind::Recv => 2,
        MsgKind::Drop => 3,
    };
    k | if dup { MG_DUP } else { 0 }
}

fn unpack_msg_kind(bits: u8) -> (MsgKind, bool) {
    let kind = match bits & MG_KIND_MASK {
        0 => MsgKind::Send,
        1 => MsgKind::Deliver,
        2 => MsgKind::Recv,
        _ => MsgKind::Drop,
    };
    (kind, bits & MG_DUP != 0)
}

/// One shard's columns. A shard holds every trace whose global id is
/// congruent to its index modulo the shard count, in arrival order.
#[derive(Clone, Debug, Default)]
struct Shard {
    // Per-trace columns.
    seed: Vec<u64>,
    duration: Vec<Time>,
    /// Logical append tick (the store clock at append time), for age-based
    /// retention.
    tick: Vec<u64>,
    /// Interned failure kind + 1; `0` marks a successful run.
    fail_kind: Vec<u32>,
    fail_method: Vec<u32>,
    event_start: Vec<u32>,
    event_len: Vec<u32>,
    // Per-event columns.
    ev_method: Vec<u32>,
    ev_instance: Vec<u32>,
    ev_thread: Vec<u32>,
    ev_start: Vec<Time>,
    ev_end: Vec<Time>,
    ev_ret: Vec<i64>,
    /// Interned exception kind + 1; `0` marks no exception.
    ev_exc: Vec<u32>,
    ev_flags: Vec<u8>,
    acc_start: Vec<u32>,
    acc_len: Vec<u32>,
    // Per-access columns.
    ac_object: Vec<u32>,
    ac_at: Vec<Time>,
    ac_flags: Vec<u8>,
    // Per-trace message extents (empty extents for channel-free traces).
    msg_start: Vec<u32>,
    msg_len: Vec<u32>,
    // Per-message columns.
    mg_channel: Vec<u32>,
    mg_kind: Vec<u8>,
    mg_seq: Vec<u32>,
    mg_value: Vec<i64>,
    mg_sent: Vec<Time>,
    mg_at: Vec<Time>,
    mg_thread: Vec<u32>,
}

impl Shard {
    /// Appends a one-trace block, fixing up extent offsets.
    fn push_block(&mut self, b: Block, tick: u64) {
        let ev_base = self.ev_method.len() as u32;
        let ac_base = self.ac_object.len() as u32;
        let mg_base = self.mg_channel.len() as u32;
        self.seed.push(b.seed);
        self.duration.push(b.duration);
        self.tick.push(tick);
        self.fail_kind.push(b.fail_kind);
        self.fail_method.push(b.fail_method);
        self.event_start.push(ev_base);
        self.event_len.push(b.ev_method.len() as u32);
        self.ev_method.extend(b.ev_method);
        self.ev_instance.extend(b.ev_instance);
        self.ev_thread.extend(b.ev_thread);
        self.ev_start.extend(b.ev_start);
        self.ev_end.extend(b.ev_end);
        self.ev_ret.extend(b.ev_ret);
        self.ev_exc.extend(b.ev_exc);
        self.ev_flags.extend(b.ev_flags);
        self.acc_start
            .extend(b.acc_start.iter().map(|&s| s + ac_base));
        self.acc_len.extend(b.acc_len);
        self.ac_object.extend(b.ac_object);
        self.ac_at.extend(b.ac_at);
        self.ac_flags.extend(b.ac_flags);
        self.msg_start.push(mg_base);
        self.msg_len.push(b.mg_channel.len() as u32);
        self.mg_channel.extend(b.mg_channel);
        self.mg_kind.extend(b.mg_kind);
        self.mg_seq.extend(b.mg_seq);
        self.mg_value.extend(b.mg_value);
        self.mg_sent.extend(b.mg_sent);
        self.mg_at.extend(b.mg_at);
        self.mg_thread.extend(b.mg_thread);
    }

    /// Compacts the shard in place, dropping its oldest `rows` traces and
    /// every event/access row they own, and rebasing the surviving extent
    /// offsets so `push_block`'s `len()`-relative bases stay consistent.
    fn trim_front(&mut self, rows: usize) {
        if rows == 0 {
            return;
        }
        // `event_start[r]` equals the total event rows of traces `0..r`
        // (blocks append contiguously), so the event/access drop extents
        // fall straight out of the extent columns.
        let ev_drop = if rows == self.seed.len() {
            self.ev_method.len()
        } else {
            self.event_start[rows] as usize
        };
        let ac_drop = if ev_drop == self.ev_method.len() {
            self.ac_object.len()
        } else {
            self.acc_start[ev_drop] as usize
        };
        self.seed.drain(..rows);
        self.duration.drain(..rows);
        self.tick.drain(..rows);
        self.fail_kind.drain(..rows);
        self.fail_method.drain(..rows);
        self.event_start.drain(..rows);
        self.event_len.drain(..rows);
        for start in &mut self.event_start {
            *start -= ev_drop as u32;
        }
        self.ev_method.drain(..ev_drop);
        self.ev_instance.drain(..ev_drop);
        self.ev_thread.drain(..ev_drop);
        self.ev_start.drain(..ev_drop);
        self.ev_end.drain(..ev_drop);
        self.ev_ret.drain(..ev_drop);
        self.ev_exc.drain(..ev_drop);
        self.ev_flags.drain(..ev_drop);
        self.acc_start.drain(..ev_drop);
        self.acc_len.drain(..ev_drop);
        for start in &mut self.acc_start {
            *start -= ac_drop as u32;
        }
        self.ac_object.drain(..ac_drop);
        self.ac_at.drain(..ac_drop);
        self.ac_flags.drain(..ac_drop);
        // Message rows owned by the dropped traces, straight from the
        // per-trace extent columns (same contiguity argument as events).
        let mg_drop = if rows == self.msg_start.len() {
            self.mg_channel.len()
        } else {
            self.msg_start[rows] as usize
        };
        self.msg_start.drain(..rows);
        self.msg_len.drain(..rows);
        for start in &mut self.msg_start {
            *start -= mg_drop as u32;
        }
        self.mg_channel.drain(..mg_drop);
        self.mg_kind.drain(..mg_drop);
        self.mg_seq.drain(..mg_drop);
        self.mg_value.drain(..mg_drop);
        self.mg_sent.drain(..mg_drop);
        self.mg_at.drain(..mg_drop);
        self.mg_thread.drain(..mg_drop);
    }
}

/// A windowed-retention policy: how much of the stream's tail the store
/// keeps. `None` bounds mean unbounded (the default keeps everything).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Keep at most this many traces (oldest evicted first).
    pub max_traces: Option<usize>,
    /// Keep only traces at most this many append batches old: a trace
    /// appended by the latest batch has age 0. `Some(0)` retains only the
    /// most recent batch.
    pub max_age: Option<u64>,
}

impl RetentionPolicy {
    /// A count-bounded window.
    pub fn keep_last(max_traces: usize) -> RetentionPolicy {
        RetentionPolicy {
            max_traces: Some(max_traces),
            max_age: None,
        }
    }

    /// True when the policy never evicts.
    pub fn is_unbounded(&self) -> bool {
        self.max_traces.is_none() && self.max_age.is_none()
    }
}

/// The columnar form of one normalized trace, produced off-thread and
/// appended to a shard with a cheap offset fix-up.
#[derive(Clone, Debug, Default)]
struct Block {
    seed: u64,
    duration: Time,
    fail_kind: u32,
    fail_method: u32,
    ev_method: Vec<u32>,
    ev_instance: Vec<u32>,
    ev_thread: Vec<u32>,
    ev_start: Vec<Time>,
    ev_end: Vec<Time>,
    ev_ret: Vec<i64>,
    ev_exc: Vec<u32>,
    ev_flags: Vec<u8>,
    acc_start: Vec<u32>,
    acc_len: Vec<u32>,
    ac_object: Vec<u32>,
    ac_at: Vec<Time>,
    ac_flags: Vec<u8>,
    mg_channel: Vec<u32>,
    mg_kind: Vec<u8>,
    mg_seq: Vec<u32>,
    mg_value: Vec<i64>,
    mg_sent: Vec<Time>,
    mg_at: Vec<Time>,
    mg_thread: Vec<u32>,
}

/// Builds the block for one trace. `trace` must already be remapped into
/// the store's arenas; `kind_ids` resolves exception/failure kind strings
/// (every kind occurring in the trace is guaranteed present).
fn build_block(mut trace: Trace, kind_ids: &BTreeMap<String, u32>) -> Block {
    trace.normalize();
    let mut b = Block {
        seed: trace.seed,
        duration: trace.duration,
        ..Block::default()
    };
    match &trace.outcome {
        Outcome::Success => {}
        Outcome::Failure(sig) => {
            b.fail_kind = kind_ids[&sig.kind] + 1;
            b.fail_method = sig.method.raw();
        }
    }
    for e in &trace.events {
        b.ev_method.push(e.method.raw());
        b.ev_instance.push(e.instance);
        b.ev_thread.push(e.thread.raw());
        b.ev_start.push(e.start);
        b.ev_end.push(e.end);
        b.ev_ret.push(e.returned.unwrap_or(0));
        b.ev_exc
            .push(e.exception.as_ref().map_or(0, |k| kind_ids[k] + 1));
        let mut flags = 0u8;
        if e.returned.is_some() {
            flags |= EV_HAS_RET;
        }
        if e.caught {
            flags |= EV_CAUGHT;
        }
        b.ev_flags.push(flags);
        b.acc_start.push(b.ac_object.len() as u32);
        b.acc_len.push(e.accesses.len() as u32);
        for a in &e.accesses {
            b.ac_object.push(a.object.raw());
            b.ac_at.push(a.at);
            let mut aflags = 0u8;
            if a.kind == AccessKind::Write {
                aflags |= AC_WRITE;
            }
            if a.locked {
                aflags |= AC_LOCKED;
            }
            b.ac_flags.push(aflags);
        }
    }
    for m in &trace.msgs {
        b.mg_channel.push(m.channel.raw());
        b.mg_kind.push(pack_msg_kind(m.kind, m.dup));
        b.mg_seq.push(m.seq);
        b.mg_value.push(m.value);
        b.mg_sent.push(m.sent);
        b.mg_at.push(m.at);
        b.mg_thread.push(m.thread.raw());
    }
    b
}

/// Column-store sizing and memory telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ColumnStats {
    /// Traces retained.
    pub traces: usize,
    /// Event rows retained.
    pub events: usize,
    /// Access rows retained.
    pub accesses: usize,
    /// Message rows retained.
    pub msgs: usize,
    /// Shards.
    pub shards: usize,
    /// Traces evicted by retention over the store's lifetime.
    pub evicted: usize,
    /// Compaction passes that actually dropped rows.
    pub compactions: usize,
}

/// The sharded columnar trace store.
#[derive(Debug)]
pub struct ColumnStore {
    methods: IdArena<String, MethodTag>,
    objects: IdArena<String, ObjectTag>,
    channels: IdArena<String, ChannelTag>,
    kinds: IdArena<String, KindTag>,
    shards: Vec<Shard>,
    /// First retained global id (== traces evicted so far).
    base: usize,
    /// One past the newest global id (== traces ever appended). Shard
    /// placement and row arithmetic key off this, so ids never shift.
    total: usize,
    /// Logical clock, advanced once per append batch.
    clock: u64,
    /// Compaction passes that dropped at least one trace — an [`aid_obs`]
    /// cell, so [`ColumnStats`] reads the same counter plane as the rest
    /// of the stack. Per-store (detached): the server folds per-store
    /// deltas into its registry-backed counters.
    compactions: Counter,
}

impl Clone for ColumnStore {
    /// Clones the store with value semantics: the clone gets its own
    /// compaction cell at the current count, not a share of this one.
    fn clone(&self) -> ColumnStore {
        let compactions = Counter::detached();
        compactions.add(self.compactions.get());
        ColumnStore {
            methods: self.methods.clone(),
            objects: self.objects.clone(),
            channels: self.channels.clone(),
            kinds: self.kinds.clone(),
            shards: self.shards.clone(),
            base: self.base,
            total: self.total,
            clock: self.clock,
            compactions,
        }
    }
}

impl ColumnStore {
    /// An empty store with `shards` shards (clamped to at least one).
    pub fn new(shards: usize) -> ColumnStore {
        ColumnStore {
            methods: IdArena::new(),
            objects: IdArena::new(),
            channels: IdArena::new(),
            kinds: IdArena::new(),
            shards: vec![Shard::default(); shards.max(1)],
            base: 0,
            total: 0,
            clock: 0,
            compactions: Counter::detached(),
        }
    }

    /// Number of traces retained.
    pub fn len(&self) -> usize {
        self.total - self.base
    }

    /// True when no trace is retained.
    pub fn is_empty(&self) -> bool {
        self.total == self.base
    }

    /// The retained window of global ids: eviction drops the front, so
    /// valid ids are `base()..high()` and never shift or get reused.
    pub fn retained(&self) -> std::ops::Range<usize> {
        self.base..self.total
    }

    /// First retained global id (equals the traces evicted so far).
    pub fn base(&self) -> usize {
        self.base
    }

    /// One past the newest global id (traces ever appended).
    pub fn high(&self) -> usize {
        self.total
    }

    /// The logical clock: append batches seen so far. A trace's age is the
    /// number of batches appended after its own.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The append tick of trace `gid` (for age-based retention).
    pub fn tick(&self, gid: usize) -> u64 {
        let (s, row) = self.locate(gid);
        self.shards[s].tick[row]
    }

    /// Shard index and (compaction-adjusted) row of a retained `gid`.
    fn locate(&self, gid: usize) -> (usize, usize) {
        assert!(
            gid >= self.base && gid < self.total,
            "trace {gid} out of retained window {}..{}",
            self.base,
            self.total
        );
        let shards = self.shards.len();
        let s = gid % shards;
        // Rows evicted from shard `s`: ids in `0..base` congruent to `s`.
        let dropped = self.base / shards + usize::from(s < self.base % shards);
        (s, gid / shards - dropped)
    }

    /// Evicts the `count` oldest retained traces (clamped to the retained
    /// window), compacting every shard in place. Returns the number
    /// evicted.
    pub fn evict_front(&mut self, count: usize) -> usize {
        let count = count.min(self.len());
        if count == 0 {
            return 0;
        }
        let shards = self.shards.len();
        let (old, new) = (self.base, self.base + count);
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let before = old / shards + usize::from(s < old % shards);
            let after = new / shards + usize::from(s < new % shards);
            shard.trim_front(after - before);
        }
        self.base = new;
        self.compactions.inc();
        count
    }

    /// Applies a retention policy: evicts the oldest traces until both the
    /// count bound and the age bound hold. Returns the number evicted.
    pub fn apply_retention(&mut self, policy: RetentionPolicy) -> usize {
        if policy.is_unbounded() {
            return 0;
        }
        let mut drop = 0usize;
        if let Some(max) = policy.max_traces {
            drop = self.len().saturating_sub(max);
        }
        if let Some(max_age) = policy.max_age {
            let newest = self.clock.saturating_sub(1);
            while self.base + drop < self.total {
                let age = newest.saturating_sub(self.tick(self.base + drop));
                if age <= max_age {
                    break;
                }
                drop += 1;
            }
        }
        self.evict_front(drop)
    }

    /// Interned method names.
    pub fn methods(&self) -> &IdArena<String, MethodTag> {
        &self.methods
    }

    /// Interned object names.
    pub fn objects(&self) -> &IdArena<String, ObjectTag> {
        &self.objects
    }

    /// Interned channel names.
    pub fn channels(&self) -> &IdArena<String, ChannelTag> {
        &self.channels
    }

    /// Row-count telemetry.
    pub fn stats(&self) -> ColumnStats {
        ColumnStats {
            traces: self.len(),
            events: self.shards.iter().map(|s| s.ev_method.len()).sum(),
            accesses: self.shards.iter().map(|s| s.ac_object.len()).sum(),
            msgs: self.shards.iter().map(|s| s.mg_channel.len()).sum(),
            shards: self.shards.len(),
            evicted: self.base,
            compactions: self.compactions.get() as usize,
        }
    }

    /// Builds the maps from a source's arenas into this store's, interning
    /// unseen names. Identity when the source declares the same names in
    /// the same order (the common single-source case).
    pub fn remap_tables(
        &mut self,
        methods: &IdArena<String, MethodTag>,
        objects: &IdArena<String, ObjectTag>,
        channels: &IdArena<String, ChannelTag>,
    ) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let m = methods
            .iter()
            .map(|(_, name)| self.methods.intern(name.clone()).raw())
            .collect();
        let o = objects
            .iter()
            .map(|(_, name)| self.objects.intern(name.clone()).raw())
            .collect();
        let c = channels
            .iter()
            .map(|(_, name)| self.channels.intern(name.clone()).raw())
            .collect();
        (m, o, c)
    }

    /// Appends a batch of traces whose ids are relative to the given remap
    /// tables (from [`ColumnStore::remap_tables`]), columnarizing across
    /// `pool` when one is provided. Returns the global ids assigned, in
    /// input order — placement is identical with and without a pool.
    pub fn append_batch(
        &mut self,
        traces: Vec<Trace>,
        method_map: &[u32],
        object_map: &[u32],
        channel_map: &[u32],
        pool: Option<&WorkerPool>,
    ) -> std::ops::Range<usize> {
        // Serial phase: remap ids into store arenas and intern every
        // exception/failure kind (arena mutation cannot fan out).
        let mut remapped: Vec<Trace> = Vec::with_capacity(traces.len());
        for mut t in traces {
            if let Outcome::Failure(sig) = &mut t.outcome {
                self.kinds.intern(sig.kind.clone());
                sig.method = MethodId::from_raw(method_map[sig.method.index()]);
            }
            for e in &mut t.events {
                e.method = MethodId::from_raw(method_map[e.method.index()]);
                if let Some(k) = &e.exception {
                    self.kinds.intern(k.clone());
                }
                for a in &mut e.accesses {
                    a.object = ObjectId::from_raw(object_map[a.object.index()]);
                }
            }
            for m in &mut t.msgs {
                m.channel = ChannelId::from_raw(channel_map[m.channel.index()]);
            }
            remapped.push(t);
        }
        // Frozen kind table for the (possibly off-thread) packing phase.
        let kind_ids: Arc<BTreeMap<String, u32>> = Arc::new(
            self.kinds
                .iter()
                .map(|(id, name)| (name.clone(), id.raw()))
                .collect(),
        );
        let blocks: Vec<Block> = match pool {
            Some(pool) if remapped.len() > 1 => {
                let jobs: Vec<Box<dyn FnOnce() -> Block + Send>> = remapped
                    .into_iter()
                    .map(|t| {
                        let kind_ids = Arc::clone(&kind_ids);
                        Box::new(move || build_block(t, &kind_ids))
                            as Box<dyn FnOnce() -> Block + Send>
                    })
                    .collect();
                pool.run_batch(jobs)
            }
            _ => remapped
                .into_iter()
                .map(|t| build_block(t, &kind_ids))
                .collect(),
        };
        let stamp = self.clock;
        self.clock += 1;
        let first = self.total;
        for block in blocks {
            let shard = self.total % self.shards.len();
            self.shards[shard].push_block(block, stamp);
            self.total += 1;
        }
        first..self.total
    }

    /// Re-materializes the trace with global id `gid`.
    ///
    /// Panics if `gid` is outside the retained window.
    pub fn trace(&self, gid: usize) -> Trace {
        let (shard, row) = self.locate(gid);
        let s = &self.shards[shard];
        let outcome = match s.fail_kind[row] {
            0 => Outcome::Success,
            k => Outcome::Failure(FailureSignature {
                kind: self.kinds.resolve(aid_util::Id::from_raw(k - 1)).clone(),
                method: MethodId::from_raw(s.fail_method[row]),
            }),
        };
        let ev0 = s.event_start[row] as usize;
        let ev1 = ev0 + s.event_len[row] as usize;
        let events = (ev0..ev1)
            .map(|e| {
                let ac0 = s.acc_start[e] as usize;
                let ac1 = ac0 + s.acc_len[e] as usize;
                MethodEvent {
                    method: MethodId::from_raw(s.ev_method[e]),
                    instance: s.ev_instance[e],
                    thread: ThreadId::from_raw(s.ev_thread[e]),
                    start: s.ev_start[e],
                    end: s.ev_end[e],
                    accesses: (ac0..ac1)
                        .map(|a| AccessEvent {
                            object: ObjectId::from_raw(s.ac_object[a]),
                            kind: if s.ac_flags[a] & AC_WRITE != 0 {
                                AccessKind::Write
                            } else {
                                AccessKind::Read
                            },
                            at: s.ac_at[a],
                            locked: s.ac_flags[a] & AC_LOCKED != 0,
                        })
                        .collect(),
                    returned: (s.ev_flags[e] & EV_HAS_RET != 0).then(|| s.ev_ret[e]),
                    exception: match s.ev_exc[e] {
                        0 => None,
                        k => Some(self.kinds.resolve(aid_util::Id::from_raw(k - 1)).clone()),
                    },
                    caught: s.ev_flags[e] & EV_CAUGHT != 0,
                }
            })
            .collect();
        let mg0 = s.msg_start[row] as usize;
        let mg1 = mg0 + s.msg_len[row] as usize;
        let msgs = (mg0..mg1)
            .map(|m| {
                let (kind, dup) = unpack_msg_kind(s.mg_kind[m]);
                MsgEvent {
                    channel: ChannelId::from_raw(s.mg_channel[m]),
                    kind,
                    seq: s.mg_seq[m],
                    value: s.mg_value[m],
                    sent: s.mg_sent[m],
                    at: s.mg_at[m],
                    thread: ThreadId::from_raw(s.mg_thread[m]),
                    dup,
                }
            })
            .collect();
        Trace {
            seed: s.seed[row],
            events,
            msgs,
            outcome,
            duration: s.duration[row],
        }
    }

    /// Whether the trace with global id `gid` failed, without materializing
    /// events.
    pub fn failed(&self, gid: usize) -> bool {
        let (s, row) = self.locate(gid);
        self.shards[s].fail_kind[row] != 0
    }

    /// The failure signature of trace `gid`, if it failed.
    pub fn signature(&self, gid: usize) -> Option<FailureSignature> {
        let (shard, row) = self.locate(gid);
        let s = &self.shards[shard];
        match s.fail_kind[row] {
            0 => None,
            k => Some(FailureSignature {
                kind: self.kinds.resolve(aid_util::Id::from_raw(k - 1)).clone(),
                method: MethodId::from_raw(s.fail_method[row]),
            }),
        }
    }

    /// The `(seed, duration)` of trace `gid` without materializing events.
    pub fn header(&self, gid: usize) -> (u64, Time) {
        let (s, row) = self.locate(gid);
        (self.shards[s].seed[row], self.shards[s].duration[row])
    }

    /// Re-materializes the retained window as a labeled set (arenas +
    /// retained traces in global order) — the bridge back into every batch
    /// API. The interning arenas are append-only, so after eviction they
    /// may carry names only evicted traces used; the traces themselves are
    /// exactly the retained suffix.
    pub fn to_trace_set(&self) -> TraceSet {
        TraceSet {
            methods: self.methods.clone(),
            objects: self.objects.clone(),
            channels: self.channels.clone(),
            traces: self.retained().map(|g| self.trace(g)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_trace::codec;

    fn sample_set() -> TraceSet {
        let mut set = TraceSet::new();
        let m0 = set.method("Reader");
        let m1 = set.method("Writer");
        let o = set.object("slot");
        for seed in 0..7u64 {
            let failed = seed % 3 == 0;
            let mut t = Trace {
                seed,
                events: vec![
                    MethodEvent {
                        method: m0,
                        instance: 0,
                        thread: ThreadId::from_raw(0),
                        start: seed,
                        end: seed + 10,
                        accesses: vec![AccessEvent {
                            object: o,
                            kind: AccessKind::Read,
                            at: seed + 1,
                            locked: seed % 2 == 0,
                        }],
                        returned: (seed % 2 == 0).then_some(seed as i64 - 3),
                        exception: None,
                        caught: false,
                    },
                    MethodEvent {
                        method: m1,
                        instance: 0,
                        thread: ThreadId::from_raw(1),
                        start: seed + 2,
                        end: seed + 5,
                        accesses: vec![AccessEvent {
                            object: o,
                            kind: AccessKind::Write,
                            at: seed + 3,
                            locked: false,
                        }],
                        returned: None,
                        exception: failed.then(|| "Overflow".to_string()),
                        caught: seed == 6,
                    },
                ],
                msgs: vec![],
                outcome: if failed {
                    Outcome::Failure(FailureSignature {
                        kind: "Overflow".into(),
                        method: m1,
                    })
                } else {
                    Outcome::Success
                },
                duration: seed + 20,
            };
            t.normalize();
            set.push(t);
        }
        set
    }

    #[test]
    fn columnar_roundtrip_is_byte_identical() {
        let set = sample_set();
        for shards in [1usize, 2, 3, 8] {
            let mut store = ColumnStore::new(shards);
            let (m, o, c) = store.remap_tables(&set.methods, &set.objects, &set.channels);
            let range = store.append_batch(set.traces.clone(), &m, &o, &c, None);
            assert_eq!(range, 0..set.traces.len());
            assert_eq!(store.len(), set.traces.len());
            let back = store.to_trace_set();
            assert_eq!(codec::encode(&back), codec::encode(&set), "{shards} shards");
        }
    }

    #[test]
    fn pooled_and_serial_columnarization_agree() {
        let set = sample_set();
        let pool = WorkerPool::new(3);
        let mut serial = ColumnStore::new(4);
        let (m, o, c) = serial.remap_tables(&set.methods, &set.objects, &set.channels);
        serial.append_batch(set.traces.clone(), &m, &o, &c, None);
        let mut pooled = ColumnStore::new(4);
        let (m, o, c) = pooled.remap_tables(&set.methods, &set.objects, &set.channels);
        pooled.append_batch(set.traces.clone(), &m, &o, &c, Some(&pool));
        assert_eq!(
            codec::encode(&serial.to_trace_set()),
            codec::encode(&pooled.to_trace_set())
        );
    }

    #[test]
    fn cross_source_remap_unifies_arenas() {
        // Second source declares the same names in a different order.
        let set = sample_set();
        let mut other = TraceSet::new();
        let w = other.method("Writer");
        other.method("Reader");
        other.object("slot");
        let mut t = Trace {
            seed: 99,
            events: vec![MethodEvent {
                method: w,
                instance: 0,
                thread: ThreadId::from_raw(0),
                start: 0,
                end: 1,
                accesses: vec![],
                returned: None,
                exception: None,
                caught: false,
            }],
            msgs: vec![],
            outcome: Outcome::Success,
            duration: 2,
        };
        t.normalize();
        other.push(t);

        let mut store = ColumnStore::new(2);
        let (m, o, c) = store.remap_tables(&set.methods, &set.objects, &set.channels);
        store.append_batch(set.traces.clone(), &m, &o, &c, None);
        let (m2, o2, c2) = store.remap_tables(&other.methods, &other.objects, &other.channels);
        store.append_batch(other.traces.clone(), &m2, &o2, &c2, None);
        // "Writer" from the second source resolves to the store's id 1.
        let last = store.trace(store.len() - 1);
        assert_eq!(last.events[0].method.raw(), 1);
        assert_eq!(store.methods().len(), 2, "no duplicate names");
        assert_eq!(store.failed(0), set.traces[0].failed());
        assert_eq!(
            store.signature(0),
            None.or_else(|| match &set.traces[0].outcome {
                Outcome::Failure(s) => Some(s.clone()),
                Outcome::Success => None,
            })
        );
    }

    #[test]
    fn headers_match_materialized_traces() {
        let set = sample_set();
        let mut store = ColumnStore::new(3);
        let (m, o, c) = store.remap_tables(&set.methods, &set.objects, &set.channels);
        store.append_batch(set.traces.clone(), &m, &o, &c, None);
        for g in 0..store.len() {
            let t = store.trace(g);
            assert_eq!(store.header(g), (t.seed, t.duration));
            assert_eq!(store.failed(g), t.failed());
        }
        let stats = store.stats();
        assert_eq!(stats.traces, 7);
        assert_eq!(stats.events, 14);
        assert_eq!(stats.accesses, 14);
        assert_eq!(stats.shards, 3);
        assert_eq!(stats.evicted, 0);
        assert_eq!(stats.compactions, 0);
    }

    /// The retained window after any front eviction re-encodes exactly as
    /// the same suffix pushed into a fresh `TraceSet` over the full arenas.
    fn assert_window_identical(store: &ColumnStore, set: &TraceSet, evicted: usize) {
        let expected = TraceSet {
            methods: set.methods.clone(),
            objects: set.objects.clone(),
            channels: set.channels.clone(),
            traces: set.traces[evicted..].to_vec(),
        };
        assert_eq!(
            codec::encode(&store.to_trace_set()),
            codec::encode(&expected),
            "window after evicting {evicted}"
        );
    }

    #[test]
    fn eviction_preserves_retained_window() {
        let set = sample_set();
        for shards in [1usize, 2, 3, 8] {
            let mut store = ColumnStore::new(shards);
            let (m, o, c) = store.remap_tables(&set.methods, &set.objects, &set.channels);
            store.append_batch(set.traces.clone(), &m, &o, &c, None);
            let mut evicted = 0;
            for step in [1usize, 2, 1] {
                evicted += store.evict_front(step);
                assert_eq!(store.base(), evicted, "{shards} shards");
                assert_eq!(store.len(), set.traces.len() - evicted);
                assert_window_identical(&store, &set, evicted);
                for g in store.retained() {
                    let t = store.trace(g);
                    assert_eq!(store.header(g), (t.seed, t.duration));
                    assert_eq!(store.failed(g), t.failed());
                }
            }
            let stats = store.stats();
            assert_eq!(stats.evicted, 4);
            assert_eq!(stats.compactions, 3);
            // Appends after eviction keep global ids monotone and the
            // window property intact.
            let range = store.append_batch(set.traces.clone(), &m, &o, &c, None);
            assert_eq!(range, 7..14);
            assert_eq!(store.len(), 3 + 7);
            let mut full = set.clone();
            full.traces.extend(set.traces.iter().cloned());
            assert_window_identical(&store, &full, 4);
        }
    }

    #[test]
    fn evict_everything_then_refill() {
        let set = sample_set();
        let mut store = ColumnStore::new(3);
        let (m, o, c) = store.remap_tables(&set.methods, &set.objects, &set.channels);
        store.append_batch(set.traces.clone(), &m, &o, &c, None);
        assert_eq!(store.evict_front(usize::MAX), 7);
        assert!(store.is_empty());
        assert_eq!(store.retained(), 7..7);
        let range = store.append_batch(set.traces.clone(), &m, &o, &c, None);
        assert_eq!(range, 7..14);
        assert_window_identical(&store, &set, 0);
    }

    #[test]
    fn retention_policy_bounds_count_and_age() {
        let set = sample_set();
        let mut store = ColumnStore::new(2);
        let (m, o, c) = store.remap_tables(&set.methods, &set.objects, &set.channels);
        // Three batches → ticks 0, 1, 2.
        for _ in 0..3 {
            store.append_batch(set.traces.clone(), &m, &o, &c, None);
        }
        assert_eq!(store.clock(), 3);
        assert_eq!(store.apply_retention(RetentionPolicy::default()), 0);
        // Count bound: keep the last 10.
        let evicted = store.apply_retention(RetentionPolicy::keep_last(10));
        assert_eq!(evicted, 11);
        assert_eq!(store.len(), 10);
        // Age bound: batch 0 (age 2) is already gone; age ≤ 0 keeps only
        // the newest batch's traces.
        let evicted = store.apply_retention(RetentionPolicy {
            max_traces: None,
            max_age: Some(0),
        });
        assert_eq!(evicted, 3);
        assert_eq!(store.len(), 7);
        assert!(store.retained().all(|g| store.tick(g) == 2));
        assert_window_identical(
            &store,
            &TraceSet {
                methods: set.methods.clone(),
                objects: set.objects.clone(),
                channels: set.channels.clone(),
                traces: set.traces.clone(),
            },
            0,
        );
    }
}
