//! `aid_store` — streaming trace ingestion, a sharded columnar trace store,
//! and incrementally maintained observation-phase analysis.
//!
//! The paper's offline phase consumes *accumulated production telemetry*:
//! many labeled runs, arriving over time, from which predicates, SD scores,
//! and the AC-DAG are derived (§3–§4). The library crates analyze an
//! in-memory [`TraceSet`] batch-style; this crate is the persistence-shaped
//! layer between them and a long-running service:
//!
//! 1. **Streaming ingestion** ([`StreamDecoder`]) — a resumable decoder for
//!    the `aid_trace::codec` line format that consumes byte chunks of any
//!    size, validates per line, and **quarantines** malformed records
//!    (typed [`aid_trace::codec::DecodeErrorKind`]) instead of aborting
//!    the batch.
//! 2. **Columnar storage** ([`ColumnStore`]) — traces normalized into
//!    append-only per-field columns with interned names, sharded by trace
//!    id so batch appends fan their columnarization across the
//!    `aid_engine` worker pool; losslessly re-materializable.
//! 3. **Incremental analysis** ([`StoreView`]) — predicate catalog,
//!    per-run observations, SD scores, and the AC-DAG kept up to date as
//!    traces arrive, structurally identical to batch recomputation at
//!    every prefix (the equivalence contract).
//!
//! [`TraceStore`] bundles the three behind one handle and bridges into the
//! engine: [`TraceStore::snapshot`] freezes the current analysis into a
//! [`StoreSnapshot`] whose [`StoreSnapshot::discovery_job`] sources an
//! `aid_engine` session's observation window from the store instead of
//! fresh simulator runs.
//!
//! ```
//! use aid_store::{StoreConfig, TraceStore};
//! use aid_predicates::ExtractionConfig;
//! use aid_sim::{ProgramBuilder, Simulator};
//! use aid_sim::program::{Cmp, Expr, Reg};
//! use aid_trace::codec;
//!
//! // A concurrent program with an intermittent atomicity violation.
//! let mut b = ProgramBuilder::new("demo");
//! let flag = b.object("flag", 0);
//! let len = b.object("len", 10);
//! let slot = b.object("slot", 10);
//! let reader = b.method("Reader", |m| {
//!     m.write(flag, Expr::Const(1))
//!         .read(len, Reg(0))
//!         .jitter(5, 40)
//!         .throw_if_obj(slot, Cmp::Gt, Expr::Reg(Reg(0)), "IndexOutOfRange");
//! });
//! let writer = b.method("Writer", |m| {
//!     m.jitter(1, 10).write(len, Expr::Const(20)).write(slot, Expr::Const(11));
//! });
//! let writer_entry = b.method("WriterEntry", |m| {
//!     m.wait_until(Expr::Obj(flag), Cmp::Eq, Expr::Const(1)).jitter(0, 30).call(writer);
//! });
//! let main = b.method("Main", |m| {
//!     m.spawn_named("t1").spawn_named("t2").join(1).join(2);
//! });
//! b.thread("main", main, true);
//! b.thread("t1", reader, false);
//! b.thread("t2", writer_entry, false);
//! let sim = Simulator::new(b.build());
//! let logs = sim.collect_balanced(10, 10, 20_000);
//!
//! // Ship the logs as a byte stream into a store, in awkward chunks.
//! let encoded = codec::encode(&logs);
//! let mut store = TraceStore::new(StoreConfig::default());
//! for chunk in encoded.as_bytes().chunks(97) {
//!     store.ingest_bytes(chunk);
//! }
//! store.finish_ingest();
//! assert_eq!(store.len(), logs.traces.len());
//!
//! // The incremental analysis equals the batch pipeline's, exactly.
//! let incremental = store.refresh().expect("failures present");
//! let batch = aid_core::analyze(&logs, &ExtractionConfig::default());
//! assert_eq!(incremental.dag, batch.dag);
//! assert_eq!(incremental.candidates, batch.candidates);
//! ```

pub mod columns;
pub mod ingest;
pub mod view;

pub use columns::{ColumnStats, ColumnStore, KindTag, RetentionPolicy};
pub use ingest::{IngestStats, Quarantined, StreamDecoder};
pub use view::{StoreView, ViewStats};

use aid_causal::AcDag;
use aid_core::{AidAnalysis, Strategy};
use aid_engine::{DiscoveryJob, WorkerPool};
use aid_obs::{Histogram, MetricsRegistry};
use aid_predicates::{ExtractionConfig, PredicateCatalog, PredicateId};
use aid_sim::Simulator;
use aid_trace::{FailureSignature, Trace, TraceSet};
use std::sync::Arc;

/// Store sizing and analysis configuration.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Column shards (traces are distributed round-robin by global id).
    pub shards: usize,
    /// Extraction configuration the incremental view analyzes under.
    pub extraction: ExtractionConfig,
    /// Windowed-retention policy, enforced after every append. The default
    /// keeps everything (the classic batch-accumulation behavior).
    pub retention: RetentionPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 8,
            extraction: ExtractionConfig::default(),
            retention: RetentionPolicy::default(),
        }
    }
}

/// Aggregate store telemetry.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Streaming-decoder counters (bytes, lines, quarantines).
    pub ingest: IngestStats,
    /// Column row counts.
    pub columns: ColumnStats,
    /// Incremental-analysis path counters.
    pub view: ViewStats,
}

/// A frozen, shareable image of the store's analysis, for sourcing engine
/// discovery sessions from accumulated telemetry instead of fresh runs.
#[derive(Clone)]
pub struct StoreSnapshot {
    /// The full predicate catalog (failure indicator last).
    pub catalog: Arc<PredicateCatalog>,
    /// The failure indicator.
    pub failure: PredicateId,
    /// The grouped failure signature the analysis targets.
    pub signature: FailureSignature,
    /// The AC-DAG over the safely intervenable candidates.
    pub dag: Arc<AcDag>,
    /// How many traces the snapshot covers.
    pub traces: usize,
}

impl StoreSnapshot {
    /// Builds a simulator-backed [`DiscoveryJob`] whose observation window
    /// (catalog, failure indicator, AC-DAG) comes from this snapshot. The
    /// session's *interventions* still execute on `simulator` — the store
    /// replaces the collection phase, not the intervention phase.
    #[allow(clippy::too_many_arguments)]
    pub fn discovery_job(
        &self,
        name: impl Into<String>,
        simulator: Arc<Simulator>,
        runs_per_round: usize,
        first_seed: u64,
        strategy: Strategy,
        seed: u64,
    ) -> DiscoveryJob {
        DiscoveryJob::sim(
            name,
            Arc::clone(&self.dag),
            simulator,
            Arc::clone(&self.catalog),
            self.failure,
            runs_per_round,
            first_seed,
            strategy,
            seed,
        )
    }
}

/// The assembled store: streaming decoder → sharded columns → incremental
/// analysis, behind one handle.
pub struct TraceStore {
    config: StoreConfig,
    decoder: StreamDecoder,
    columns: ColumnStore,
    view: StoreView,
    pool: Option<Arc<WorkerPool>>,
    /// Wall time of each [`TraceStore::refresh`] (`store.refresh_us` when
    /// registered; a disabled no-op cell otherwise).
    refresh_timer: Histogram,
}

impl TraceStore {
    /// An empty store that columnarizes and evaluates on the caller's
    /// thread.
    pub fn new(config: StoreConfig) -> TraceStore {
        let columns = ColumnStore::new(config.shards);
        let view = StoreView::new(config.extraction.clone());
        TraceStore {
            config,
            decoder: StreamDecoder::new(),
            columns,
            view,
            pool: None,
            refresh_timer: Histogram::detached(false),
        }
    }

    /// An empty store that fans columnarization and evaluation across
    /// `pool` — typically [`aid_engine::Engine::pool`], so ingestion shares
    /// threads with the discovery sessions it feeds.
    pub fn with_pool(config: StoreConfig, pool: Arc<WorkerPool>) -> TraceStore {
        let mut s = TraceStore::new(config);
        s.pool = Some(pool);
        s
    }

    /// An empty store whose refresh latency registers in `metrics` as the
    /// `store.refresh_us` histogram (shared by every store on the same
    /// registry — refresh cost is a per-server distribution, while
    /// per-store counts stay in [`StoreStats`]).
    pub fn with_metrics(
        config: StoreConfig,
        pool: Option<Arc<WorkerPool>>,
        metrics: &MetricsRegistry,
    ) -> TraceStore {
        let mut s = TraceStore::new(config);
        s.pool = pool;
        s.refresh_timer = metrics.histogram("store.refresh_us");
        s
    }

    /// Feeds a chunk of encoded log bytes (any framing; may end mid-line).
    /// Completed traces are appended to the columns immediately.
    pub fn ingest_bytes(&mut self, chunk: &[u8]) {
        self.decoder.push_bytes(chunk);
        self.flush_decoded();
    }

    /// Feeds a string chunk of encoded log.
    pub fn ingest_str(&mut self, chunk: &str) {
        self.ingest_bytes(chunk.as_bytes());
    }

    /// Drains a reader to completion (e.g. a log file), then flushes
    /// end-of-stream state.
    pub fn ingest_reader(&mut self, reader: &mut impl std::io::Read) -> std::io::Result<u64> {
        self.decoder.push_reader(reader)?;
        self.finish_ingest();
        Ok(self.decoder.stats().bytes)
    }

    /// Flushes end-of-stream decoder state (quarantining a trailing
    /// partial line and any unterminated trace rather than ingesting
    /// them). The store accepts further streams afterwards.
    pub fn finish_ingest(&mut self) {
        self.decoder.finish();
        self.flush_decoded();
    }

    fn flush_decoded(&mut self) {
        let traces = self.decoder.drain();
        if traces.is_empty() {
            return;
        }
        let (m, o, c) = self.columns.remap_tables(
            self.decoder.methods(),
            self.decoder.objects(),
            self.decoder.channels(),
        );
        self.columns
            .append_batch(traces, &m, &o, &c, self.pool.as_deref());
        self.columns.apply_retention(self.config.retention);
    }

    /// Appends every trace of an in-memory set (names resolved through the
    /// set's own arenas).
    pub fn append_set(&mut self, set: &TraceSet) {
        let (m, o, c) = self
            .columns
            .remap_tables(&set.methods, &set.objects, &set.channels);
        self.columns
            .append_batch(set.traces.clone(), &m, &o, &c, self.pool.as_deref());
        self.columns.apply_retention(self.config.retention);
    }

    /// Appends one live trace — e.g. straight from
    /// [`Simulator::run`] — with `names` supplying the id→name tables the
    /// trace's ids are relative to (use `Simulator::trace_set_skeleton`).
    pub fn append_run(&mut self, names: &TraceSet, trace: Trace) {
        let (m, o, c) = self
            .columns
            .remap_tables(&names.methods, &names.objects, &names.channels);
        self.columns
            .append_batch(vec![trace], &m, &o, &c, self.pool.as_deref());
        self.columns.apply_retention(self.config.retention);
    }

    /// Evicts the `count` oldest retained traces immediately, regardless of
    /// the configured policy. Returns the number evicted.
    pub fn evict_front(&mut self, count: usize) -> usize {
        self.columns.evict_front(count)
    }

    /// Applies a one-off retention policy (the configured one runs after
    /// every append regardless). Returns the number evicted.
    pub fn apply_retention(&mut self, policy: RetentionPolicy) -> usize {
        self.columns.apply_retention(policy)
    }

    /// Traces retained.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The retained window of global ids (ids are stable across eviction).
    pub fn retained(&self) -> std::ops::Range<usize> {
        self.columns.retained()
    }

    /// `(successes, failures)` retained.
    pub fn counts(&self) -> (usize, usize) {
        let failed = self
            .columns
            .retained()
            .filter(|&g| self.columns.failed(g))
            .count();
        (self.columns.len() - failed, failed)
    }

    /// Re-materializes one stored trace.
    pub fn trace(&self, gid: usize) -> Trace {
        self.columns.trace(gid)
    }

    /// Re-materializes the whole store as a labeled set.
    pub fn to_trace_set(&self) -> TraceSet {
        self.columns.to_trace_set()
    }

    /// Direct access to the columnar layer.
    pub fn columns(&self) -> &ColumnStore {
        &self.columns
    }

    /// Records quarantined by the streaming decoder.
    pub fn quarantine(&self) -> &[Quarantined] {
        self.decoder.quarantine()
    }

    /// Takes (and releases) the accumulated quarantine entries; the
    /// `quarantined` counter in [`IngestStats`] still records the total.
    pub fn drain_quarantine(&mut self) -> Vec<Quarantined> {
        self.decoder.drain_quarantine()
    }

    /// The active extraction configuration.
    pub fn extraction_config(&self) -> &ExtractionConfig {
        &self.config.extraction
    }

    /// Brings the incremental analysis up to date with every stored trace
    /// and returns it (`None` until at least one failure is stored).
    pub fn refresh(&mut self) -> Option<&AidAnalysis> {
        let started = std::time::Instant::now();
        self.view.refresh(&self.columns, self.pool.as_deref());
        self.refresh_timer.record_duration(started.elapsed());
        self.view.analysis()
    }

    /// The analysis as of the last [`TraceStore::refresh`].
    pub fn analysis(&self) -> Option<&AidAnalysis> {
        self.view.analysis()
    }

    /// Records one standing-query delta decision (re-probed vs skipped
    /// predicates) into the view telemetry.
    pub fn record_probe_delta(&mut self, reprobed: u64, skipped: u64) {
        self.view.record_probe_delta(reprobed, skipped);
    }

    /// Aggregate telemetry.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            ingest: self.decoder.stats(),
            columns: self.columns.stats(),
            view: self.view.stats(),
        }
    }

    /// Freezes the current analysis (as of the last refresh) for engine
    /// consumption. `None` until a refresh has published one.
    pub fn snapshot(&self) -> Option<StoreSnapshot> {
        self.view.analysis().map(|a| StoreSnapshot {
            catalog: Arc::new(a.extraction.catalog.clone()),
            failure: a.extraction.failure,
            signature: a.extraction.signature.clone(),
            dag: Arc::new(a.dag.clone()),
            traces: self.view.seen() - self.view.base(),
        })
    }
}
