//! Traditional Adaptive Group Testing — the baseline AID is compared
//! against in Figures 7 and 8.
//!
//! TAGT treats the predicates as an unstructured set: it knows nothing of
//! the AC-DAG, intervenes on groups in random order, and draws conclusions
//! only about the predicates it intervened on. The strategy is Hwang-style
//! binary splitting: test the remaining pool for contamination (does
//! intervening on all of it stop the failure?), then binary-search one
//! causal predicate; a negative half-test permanently clears that half, a
//! positive one narrows the search. The initial contamination test is
//! skipped — the original failing executions already prove a cause exists
//! among the fully-discriminative predicates.

use crate::executor::BatchExecutor;
use crate::giwp::{DiscoveryState, Phase};
use aid_predicates::PredicateId;
use rand::seq::SliceRandom;

/// Runs TAGT over the state's remaining pool until no causal predicates are
/// left to find. Decisions land in `state.causal` / `state.spurious`.
pub fn tagt<E: BatchExecutor>(state: &mut DiscoveryState, exec: &mut E) {
    let mut first = true;
    loop {
        if state.remaining.is_empty() {
            break;
        }
        // Contamination test on the whole remaining pool.
        if !first {
            let pool: Vec<PredicateId> = state.remaining.iter().copied().collect();
            let stopped = state.round(exec, &pool, Phase::Tagt);
            if !stopped {
                // No causal predicate remains: everything left is spurious.
                let left: Vec<PredicateId> = state.remaining.iter().copied().collect();
                for p in left {
                    state.mark_spurious(p);
                }
                break;
            }
        }
        first = false;
        // Binary-search one causal predicate within the contaminated pool.
        let mut search: Vec<PredicateId> = state.remaining.iter().copied().collect();
        search.shuffle(&mut state.rng);
        while search.len() > 1 {
            let half = search.len().div_ceil(2);
            let group: Vec<PredicateId> = search[..half].to_vec();
            let stopped = state.round(exec, &group, Phase::Tagt);
            if stopped {
                // Causal inside the intervened half; the complement's status
                // stays unknown (it returns to the pool).
                search = group;
            } else {
                // The intervened half is clean: permanently discard it.
                for p in &group {
                    state.mark_spurious(*p);
                    if let Some(last) = state.log.last_mut() {
                        if !last.pruned.contains(p) {
                            last.pruned.push(*p);
                        }
                    }
                }
                search.drain(..half);
            }
        }
        let found = search[0];
        state.mark_causal(found);
        if let Some(last) = state.log.last_mut() {
            last.confirmed.push(found);
        }
    }
}

/// The paper's analytic worst case for TAGT: `D · ⌈log₂ N⌉` rounds to find
/// `D` causal predicates among `N` (Section 6: "a simple binary search
/// algorithm can find each of the D defective items in at most log N group
/// tests"). Figure 7's TAGT column uses this accounting.
pub fn analytic_worst_case(n: usize, d: usize) -> usize {
    if n == 0 || d == 0 {
        return 0;
    }
    d * (usize::BITS - (n - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{figure4_ground_truth, OracleExecutor};
    use aid_causal::AcDag;

    fn flat_dag(truth: &crate::oracle::GroundTruth) -> AcDag {
        // TAGT ignores structure; give it a DAG where every candidate only
        // points at F.
        let edges: Vec<_> = truth
            .candidates()
            .iter()
            .map(|&c| (c, truth.failure()))
            .collect();
        AcDag::from_edges(&truth.candidates(), truth.failure(), &edges)
    }

    #[test]
    fn tagt_recovers_exact_causal_set() {
        let truth = figure4_ground_truth();
        let dag = flat_dag(&truth);
        for seed in 0..20 {
            let mut exec = OracleExecutor::new(truth.clone());
            let mut state = DiscoveryState::new(&dag, false, seed);
            tagt(&mut state, &mut exec);
            let causal: Vec<u32> = state.causal.iter().map(|p| p.raw()).collect();
            assert_eq!(causal, vec![0, 1, 10], "seed {seed}");
        }
    }

    #[test]
    fn tagt_round_count_is_near_d_log_n() {
        let truth = figure4_ground_truth();
        let dag = flat_dag(&truth);
        let analytic = analytic_worst_case(11, 3);
        assert_eq!(analytic, 12);
        let mut worst = 0;
        for seed in 0..30 {
            let mut exec = OracleExecutor::new(truth.clone());
            let mut state = DiscoveryState::new(&dag, false, seed);
            tagt(&mut state, &mut exec);
            worst = worst.max(state.rounds());
        }
        // Measured worst case: D·log plus the contamination tests.
        assert!(
            worst >= 8 && worst <= analytic + 4,
            "worst {worst} should be near the analytic bound {analytic}"
        );
    }

    #[test]
    fn analytic_worst_case_matches_paper_rows() {
        // Figure 7's TAGT column for the four rows that follow the formula
        // exactly: Cosmos DB (64, 7) → 42, Network (24, 1) → 5,
        // BuildAndTest (25, 3) → 15, HealthTelemetry (93, 10) → 70.
        assert_eq!(analytic_worst_case(64, 7), 42);
        assert_eq!(analytic_worst_case(24, 1), 5);
        assert_eq!(analytic_worst_case(25, 3), 15);
        assert_eq!(analytic_worst_case(93, 10), 70);
    }
}
