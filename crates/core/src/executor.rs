//! The intervention-execution abstraction.
//!
//! The discovery algorithms never touch a program directly: they ask an
//! [`Executor`] to re-run the application while forcing a set of predicates
//! to their successful-run values, and get back per-run observations. This
//! inversion keeps `aid-core` independent of the runtime substrate — the
//! simulator (`aid-sim`), the deterministic oracle ([`crate::oracle`]), or a
//! user's own harness all plug in here.

use aid_predicates::PredicateId;
use aid_util::DenseBitSet;

/// What one (re-)execution under an intervention showed.
#[derive(Clone, Debug)]
pub struct ExecutionRecord {
    /// Whether the grouped failure occurred in this run.
    pub failed: bool,
    /// Which catalog predicates held in this run (indexed by raw id).
    pub observed: DenseBitSet,
}

impl ExecutionRecord {
    /// Whether predicate `p` held.
    pub fn holds(&self, p: PredicateId) -> bool {
        self.observed.contains(p.index())
    }
}

/// Re-executes the application under group interventions.
pub trait Executor {
    /// Runs the application while intervening on (repairing) `predicates`,
    /// possibly several times; returns one record per run. One call = one
    /// intervention *round* (the unit Figure 7/8 count).
    fn intervene(&mut self, predicates: &[PredicateId]) -> Vec<ExecutionRecord>;
}

/// Blanket impl so `&mut E` can be passed down recursive calls.
impl<E: Executor + ?Sized> Executor for &mut E {
    fn intervene(&mut self, predicates: &[PredicateId]) -> Vec<ExecutionRecord> {
        (**self).intervene(predicates)
    }
}

/// An executor wrapper that counts rounds and can enforce a budget.
pub struct CountingExecutor<E> {
    inner: E,
    /// Rounds performed so far.
    pub rounds: usize,
    /// Optional hard budget (panics when exceeded — used by tests to catch
    /// non-terminating strategies).
    pub budget: Option<usize>,
}

impl<E> CountingExecutor<E> {
    /// Wraps an executor.
    pub fn new(inner: E) -> Self {
        CountingExecutor {
            inner,
            rounds: 0,
            budget: None,
        }
    }

    /// Wraps with a hard round budget.
    pub fn with_budget(inner: E, budget: usize) -> Self {
        CountingExecutor {
            inner,
            rounds: 0,
            budget: Some(budget),
        }
    }

    /// The wrapped executor.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: Executor> Executor for CountingExecutor<E> {
    fn intervene(&mut self, predicates: &[PredicateId]) -> Vec<ExecutionRecord> {
        self.rounds += 1;
        if let Some(b) = self.budget {
            assert!(
                self.rounds <= b,
                "intervention budget {b} exceeded — runaway strategy?"
            );
        }
        self.inner.intervene(predicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;
    impl Executor for Null {
        fn intervene(&mut self, _predicates: &[PredicateId]) -> Vec<ExecutionRecord> {
            vec![ExecutionRecord {
                failed: false,
                observed: DenseBitSet::new(4),
            }]
        }
    }

    #[test]
    fn counting_executor_counts() {
        let mut e = CountingExecutor::new(Null);
        e.intervene(&[]);
        e.intervene(&[]);
        assert_eq!(e.rounds, 2);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn budget_is_enforced() {
        let mut e = CountingExecutor::with_budget(Null, 1);
        e.intervene(&[]);
        e.intervene(&[]);
    }
}
