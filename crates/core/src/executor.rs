//! The intervention-execution abstraction.
//!
//! The discovery algorithms never touch a program directly: they ask an
//! [`Executor`] to re-run the application while forcing a set of predicates
//! to their successful-run values, and get back per-run observations. This
//! inversion keeps `aid-core` independent of the runtime substrate — the
//! simulator (`aid-sim`), the deterministic oracle ([`crate::oracle`]), or a
//! user's own harness all plug in here.
//!
//! Two granularities exist:
//!
//! * [`Executor`] — one intervention *round* (one predicate group) at a
//!   time; the unit Figures 7/8 count.
//! * [`BatchExecutor`] — a whole slate of rounds at once. Discovery drains
//!   its rounds through this trait (see [`crate::giwp::DiscoveryState`]), so
//!   an implementation that owns a worker pool (`aid_engine`) can fan every
//!   run of every group in the batch across OS threads and join the records
//!   deterministically. Every [`Executor`] is a (serial) [`BatchExecutor`]
//!   via a blanket impl, so existing executors keep working unchanged.

use aid_predicates::PredicateId;
use aid_util::DenseBitSet;

/// What one (re-)execution under an intervention showed.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionRecord {
    /// Whether the grouped failure occurred in this run.
    pub failed: bool,
    /// Which catalog predicates held in this run (indexed by raw id).
    pub observed: DenseBitSet,
}

impl ExecutionRecord {
    /// Whether predicate `p` held.
    pub fn holds(&self, p: PredicateId) -> bool {
        self.observed.contains(p.index())
    }
}

/// Re-executes the application under group interventions.
pub trait Executor {
    /// Runs the application while intervening on (repairing) `predicates`,
    /// possibly several times; returns one record per run. One call = one
    /// intervention *round* (the unit Figure 7/8 count).
    fn intervene(&mut self, predicates: &[PredicateId]) -> Vec<ExecutionRecord>;
}

/// Blanket impl so `&mut E` can be passed down recursive calls.
impl<E: Executor + ?Sized> Executor for &mut E {
    fn intervene(&mut self, predicates: &[PredicateId]) -> Vec<ExecutionRecord> {
        (**self).intervene(predicates)
    }
}

/// Re-executes the application under a whole batch of group interventions.
///
/// This is the contract the discovery algorithms actually drive: each round
/// arrives as a batch (usually of one group; see
/// [`crate::giwp::DiscoveryState::round_batch`] for multi-group slates), and
/// the implementation decides how to schedule the constituent runs. The
/// serial blanket impl below executes groups in order; `aid_engine`'s pooled
/// executor fans all runs of all groups across a worker pool and memoizes
/// repeated (program, intervention set, seed) executions.
///
/// Contract: the returned vector has exactly one entry per input group, in
/// input order, and every entry is non-empty. Implementations must be
/// deterministic functions of (their own state, the batch) — never of
/// scheduling order — so that discovery results are reproducible regardless
/// of worker count.
pub trait BatchExecutor {
    /// Executes every group in `groups`; `result[i]` holds the records of
    /// `groups[i]`. Each group still counts as one intervention round.
    fn intervene_batch(&mut self, groups: &[Vec<PredicateId>]) -> Vec<Vec<ExecutionRecord>>;
}

/// Every per-round executor is a serial batch executor.
impl<E: Executor> BatchExecutor for E {
    fn intervene_batch(&mut self, groups: &[Vec<PredicateId>]) -> Vec<Vec<ExecutionRecord>> {
        groups.iter().map(|g| self.intervene(g)).collect()
    }
}

/// Typed outcome for a [`CountingExecutor`] whose round budget ran out.
///
/// Carries the configured budget and the rounds already performed so callers
/// can report precisely how far a strategy got before exhaustion instead of
/// silently truncating the discovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// The configured hard budget.
    pub budget: usize,
    /// Rounds performed before the budget ran out (always `== budget`).
    pub rounds: usize,
}

impl std::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "intervention budget {} exhausted after {} rounds",
            self.budget, self.rounds
        )
    }
}

impl std::error::Error for BudgetExhausted {}

/// An executor wrapper that counts rounds and can enforce a budget.
pub struct CountingExecutor<E> {
    inner: E,
    /// Rounds performed so far.
    pub rounds: usize,
    /// Optional hard budget. When it runs out, [`CountingExecutor::try_intervene`]
    /// returns a typed [`BudgetExhausted`] without executing; the plain
    /// [`Executor::intervene`] path panics with its message (used by tests to
    /// catch non-terminating strategies).
    pub budget: Option<usize>,
}

impl<E> CountingExecutor<E> {
    /// Wraps an executor.
    pub fn new(inner: E) -> Self {
        CountingExecutor {
            inner,
            rounds: 0,
            budget: None,
        }
    }

    /// Wraps with a hard round budget.
    pub fn with_budget(inner: E, budget: usize) -> Self {
        CountingExecutor {
            inner,
            rounds: 0,
            budget: Some(budget),
        }
    }

    /// Rounds left before exhaustion (`None` = unbudgeted).
    pub fn remaining(&self) -> Option<usize> {
        self.budget.map(|b| b.saturating_sub(self.rounds))
    }

    /// Whether the budget has run out.
    pub fn exhausted(&self) -> bool {
        self.remaining() == Some(0)
    }

    /// The wrapped executor.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: Executor> CountingExecutor<E> {
    /// Runs one round, or reports [`BudgetExhausted`] *without executing*
    /// when the budget has run out — exhaustion is an explicit, typed
    /// outcome, never a silent truncation of the record stream.
    pub fn try_intervene(
        &mut self,
        predicates: &[PredicateId],
    ) -> Result<Vec<ExecutionRecord>, BudgetExhausted> {
        if self.exhausted() {
            return Err(BudgetExhausted {
                budget: self.budget.expect("exhausted implies budgeted"),
                rounds: self.rounds,
            });
        }
        self.rounds += 1;
        Ok(self.inner.intervene(predicates))
    }
}

impl<E: Executor> Executor for CountingExecutor<E> {
    fn intervene(&mut self, predicates: &[PredicateId]) -> Vec<ExecutionRecord> {
        self.try_intervene(predicates)
            .unwrap_or_else(|e| panic!("{e} — runaway strategy?"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null {
        calls: usize,
    }

    impl Executor for Null {
        fn intervene(&mut self, _predicates: &[PredicateId]) -> Vec<ExecutionRecord> {
            self.calls += 1;
            vec![ExecutionRecord {
                failed: false,
                observed: DenseBitSet::new(4),
            }]
        }
    }

    #[test]
    fn counting_executor_counts() {
        let mut e = CountingExecutor::new(Null { calls: 0 });
        e.intervene(&[]);
        e.intervene(&[]);
        assert_eq!(e.rounds, 2);
        assert_eq!(e.remaining(), None);
        assert!(!e.exhausted());
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn budget_is_enforced() {
        let mut e = CountingExecutor::with_budget(Null { calls: 0 }, 1);
        e.intervene(&[]);
        e.intervene(&[]);
    }

    #[test]
    fn exhaustion_is_a_typed_outcome_and_does_not_execute() {
        let mut e = CountingExecutor::with_budget(Null { calls: 0 }, 2);
        assert_eq!(e.remaining(), Some(2));
        assert!(e.try_intervene(&[]).is_ok());
        assert!(e.try_intervene(&[]).is_ok());
        assert!(e.exhausted());
        let err = e.try_intervene(&[]).unwrap_err();
        assert_eq!(
            err,
            BudgetExhausted {
                budget: 2,
                rounds: 2
            }
        );
        assert_eq!(
            err.to_string(),
            "intervention budget 2 exhausted after 2 rounds"
        );
        // The inner executor must not have run for the rejected round.
        assert_eq!(e.rounds, 2);
        assert_eq!(e.into_inner().calls, 2, "no silent extra execution");
    }

    #[test]
    fn serial_batch_blanket_preserves_group_order() {
        let mut e = CountingExecutor::new(Null { calls: 0 });
        let groups = vec![vec![], vec![PredicateId::from_raw(1)], vec![]];
        let out = e.intervene_batch(&groups);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.len() == 1));
        assert_eq!(e.rounds, 3, "each batched group is still one round");
    }
}
