//! Adaptive Interventional Debugging (AID) — the paper's core contribution.
//!
//! Given predicate logs from successful and failed executions of an
//! intermittently failing application, AID pinpoints the root-cause
//! predicate and produces a causal explanation path to the failure, using a
//! sequence of group interventions guided by the approximate causal DAG:
//!
//! 1. [`pipeline::analyze`] — statistical debugging + AC-DAG construction
//!    (no interventions yet);
//! 2. [`discovery::discover`] — Algorithm 3: optional branch pruning
//!    (Algorithm 2) followed by group intervention with pruning
//!    (Algorithm 1), against any [`Executor`];
//! 3. [`pipeline::render_explanation`] — the developer-facing causal chain.
//!
//! Baselines and ablations ([`Strategy`]): TAGT (traditional adaptive group
//! testing), AID-P (no interventional pruning), AID-P-B (no pruning, no
//! branch pruning).

pub mod branch;
pub mod discovery;
pub mod executor;
pub mod giwp;
pub mod oracle;
pub mod pipeline;
pub mod tagt;

pub use branch::branch_prune;
pub use discovery::{discover, discover_with_options, DiscoverOptions, DiscoveryResult, Strategy};
pub use executor::{BatchExecutor, BudgetExhausted, CountingExecutor, ExecutionRecord, Executor};
pub use giwp::{giwp, DiscoveryState, Phase, RoundLog};
pub use oracle::{
    classify_symptom, figure4_ground_truth, FlakyOracle, GroundTruth, OracleExecutor, SymptomClass,
};
pub use pipeline::{
    analyze, analyze_with_policy, failure_signatures, render_explanation, AidAnalysis,
};
pub use tagt::{analytic_worst_case, tagt};
