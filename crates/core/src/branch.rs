//! Branch pruning — Algorithm 2.
//!
//! Walks the AC-DAG by topological level. Single-node levels extend the
//! accepted chain; multi-node levels are *junctions*. Since the causal path
//! is unique (Assumption 2), at most one branch at a junction can be causal,
//! so the junction is resolved with a halving search over branches —
//! `⌈log₂ B⌉` rounds — and the last surviving branch is *not* tested
//! (Section 6.3.1's `J·log T` bound; GIWP vets the survivors afterwards).
//! Definition 2 pruning applies to every branch round too, which is how the
//! Npgsql case discards symptom predicates during this phase.

use crate::executor::BatchExecutor;
use crate::giwp::{DiscoveryState, Phase};
use aid_predicates::PredicateId;
use rand::seq::SliceRandom;
use std::collections::BTreeSet;

/// Runs branch pruning, reducing the undecided pool to (approximately) a
/// chain. Returns the accepted traversal order for diagnostics.
pub fn branch_prune<E: BatchExecutor>(
    state: &mut DiscoveryState,
    exec: &mut E,
) -> Vec<PredicateId> {
    let mut accepted: Vec<PredicateId> = Vec::new();
    let mut accepted_set: BTreeSet<PredicateId> = BTreeSet::new();
    loop {
        let active: Vec<PredicateId> = state
            .remaining
            .iter()
            .copied()
            .filter(|p| !accepted_set.contains(p))
            .collect();
        if active.is_empty() {
            break;
        }
        let dag = state.dag;
        let minimal = dag.minimal_of(&active);
        debug_assert!(!minimal.is_empty());
        if minimal.len() == 1 {
            accepted.push(minimal[0]);
            accepted_set.insert(minimal[0]);
            continue;
        }
        // A junction: build branches and resolve by halving.
        let mut branches = dag.branches(&active);
        branches.shuffle(&mut state.rng);
        while branches.len() > 1 {
            let half = branches.len().div_ceil(2);
            let group: Vec<PredicateId> = branches[..half].concat();
            let stopped = state.round(exec, &group, Phase::Branch);
            if stopped {
                // The causal branch is inside `group`; by path uniqueness
                // the other half cannot be causal — prune it wholesale.
                let losers: Vec<PredicateId> = branches[half..].concat();
                for p in losers {
                    state.mark_spurious(p);
                    if let Some(last) = state.log.last_mut() {
                        if !last.pruned.contains(&p) {
                            last.pruned.push(p);
                        }
                    }
                }
                branches.truncate(half);
            } else {
                // The intervened half contains no causal predicate.
                for p in group {
                    state.mark_spurious(p);
                    if let Some(last) = state.log.last_mut() {
                        if !last.pruned.contains(&p) {
                            last.pruned.push(p);
                        }
                    }
                }
                branches.drain(..half);
            }
            // Definition 2 pruning inside round() may have nibbled at the
            // survivors; drop emptied branches.
            for b in &mut branches {
                b.retain(|p| state.remaining.contains(p));
            }
            branches.retain(|b| !b.is_empty());
        }
        // Line 16: drop nodes no longer reachable from the accepted chain.
        if !accepted.is_empty() {
            let unreachable: Vec<PredicateId> = state
                .remaining
                .iter()
                .copied()
                .filter(|p| !accepted_set.contains(p))
                .filter(|&u| !accepted.iter().any(|&c| dag.reaches(c, u)))
                .collect();
            // Survivors of the junction just resolved are reachable from
            // the accepted prefix in well-formed DAGs, so this clears only
            // nodes orphaned by branch removal.
            for u in unreachable {
                state.mark_spurious(u);
            }
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{figure4_ground_truth, OracleExecutor};
    use aid_causal::AcDag;

    /// The Figure 4(a) AC-DAG: P1→P2→P3→{P4→P5→P6, P7→{P8→P9, P11}};
    /// P6, P9 dead-end into F; P10 sits below P11 (shared descendant), then
    /// F. Built from Hasse edges; `from_edges` closes transitively.
    fn figure4_dag() -> AcDag {
        let p = |i: u32| PredicateId::from_raw(i);
        // ids: P1=0 ... P11=10, F=11.
        let truth = figure4_ground_truth();
        let edges = vec![
            (p(0), p(1)),
            (p(1), p(2)),
            (p(2), p(3)), // junction after P3: branch 1 = P4,P5,P6
            (p(3), p(4)),
            (p(4), p(5)),
            (p(2), p(6)), // branch 2 starts at P7
            (p(6), p(7)), // junction after P7: branch {P8, P9}
            (p(7), p(8)),
            (p(6), p(10)), // branch {P11}
            (p(5), p(9)),  // P10 below both sides: shared descendant
            (p(10), p(9)),
            (p(9), p(11)), // P10 → F
            (p(5), p(11)),
            (p(8), p(11)),
        ];
        AcDag::from_edges(&truth.candidates(), truth.failure(), &edges)
    }

    #[test]
    fn figure4_dag_shape_is_as_described() {
        let dag = figure4_dag();
        assert_eq!(dag.len(), 12);
        let p = |i: u32| PredicateId::from_raw(i);
        // Junction after P3 once P1..P3 are consumed.
        let active: Vec<PredicateId> = (3..11).map(p).collect();
        let minimal = dag.minimal_of(&active);
        assert_eq!(minimal, vec![p(3), p(6)]);
        let branches = dag.branches(&active);
        let b4 = branches.iter().find(|b| b[0] == p(3)).unwrap();
        let b7 = branches.iter().find(|b| b[0] == p(6)).unwrap();
        let mut b4s: Vec<u32> = b4.iter().map(|q| q.raw()).collect();
        b4s.sort();
        assert_eq!(b4s, vec![3, 4, 5], "B1 = P4 ∨ P5 ∨ P6");
        let mut b7s: Vec<u32> = b7.iter().map(|q| q.raw()).collect();
        b7s.sort();
        assert_eq!(b7s, vec![6, 7, 8, 10], "B2 = P7 ∨ P8 ∨ P9 ∨ P11");
    }

    #[test]
    fn branch_pruning_reduces_figure4_to_the_chain_in_two_rounds() {
        let dag = figure4_dag();
        let truth = figure4_ground_truth();
        // Try several tie-breaking seeds: rounds are 2 whenever the losing
        // branch is picked first, 2 also when the causal branch is picked
        // (the other half is pruned without another round). Junctions have
        // B=2, so resolution is always exactly 1 round each.
        for seed in 0..8 {
            let mut exec = OracleExecutor::new(truth.clone());
            let mut state = DiscoveryState::new(&dag, true, seed);
            branch_prune(&mut state, &mut exec);
            assert_eq!(state.rounds(), 2, "J=2 junctions × log2(2) rounds");
            let mut left: Vec<u32> = state.remaining.iter().map(|p| p.raw()).collect();
            left.sort();
            // The paper's narration intervenes on the losing branches first
            // and keeps P10 for GIWP (chain P1,P2,P3,P7,P10,P11). When the
            // tie-break picks the *causal* branch instead, that stopped
            // round lets Definition 2 prune the symptom P10 (observed while
            // the failure vanished) two rounds early — both are valid.
            assert!(
                left == vec![0, 1, 2, 6, 9, 10] || left == vec![0, 1, 2, 6, 10],
                "chain through P1,P2,P3,P7,(P10),P11 survives (seed {seed}): {left:?}"
            );
        }
    }
}
