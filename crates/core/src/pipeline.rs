//! The end-to-end AID workflow (Figure 1): predicate logs → statistical
//! debugging → AC-DAG → causal intervention → root cause + explanation.
//!
//! The observation phase ([`analyze`]) is executor-free; the intervention
//! phase ([`crate::discovery::discover`]) takes any [`crate::Executor`].

use crate::discovery::DiscoveryResult;
use aid_causal::{AcDag, PrecedencePolicy, TypeAwarePolicy};
use aid_predicates::{extract, Extraction, ExtractionConfig, PredicateId};
use aid_sd::SdReport;
use aid_trace::{FailureSignature, Outcome, TraceSet};

/// Everything AID derives from the logs before any intervention.
#[derive(Clone, Debug)]
pub struct AidAnalysis {
    /// The extraction (catalog + per-run observations + failure predicate).
    pub extraction: Extraction,
    /// Statistical-debugging scores.
    pub sd: SdReport,
    /// The candidate predicates (fully-discriminative, safe, intervenable).
    pub candidates: Vec<PredicateId>,
    /// The approximate causal DAG.
    pub dag: AcDag,
}

impl AidAnalysis {
    /// Figure 7 column 3: the number of fully-discriminative predicates SD
    /// reports (excluding the failure indicator itself).
    pub fn sd_predicate_count(&self) -> usize {
        self.sd
            .fully_discriminative
            .iter()
            .filter(|&&p| p != self.extraction.failure)
            .count()
    }
}

/// Runs observation-phase AID with the default precedence policy.
pub fn analyze(set: &TraceSet, config: &ExtractionConfig) -> AidAnalysis {
    analyze_with_policy(set, config, &TypeAwarePolicy)
}

/// Runs observation-phase AID with a custom precedence policy.
pub fn analyze_with_policy(
    set: &TraceSet,
    config: &ExtractionConfig,
    policy: &dyn PrecedencePolicy,
) -> AidAnalysis {
    let extraction = extract(set, config);
    let sd = SdReport::from_extraction(&extraction);
    let candidates = sd.aid_candidates(&extraction.catalog, extraction.failure);
    let dag = AcDag::build(
        &candidates,
        extraction.failure,
        &extraction.catalog,
        &extraction.observations,
        policy,
    );
    AidAnalysis {
        extraction,
        sd,
        candidates,
        dag,
    }
}

/// Distinct failure signatures in a trace set, most frequent first —
/// Assumption 1's grouping: run AID once per signature.
pub fn failure_signatures(set: &TraceSet) -> Vec<(FailureSignature, usize)> {
    let mut counts: std::collections::BTreeMap<FailureSignature, usize> =
        std::collections::BTreeMap::new();
    for t in set.failures() {
        if let Outcome::Failure(sig) = &t.outcome {
            *counts.entry(sig.clone()).or_insert(0) += 1;
        }
    }
    let mut v: Vec<(FailureSignature, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

/// Renders a developer-facing explanation of a discovery result: the causal
/// chain from root cause to failure, one numbered step per predicate.
pub fn render_explanation(
    analysis: &AidAnalysis,
    result: &DiscoveryResult,
    set: &TraceSet,
) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    if let Some((sig, _)) = failure_signatures(set).first() {
        writeln!(
            s,
            "Symptom: {} in {}",
            crate::oracle::classify_symptom(&sig.kind),
            set.method_name(sig.method)
        )
        .unwrap();
    }
    match result.root_cause() {
        Some(root) => {
            writeln!(
                s,
                "Root cause: {}",
                analysis.extraction.catalog.describe(root, set)
            )
            .unwrap();
        }
        None => {
            writeln!(s, "Root cause: not found (no causal predicate confirmed)").unwrap();
        }
    }
    writeln!(s, "Causal path ({} interventions):", result.rounds).unwrap();
    for (i, p) in result.path().iter().enumerate() {
        writeln!(
            s,
            "  ({}) {}",
            i + 1,
            analysis.extraction.catalog.describe(*p, set)
        )
        .unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_trace::{MethodEvent, MethodId, ThreadId, Trace};

    /// A synthetic trace set with a deterministic structure: in failed runs
    /// method 0 is slow and method 1 throws afterwards; in successful runs
    /// both behave.
    fn toy_set() -> TraceSet {
        let mut set = TraceSet::new();
        let a = set.method("Fetch");
        let b = set.method("Commit");
        let mk = |m: MethodId, th: u32, start, end, exc: Option<&str>| MethodEvent {
            method: m,
            instance: 0,
            thread: ThreadId::from_raw(th),
            start,
            end,
            accesses: vec![],
            returned: None,
            exception: exc.map(|s| s.to_string()),
            caught: false,
        };
        for seed in 0..5u64 {
            let mut t = Trace {
                seed,
                events: vec![mk(a, 0, 0, 10, None), mk(b, 1, 20, 30, None)],
                msgs: vec![],
                outcome: Outcome::Success,
                duration: 40,
            };
            t.normalize();
            set.push(t);
        }
        for seed in 100..105u64 {
            let mut t = Trace {
                seed,
                events: vec![
                    mk(a, 0, 0, 80, None), // slow
                    mk(b, 1, 90, 100, Some("Timeout")),
                ],
                msgs: vec![],
                outcome: Outcome::Failure(FailureSignature {
                    kind: "Timeout".into(),
                    method: b,
                }),
                duration: 110,
            };
            t.normalize();
            set.push(t);
        }
        set
    }

    #[test]
    fn analysis_builds_dag_over_fully_discriminative_predicates() {
        let set = toy_set();
        let analysis = analyze(&set, &ExtractionConfig::default());
        assert!(analysis.sd_predicate_count() >= 2, "slow + throws at least");
        assert!(analysis.dag.len() >= 3);
        // The slow predicate precedes the failing-method predicate under
        // the end-anchored policy (80 < 100).
        let slow = analysis
            .candidates
            .iter()
            .copied()
            .find(|&p| {
                matches!(
                    analysis.extraction.catalog.get(p).kind,
                    aid_predicates::PredicateKind::RunsTooSlow { .. }
                )
            })
            .expect("slow predicate");
        let fails = analysis
            .candidates
            .iter()
            .copied()
            .find(|&p| {
                matches!(
                    analysis.extraction.catalog.get(p).kind,
                    aid_predicates::PredicateKind::MethodFails { .. }
                )
            })
            .expect("fails predicate");
        assert!(analysis.dag.reaches(slow, fails));
        assert!(analysis.dag.reaches(fails, analysis.extraction.failure));
    }

    #[test]
    fn failure_signatures_sorted_by_frequency() {
        let mut set = toy_set();
        let m = set.method("Other");
        set.push(Trace {
            seed: 999,
            events: vec![],
            msgs: vec![],
            outcome: Outcome::Failure(FailureSignature {
                kind: "Rare".into(),
                method: m,
            }),
            duration: 1,
        });
        let sigs = failure_signatures(&set);
        assert_eq!(sigs.len(), 2);
        assert_eq!(sigs[0].0.kind, "Timeout");
        assert_eq!(sigs[0].1, 5);
        assert_eq!(sigs[1].0.kind, "Rare");
    }

    #[test]
    fn explanation_renders_numbered_path() {
        let set = toy_set();
        let analysis = analyze(&set, &ExtractionConfig::default());
        let fake = DiscoveryResult {
            causal: analysis.candidates.clone(),
            spurious: vec![],
            failure: analysis.extraction.failure,
            rounds: 3,
            log: vec![],
        };
        let text = render_explanation(&analysis, &fake, &set);
        assert!(text.contains("Root cause:"), "{text}");
        assert!(text.contains("(1)"));
        assert!(text.contains("FAILURE"));
    }
}
