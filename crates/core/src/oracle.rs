//! Ground-truth causal structures and the deterministic oracle executor.
//!
//! Synthetic experiments (Figure 8) and the algorithm test-suite need an
//! executor whose counterfactual behaviour is *exactly* known. A
//! [`GroundTruth`] declares, for every predicate, its true cause (at most
//! one parent — effects vanish when an ancestor is repaired) and which
//! predicates form the true causal path to the failure. The
//! [`OracleExecutor`] then answers interventions with perfect counterfactual
//! semantics:
//!
//! * predicate Q is observed iff no ancestor-or-self of Q (in the true
//!   cause forest) is intervened;
//! * the failure F is observed iff no causal-path predicate is intervened
//!   (every path predicate is a counterfactual cause of F — Definition 1).
//!
//! A [`FlakyOracle`] wrapper injects observation noise, exercising the
//! multiple-runs-per-round logic the paper calls for in footnote 1.

use crate::executor::{ExecutionRecord, Executor};
use aid_predicates::PredicateId;
use aid_util::DenseBitSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What kind of symptom a failure signature's `kind` string denotes.
///
/// The simulator emits structured kinds for everything it detects itself:
/// `Deadlock` and `Timeout` from the scheduler, and `always:<name>` /
/// `eventually:<name>` from the invariant oracle. Anything else is an
/// application exception type (`IndexOutOfRange`, `ObjectDisposed`, …).
/// Classifying here keeps every consumer (lab validation, explanations,
/// experiment records) in agreement about which plane a failure lives on.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SymptomClass {
    /// A safety invariant (`always <name>`) observed false.
    InvariantAlways(String),
    /// A liveness invariant (`eventually <name>`) never satisfied.
    InvariantEventually(String),
    /// The scheduler proved no runnable thread can ever make progress.
    Deadlock,
    /// The run exceeded its step budget without finishing.
    Timeout,
    /// An uncaught application exception of the named type.
    Exception(String),
}

impl SymptomClass {
    /// True for symptoms the *oracle* (not application code) raised:
    /// invariant violations and scheduler-detected deadlock/timeout.
    pub fn is_oracle_detected(&self) -> bool {
        !matches!(self, SymptomClass::Exception(_))
    }

    /// True for invariant-oracle symptoms specifically.
    pub fn is_invariant(&self) -> bool {
        matches!(
            self,
            SymptomClass::InvariantAlways(_) | SymptomClass::InvariantEventually(_)
        )
    }
}

impl std::fmt::Display for SymptomClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymptomClass::InvariantAlways(n) => write!(f, "safety invariant `{n}` violated"),
            SymptomClass::InvariantEventually(n) => {
                write!(f, "liveness invariant `{n}` never satisfied")
            }
            SymptomClass::Deadlock => write!(f, "deadlock"),
            SymptomClass::Timeout => write!(f, "timeout"),
            SymptomClass::Exception(k) => write!(f, "uncaught `{k}`"),
        }
    }
}

/// Classifies a failure signature's `kind` string (see
/// [`aid_trace::FailureSignature`]).
pub fn classify_symptom(kind: &str) -> SymptomClass {
    if let Some(name) = kind.strip_prefix("always:") {
        SymptomClass::InvariantAlways(name.to_string())
    } else if let Some(name) = kind.strip_prefix("eventually:") {
        SymptomClass::InvariantEventually(name.to_string())
    } else if kind == "Deadlock" {
        SymptomClass::Deadlock
    } else if kind == "Timeout" {
        SymptomClass::Timeout
    } else {
        SymptomClass::Exception(kind.to_string())
    }
}

/// The true causal structure behind a synthetic failing application.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// Number of candidate predicates (raw ids `0..n`); the failure is id
    /// `n`.
    pub n: usize,
    /// `parent[q]` = the true cause of predicate `q`, if any. Parents must
    /// have smaller... no ordering requirement, but the forest must be
    /// acyclic.
    pub parent: Vec<Option<usize>>,
    /// The true causal path (root first). Each entry is a counterfactual
    /// cause of the failure. Must be non-empty and form a parent-chain:
    /// `parent[path[i+1]] == Some(path[i])`.
    pub path: Vec<usize>,
}

impl GroundTruth {
    /// Validates structural invariants; panics with a message on violation.
    pub fn validate(&self) {
        assert!(!self.path.is_empty(), "causal path must be non-empty");
        assert_eq!(self.parent.len(), self.n);
        for (i, w) in self.path.windows(2).enumerate() {
            assert_eq!(
                self.parent[w[1]],
                Some(w[0]),
                "path step {i} must follow the parent chain"
            );
        }
        assert_eq!(self.parent[self.path[0]], None, "root cause has no cause");
        // Acyclicity of the parent forest.
        for start in 0..self.n {
            let mut seen = 0usize;
            let mut cur = Some(start);
            while let Some(c) = cur {
                cur = self.parent[c];
                seen += 1;
                assert!(seen <= self.n, "cycle in true-cause forest at {start}");
            }
        }
    }

    /// The failure predicate id.
    pub fn failure(&self) -> PredicateId {
        PredicateId::from_raw(self.n as u32)
    }

    /// Candidate predicate ids.
    pub fn candidates(&self) -> Vec<PredicateId> {
        (0..self.n)
            .map(|i| PredicateId::from_raw(i as u32))
            .collect()
    }

    /// The causal path as predicate ids.
    pub fn path_ids(&self) -> Vec<PredicateId> {
        self.path
            .iter()
            .map(|&i| PredicateId::from_raw(i as u32))
            .collect()
    }

    /// True iff some ancestor-or-self of `q` is in `intervened`.
    fn suppressed(&self, q: usize, intervened: &DenseBitSet) -> bool {
        let mut cur = Some(q);
        while let Some(c) = cur {
            if intervened.contains(c) {
                return true;
            }
            cur = self.parent[c];
        }
        false
    }

    /// The exact observation under an intervention set.
    pub fn observe(&self, intervened: &DenseBitSet) -> ExecutionRecord {
        let mut observed = DenseBitSet::new(self.n + 1);
        for q in 0..self.n {
            if !self.suppressed(q, intervened) {
                observed.insert(q);
            }
        }
        let failed = !self.path.iter().any(|&p| intervened.contains(p));
        if failed {
            observed.insert(self.n);
        }
        ExecutionRecord { failed, observed }
    }
}

/// Deterministic perfect-counterfactual executor.
#[derive(Clone, Debug)]
pub struct OracleExecutor {
    truth: GroundTruth,
}

impl OracleExecutor {
    /// Wraps a validated ground truth.
    pub fn new(truth: GroundTruth) -> Self {
        truth.validate();
        OracleExecutor { truth }
    }

    /// The wrapped ground truth.
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }
}

impl Executor for OracleExecutor {
    fn intervene(&mut self, predicates: &[PredicateId]) -> Vec<ExecutionRecord> {
        let mut set = DenseBitSet::new(self.truth.n + 1);
        for p in predicates {
            set.insert(p.index());
        }
        vec![self.truth.observe(&set)]
    }
}

/// An oracle that flips non-failure observations with probability
/// `noise` per run, and answers each round with `runs` records. Failure
/// observations stay exact (the failure signature is reliably detected);
/// what flakes in practice is whether a *symptom* predicate manifested.
#[derive(Clone, Debug)]
pub struct FlakyOracle {
    truth: GroundTruth,
    noise: f64,
    runs: usize,
    rng: StdRng,
}

impl FlakyOracle {
    /// Builds a flaky oracle answering `runs` records per round.
    pub fn new(truth: GroundTruth, noise: f64, runs: usize, seed: u64) -> Self {
        truth.validate();
        assert!(runs >= 1);
        FlakyOracle {
            truth,
            noise,
            runs,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Executor for FlakyOracle {
    fn intervene(&mut self, predicates: &[PredicateId]) -> Vec<ExecutionRecord> {
        let mut set = DenseBitSet::new(self.truth.n + 1);
        for p in predicates {
            set.insert(p.index());
        }
        (0..self.runs)
            .map(|_| {
                let mut rec = self.truth.observe(&set);
                for q in 0..self.truth.n {
                    if self.rng.random_bool(self.noise) {
                        if rec.observed.contains(q) {
                            rec.observed.remove(q);
                        } else if !set.contains(q) {
                            rec.observed.insert(q);
                        }
                    }
                }
                rec
            })
            .collect()
    }
}

/// Builds the paper's Figure 4 walkthrough ground truth: 11 predicates
/// P1..P11 (ids 0..10), true path P1→P2→P11→F, with P7 a side effect of P1,
/// P3 a side effect of P2, P10 a side effect of P3, P4..P6 hanging off P3's
/// side chain and P8, P9 off P7.
pub fn figure4_ground_truth() -> GroundTruth {
    // ids: P1=0, P2=1, P3=2, P4=3, P5=4, P6=5, P7=6, P8=7, P9=8, P10=9, P11=10
    let mut parent = vec![None; 11];
    parent[1] = Some(0); // P2 ← P1
    parent[10] = Some(1); // P11 ← P2
    parent[6] = Some(0); // P7 ← P1 (side effect)
    parent[2] = Some(1); // P3 ← P2 (side effect)
    parent[9] = Some(2); // P10 ← P3
    parent[3] = Some(2); // P4 ← P3
    parent[4] = Some(3); // P5 ← P4
    parent[5] = Some(4); // P6 ← P5
    parent[7] = Some(6); // P8 ← P7
    parent[8] = Some(7); // P9 ← P8
    GroundTruth {
        n: 11,
        parent,
        path: vec![0, 1, 10],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_counterfactuals_match_definition() {
        let truth = figure4_ground_truth();
        let mut ex = OracleExecutor::new(truth);
        // No intervention: everything observed, failure occurs.
        let r = &ex.intervene(&[])[0];
        assert!(r.failed);
        assert_eq!(r.observed.count(), 12);
        // Intervene on the root: nothing downstream observed, failure stops.
        let r = &ex.intervene(&[PredicateId::from_raw(0)])[0];
        assert!(!r.failed);
        assert!(!r.holds(PredicateId::from_raw(1)), "P2 vanishes with P1");
        assert!(!r.holds(PredicateId::from_raw(6)), "P7 vanishes with P1");
        assert!(
            !r.holds(PredicateId::from_raw(8)),
            "P9 vanishes transitively"
        );
        // Intervene on side-effect P3: failure persists, P10 vanishes.
        let r = &ex.intervene(&[PredicateId::from_raw(2)])[0];
        assert!(r.failed);
        assert!(!r.holds(PredicateId::from_raw(9)));
        assert!(r.holds(PredicateId::from_raw(10)), "P11 unaffected by P3");
    }

    #[test]
    fn intervening_mid_path_stops_failure() {
        let mut ex = OracleExecutor::new(figure4_ground_truth());
        for p in [0u32, 1, 10] {
            let r = &ex.intervene(&[PredicateId::from_raw(p)])[0];
            assert!(!r.failed, "every path predicate is counterfactual");
        }
        for p in [2u32, 3, 4, 5, 6, 7, 8, 9] {
            let r = &ex.intervene(&[PredicateId::from_raw(p)])[0];
            assert!(r.failed, "non-path predicates are not counterfactual");
        }
    }

    #[test]
    #[should_panic(expected = "parent chain")]
    fn validate_rejects_broken_path() {
        let gt = GroundTruth {
            n: 3,
            parent: vec![None, None, None],
            path: vec![0, 1],
        };
        gt.validate();
    }

    #[test]
    fn symptom_classification_covers_every_plane() {
        assert_eq!(
            classify_symptom("always:balance_cap"),
            SymptomClass::InvariantAlways("balance_cap".into())
        );
        assert_eq!(
            classify_symptom("eventually:delivered"),
            SymptomClass::InvariantEventually("delivered".into())
        );
        assert_eq!(classify_symptom("Deadlock"), SymptomClass::Deadlock);
        assert_eq!(classify_symptom("Timeout"), SymptomClass::Timeout);
        assert_eq!(
            classify_symptom("IndexOutOfRange"),
            SymptomClass::Exception("IndexOutOfRange".into())
        );
        assert!(classify_symptom("always:x").is_oracle_detected());
        assert!(classify_symptom("eventually:x").is_invariant());
        assert!(classify_symptom("Deadlock").is_oracle_detected());
        assert!(!classify_symptom("Deadlock").is_invariant());
        assert!(!classify_symptom("Crash").is_oracle_detected());
        assert_eq!(
            classify_symptom("always:cap").to_string(),
            "safety invariant `cap` violated"
        );
    }

    #[test]
    fn flaky_oracle_keeps_failure_exact() {
        let truth = figure4_ground_truth();
        let mut ex = FlakyOracle::new(truth, 0.3, 5, 42);
        let recs = ex.intervene(&[PredicateId::from_raw(0)]);
        assert_eq!(recs.len(), 5);
        assert!(recs.iter().all(|r| !r.failed), "failure detection is exact");
        let recs = ex.intervene(&[PredicateId::from_raw(2)]);
        assert!(recs.iter().all(|r| r.failed));
    }
}
