//! Group Intervention With Pruning — Algorithm 1.
//!
//! GIWP divide-and-conquers the candidate pool in topological order:
//! intervene on the first half; if the failure stops, the half contains a
//! causal predicate (recurse, or confirm a singleton); if the failure
//! persists, the whole half is spurious. After *every* round, interventional
//! pruning (Definition 2) draws conclusions about non-intervened predicates
//! too: any candidate X that does not precede an intervened predicate and
//! shows a counterfactual violation `(X ∧ ¬F) ∨ (¬X ∧ F)` in some record is
//! pruned.
//!
//! Two deliberate readings of the paper (documented in DESIGN.md):
//! * pruning applies on both round outcomes (the walkthrough's step 6 prunes
//!   P7 on a stopped-failure round, though the listing attaches the loop to
//!   the failure-persists branch);
//! * pruning scope is the *global* remaining pool, not the local recursion
//!   pool (step 7 prunes P10 from outside the recursion pool).

use crate::executor::BatchExecutor;
use aid_causal::AcDag;
use aid_predicates::PredicateId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Which phase of discovery issued a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Branch pruning (Algorithm 2).
    Branch,
    /// Divide-and-conquer group intervention (Algorithm 1).
    Giwp,
    /// Traditional adaptive group testing (baseline).
    Tagt,
}

/// One intervention round, for reports and tests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundLog {
    /// Which phase issued it.
    pub phase: Phase,
    /// The intervened predicates.
    pub intervened: Vec<PredicateId>,
    /// Whether the failure stopped (no record failed).
    pub stopped: bool,
    /// Predicates confirmed causal by this round.
    pub confirmed: Vec<PredicateId>,
    /// Predicates pruned by this round (intervened or via Definition 2).
    pub pruned: Vec<PredicateId>,
}

/// Shared bookkeeping across Algorithm 1/2 phases.
pub struct DiscoveryState<'d> {
    /// The AC-DAG (reachability source for pruning and topological order).
    pub dag: &'d AcDag,
    /// Confirmed causal predicates.
    pub causal: BTreeSet<PredicateId>,
    /// Predicates ruled out.
    pub spurious: BTreeSet<PredicateId>,
    /// Undecided candidates (the global pool).
    pub remaining: BTreeSet<PredicateId>,
    /// Per-round log.
    pub log: Vec<RoundLog>,
    /// Whether Definition 2 pruning is enabled (off for the AID-P ablation).
    pub prune: bool,
    /// How many records must show a counterfactual violation before a
    /// predicate is pruned. The paper's rule is `1` ("it is sufficient to
    /// identify a single counter-example execution"); larger quorums trade
    /// a little pruning power for robustness against flaky observations —
    /// see the `flaky_observations` integration tests.
    pub prune_quorum: usize,
    /// Tie-breaking randomness.
    pub rng: StdRng,
}

impl<'d> DiscoveryState<'d> {
    /// Fresh state over all DAG candidates.
    pub fn new(dag: &'d AcDag, prune: bool, seed: u64) -> Self {
        DiscoveryState {
            dag,
            causal: BTreeSet::new(),
            spurious: BTreeSet::new(),
            remaining: dag.candidates().iter().copied().collect(),
            log: Vec::new(),
            prune,
            prune_quorum: 1,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sets the pruning quorum (see [`DiscoveryState::prune_quorum`]).
    pub fn with_quorum(mut self, quorum: usize) -> Self {
        self.prune_quorum = quorum.max(1);
        self
    }

    /// Marks a predicate spurious.
    pub fn mark_spurious(&mut self, p: PredicateId) {
        if self.remaining.remove(&p) {
            self.spurious.insert(p);
        }
    }

    /// Marks a predicate causal.
    pub fn mark_causal(&mut self, p: PredicateId) {
        if self.remaining.remove(&p) {
            self.causal.insert(p);
        }
    }

    /// Executes one intervention round on `group`, applies Definition 2
    /// pruning to the global pool, logs it, and reports whether the failure
    /// stopped.
    pub fn round<E: BatchExecutor>(
        &mut self,
        exec: &mut E,
        group: &[PredicateId],
        phase: Phase,
    ) -> bool {
        let groups = [group.to_vec()];
        self.round_batch(exec, &groups, phase)[0]
    }

    /// Executes a whole slate of intervention rounds as one wall-batch: the
    /// executor receives all groups at once (a pooled executor overlaps
    /// their runs), then pruning and logging are applied to each group's
    /// records **sequentially in input order**, so the decision stream is
    /// byte-identical to issuing the rounds one by one. Each group still
    /// counts as one round. Returns whether the failure stopped, per group.
    pub fn round_batch<E: BatchExecutor>(
        &mut self,
        exec: &mut E,
        groups: &[Vec<PredicateId>],
        phase: Phase,
    ) -> Vec<bool> {
        let all_records = exec.intervene_batch(groups);
        assert_eq!(
            all_records.len(),
            groups.len(),
            "executor must answer every group in the batch"
        );
        let mut stopped_flags = Vec::with_capacity(groups.len());
        for (group, records) in groups.iter().zip(all_records) {
            assert!(!records.is_empty(), "executor returned no records");
            let stopped = records.iter().all(|r| !r.failed);
            let mut pruned = Vec::new();
            if self.prune {
                let in_group: BTreeSet<PredicateId> = group.iter().copied().collect();
                let candidates: Vec<PredicateId> = self.remaining.iter().copied().collect();
                for x in candidates {
                    if in_group.contains(&x) {
                        continue;
                    }
                    // Cannot judge ancestors of intervened predicates: their
                    // effect may be muted by the intervention itself.
                    if group.iter().any(|&p| self.dag.reaches(x, p)) {
                        continue;
                    }
                    let violations = records
                        .iter()
                        .filter(|r| (r.holds(x) && !r.failed) || (!r.holds(x) && r.failed))
                        .count();
                    if violations >= self.prune_quorum.min(records.len()) {
                        self.mark_spurious(x);
                        pruned.push(x);
                    }
                }
            }
            self.log.push(RoundLog {
                phase,
                intervened: group.clone(),
                stopped,
                confirmed: Vec::new(),
                pruned,
            });
            stopped_flags.push(stopped);
        }
        stopped_flags
    }

    /// Number of rounds so far.
    pub fn rounds(&self) -> usize {
        self.log.len()
    }
}

/// Algorithm 1 over a local pool. Decides (causal/spurious) every pool
/// member, recording decisions in `state`.
pub fn giwp<E: BatchExecutor>(
    mut pool: Vec<PredicateId>,
    state: &mut DiscoveryState,
    exec: &mut E,
) {
    loop {
        pool.retain(|p| state.remaining.contains(p));
        if pool.is_empty() {
            return;
        }
        let dag = state.dag;
        let mut sorted = pool.clone();
        dag.topo_sort(&mut sorted, &mut state.rng);
        let half = sorted.len().div_ceil(2);
        let group: Vec<PredicateId> = sorted[..half].to_vec();
        let stopped = state.round(exec, &group, Phase::Giwp);
        if stopped {
            if group.len() == 1 {
                state.mark_causal(group[0]);
                if let Some(last) = state.log.last_mut() {
                    last.confirmed.push(group[0]);
                }
            } else {
                giwp(group, state, exec);
            }
        } else {
            for &p in &group {
                state.mark_spurious(p);
                if let Some(last) = state.log.last_mut() {
                    if !last.pruned.contains(&p) {
                        last.pruned.push(p);
                    }
                }
            }
        }
        pool = sorted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{figure4_ground_truth, OracleExecutor};
    use aid_causal::AcDag;

    fn chain_dag(truth: &crate::oracle::GroundTruth) -> AcDag {
        // Build an AC-DAG whose closure mirrors the ground-truth forest's
        // topological structure plus the failure sink, using from_edges.
        let mut edges = Vec::new();
        for (q, p) in truth.parent.iter().enumerate() {
            if let Some(p) = p {
                edges.push((
                    PredicateId::from_raw(*p as u32),
                    PredicateId::from_raw(q as u32),
                ));
            }
        }
        for i in 0..truth.n {
            edges.push((PredicateId::from_raw(i as u32), truth.failure()));
        }
        AcDag::from_edges(&truth.candidates(), truth.failure(), &edges)
    }

    #[test]
    fn giwp_alone_recovers_exact_causal_set() {
        let truth = figure4_ground_truth();
        let dag = chain_dag(&truth);
        let mut exec = OracleExecutor::new(truth.clone());
        let mut state = DiscoveryState::new(&dag, true, 7);
        let pool: Vec<PredicateId> = state.remaining.iter().copied().collect();
        giwp(pool, &mut state, &mut exec);
        let causal: Vec<u32> = state.causal.iter().map(|p| p.raw()).collect();
        assert_eq!(causal, vec![0, 1, 10], "exactly the true path");
        assert_eq!(state.spurious.len(), 8, "everything else pruned");
        assert!(state.remaining.is_empty());
    }

    /// The batching contract: a two-group slate through `round_batch` must
    /// leave byte-identical state to issuing the rounds one at a time.
    #[test]
    fn round_batch_matches_sequential_rounds() {
        let truth = figure4_ground_truth();
        let dag = chain_dag(&truth);
        let g1 = vec![PredicateId::from_raw(0)];
        let g2 = vec![PredicateId::from_raw(2), PredicateId::from_raw(6)];

        let mut batch_exec = OracleExecutor::new(truth.clone());
        let mut batch_state = DiscoveryState::new(&dag, true, 1);
        let flags =
            batch_state.round_batch(&mut batch_exec, &[g1.clone(), g2.clone()], Phase::Giwp);

        let mut seq_exec = OracleExecutor::new(truth.clone());
        let mut seq_state = DiscoveryState::new(&dag, true, 1);
        let f1 = seq_state.round(&mut seq_exec, &g1, Phase::Giwp);
        let f2 = seq_state.round(&mut seq_exec, &g2, Phase::Giwp);

        assert_eq!(flags, vec![f1, f2]);
        assert_eq!(batch_state.log, seq_state.log);
        assert_eq!(batch_state.spurious, seq_state.spurious);
        assert_eq!(batch_state.remaining, seq_state.remaining);
        assert_eq!(batch_state.rounds(), 2, "each group is one round");
    }

    #[test]
    fn giwp_without_pruning_still_exact_but_slower() {
        let truth = figure4_ground_truth();
        let dag = chain_dag(&truth);
        let mut rounds_with = 0;
        let mut rounds_without = 0;
        for seed in 0..10 {
            let mut exec = OracleExecutor::new(truth.clone());
            let mut state = DiscoveryState::new(&dag, true, seed);
            giwp(
                state.remaining.iter().copied().collect(),
                &mut state,
                &mut exec,
            );
            rounds_with += state.rounds();

            let mut exec = OracleExecutor::new(truth.clone());
            let mut state = DiscoveryState::new(&dag, false, seed);
            giwp(
                state.remaining.iter().copied().collect(),
                &mut state,
                &mut exec,
            );
            assert_eq!(
                state.causal.iter().map(|p| p.raw()).collect::<Vec<_>>(),
                vec![0, 1, 10],
                "pruning is an optimization, not a correctness requirement"
            );
            rounds_without += state.rounds();
        }
        assert!(
            rounds_with <= rounds_without,
            "pruning must not increase rounds: {rounds_with} vs {rounds_without}"
        );
    }
}
