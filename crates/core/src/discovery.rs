//! Causal path discovery — Algorithm 3, plus the strategy matrix the
//! evaluation compares (AID, AID-P, AID-P-B, TAGT).

use crate::branch::branch_prune;
use crate::executor::BatchExecutor;
use crate::giwp::{giwp, DiscoveryState, RoundLog};
use crate::tagt::tagt;
use aid_causal::AcDag;
use aid_predicates::PredicateId;
use serde::{Deserialize, Serialize};

/// Which discovery algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Full AID: branch pruning + GIWP with interventional pruning.
    Aid,
    /// AID−P: branch pruning + GIWP, but no Definition 2 predicate pruning.
    AidP,
    /// AID−P−B: GIWP in topological order only — no predicate pruning, no
    /// branch pruning.
    AidPB,
    /// Traditional adaptive group testing (ignores the AC-DAG).
    Tagt,
    /// Ablation knob: choose phases independently.
    Custom {
        /// Run Algorithm 2 first.
        branch: bool,
        /// Apply Definition 2 pruning.
        prune: bool,
    },
}

impl Strategy {
    /// All four paper variants, in Figure 8's legend order.
    pub const PAPER_SET: [Strategy; 4] = [
        Strategy::Tagt,
        Strategy::AidPB,
        Strategy::AidP,
        Strategy::Aid,
    ];

    /// Short display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Aid => "AID",
            Strategy::AidP => "AID-P",
            Strategy::AidPB => "AID-P-B",
            Strategy::Tagt => "TAGT",
            Strategy::Custom { .. } => "custom",
        }
    }

    fn flags(&self) -> (bool, bool, bool) {
        // (use_tagt, branch, prune)
        match self {
            Strategy::Aid => (false, true, true),
            Strategy::AidP => (false, true, false),
            Strategy::AidPB => (false, false, false),
            Strategy::Tagt => (true, false, false),
            Strategy::Custom { branch, prune } => (false, *branch, *prune),
        }
    }
}

/// The outcome of causal path discovery.
///
/// `PartialEq` compares every field (including the full per-round log), so
/// equality means two runs took byte-identical intervention schedules — the
/// property the engine's multi-worker determinism tests assert.
#[derive(Clone, Debug, PartialEq)]
pub struct DiscoveryResult {
    /// Confirmed causal predicates, topologically ordered (root cause
    /// first). With the failure appended this is the causal path of
    /// Definition 1.
    pub causal: Vec<PredicateId>,
    /// Predicates ruled out.
    pub spurious: Vec<PredicateId>,
    /// The failure indicator.
    pub failure: PredicateId,
    /// Total intervention rounds used.
    pub rounds: usize,
    /// Full per-round log.
    pub log: Vec<RoundLog>,
}

impl DiscoveryResult {
    /// The root cause (first causal predicate), if any.
    pub fn root_cause(&self) -> Option<PredicateId> {
        self.causal.first().copied()
    }

    /// The causal explanation path `C0 → … → Cn = F`.
    pub fn path(&self) -> Vec<PredicateId> {
        let mut p = self.causal.clone();
        p.push(self.failure);
        p
    }
}

/// Discovery tuning beyond the strategy choice.
#[derive(Clone, Copy, Debug)]
pub struct DiscoverOptions {
    /// Records that must show a violation before Definition 2 prunes a
    /// predicate (1 = the paper's single-counter-example rule).
    pub prune_quorum: usize,
}

impl Default for DiscoverOptions {
    fn default() -> Self {
        DiscoverOptions { prune_quorum: 1 }
    }
}

/// Runs causal path discovery over the AC-DAG with the given strategy.
/// `seed` only affects tie-breaking (grouping of incomparable predicates).
///
/// The executor bound is [`BatchExecutor`]: rounds are drained through
/// whole-batch requests so a pooled executor can overlap the runs inside
/// each request. Plain [`Executor`](crate::executor::Executor)s satisfy
/// the bound via the serial blanket impl, so every existing call site
/// works unchanged.
pub fn discover<E: BatchExecutor>(
    dag: &AcDag,
    exec: &mut E,
    strategy: Strategy,
    seed: u64,
) -> DiscoveryResult {
    discover_with_options(dag, exec, strategy, seed, DiscoverOptions::default())
}

/// [`discover`] with explicit [`DiscoverOptions`].
pub fn discover_with_options<E: BatchExecutor>(
    dag: &AcDag,
    exec: &mut E,
    strategy: Strategy,
    seed: u64,
    options: DiscoverOptions,
) -> DiscoveryResult {
    let (use_tagt, branch, prune) = strategy.flags();
    let mut state = DiscoveryState::new(dag, prune, seed).with_quorum(options.prune_quorum);
    if use_tagt {
        tagt(&mut state, exec);
    } else {
        if branch {
            branch_prune(&mut state, exec);
        }
        let pool: Vec<PredicateId> = state.remaining.iter().copied().collect();
        giwp(pool, &mut state, exec);
    }
    debug_assert!(
        state.remaining.is_empty(),
        "every candidate must be decided"
    );
    let causal = dag.topo_sorted(&state.causal.iter().copied().collect::<Vec<_>>());
    let spurious = state.spurious.iter().copied().collect();
    DiscoveryResult {
        causal,
        spurious,
        failure: dag.failure(),
        rounds: state.log.len(),
        log: state.log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{figure4_ground_truth, OracleExecutor};

    /// The Figure 4(a) AC-DAG (shared with branch.rs tests via re-export in
    /// the crate test helpers below).
    pub(crate) fn figure4_dag() -> AcDag {
        let p = |i: u32| PredicateId::from_raw(i);
        let truth = figure4_ground_truth();
        let edges = vec![
            (p(0), p(1)),
            (p(1), p(2)),
            (p(2), p(3)),
            (p(3), p(4)),
            (p(4), p(5)),
            (p(2), p(6)),
            (p(6), p(7)),
            (p(7), p(8)),
            (p(6), p(10)),
            (p(5), p(9)),
            (p(10), p(9)),
            (p(9), p(11)),
            (p(5), p(11)),
            (p(8), p(11)),
        ];
        AcDag::from_edges(&truth.candidates(), truth.failure(), &edges)
    }

    #[test]
    fn all_strategies_agree_on_the_causal_path() {
        let truth = figure4_ground_truth();
        let dag = figure4_dag();
        for strategy in Strategy::PAPER_SET {
            for seed in 0..5 {
                let mut exec = OracleExecutor::new(truth.clone());
                let r = discover(&dag, &mut exec, strategy, seed);
                let causal: Vec<u32> = r.causal.iter().map(|p| p.raw()).collect();
                assert_eq!(causal, vec![0, 1, 10], "{} seed {seed}", strategy.name());
                assert_eq!(r.path().len(), 4, "P1→P2→P11→F");
                assert_eq!(r.root_cause().unwrap().raw(), 0);
            }
        }
    }

    #[test]
    fn aid_uses_fewer_rounds_than_tagt_on_figure4() {
        let truth = figure4_ground_truth();
        let dag = figure4_dag();
        let avg = |strategy: Strategy| -> f64 {
            let mut total = 0usize;
            for seed in 0..20 {
                let mut exec = OracleExecutor::new(truth.clone());
                total += discover(&dag, &mut exec, strategy, seed).rounds;
            }
            total as f64 / 20.0
        };
        let aid = avg(Strategy::Aid);
        let tagt = avg(Strategy::Tagt);
        assert!(
            aid < tagt,
            "AID ({aid}) must beat TAGT ({tagt}) on the walkthrough DAG"
        );
    }

    #[test]
    fn walkthrough_round_count_matches_paper() {
        // Section 5.2: "AID discovered the causal path in 8 interventions".
        // With tie-breaking seeds that pick the same halves as the paper's
        // narration, the count is exactly 8; across seeds it stays in a
        // tight band around it.
        let truth = figure4_ground_truth();
        let dag = figure4_dag();
        let mut counts = std::collections::BTreeMap::new();
        for seed in 0..50 {
            let mut exec = OracleExecutor::new(truth.clone());
            let r = discover(&dag, &mut exec, Strategy::Aid, seed);
            *counts.entry(r.rounds).or_insert(0usize) += 1;
        }
        assert!(
            counts.contains_key(&8),
            "8-round schedules must occur: {counts:?}"
        );
        let (min, max) = (*counts.keys().min().unwrap(), *counts.keys().max().unwrap());
        assert!(min >= 6 && max <= 11, "band around 8: {counts:?}");
    }
}
