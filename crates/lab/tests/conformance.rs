//! Fixed-seed conformance smoke: a debug-affordable slice of the sweep the
//! CI `lab` job runs at scale (`cargo run -p aid_bench --bin lab --release
//! -- --scenarios=200`). Every generated scenario must satisfy all
//! cross-layer invariants, and — because generation and discovery are
//! deterministic per seed — the aggregate accuracy of the slice is pinned
//! exactly, not statistically.

use aid_lab::{check_scenario_on, generate_validated, BugClass, Conformance};
use std::collections::BTreeSet;

#[test]
fn fixed_seed_sweep_is_conformant() {
    let conf = Conformance::default();
    let mut classes = BTreeSet::new();
    let mut root_found = 0usize;
    let mut kind_match = 0usize;
    let mut mechanism_hit = 0usize;
    const N: u64 = 10;
    for seed in 1..=N {
        let (scenario, corpus) = generate_validated(&conf.params, seed);
        classes.insert(scenario.spec.bug_class);
        let report = check_scenario_on(&scenario, &corpus, &conf);
        assert!(
            report.violations.is_empty(),
            "{}: {:?}",
            report.name,
            report.violations
        );
        assert!(report.traces >= conf.params.corpus_ok + conf.params.corpus_fail);
        assert!(report.candidates >= 1, "{}: no candidates", report.name);
        root_found += report.root_found as usize;
        kind_match += report.root_kind_match as usize;
        mechanism_hit += report.root_on_mechanism as usize;
    }
    assert_eq!(
        classes.len(),
        BugClass::ALL.len(),
        "ten contiguous seeds must cover all nine bug classes"
    );
    // Deterministic per seed, so these are exact floors, not flaky ones.
    assert!(root_found >= 9, "root found in {root_found}/{N}");
    assert!(kind_match >= 8, "expected kind matched in {kind_match}/{N}");
    assert!(mechanism_hit >= 9, "mechanism hit in {mechanism_hit}/{N}");
}
