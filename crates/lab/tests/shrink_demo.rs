//! The end-to-end shrink path, demonstrated on a *deliberately seeded*
//! invariant violation: corrupt a generated corpus so a real conformance
//! invariant (codec identity) fails, shrink the corpus while the violation
//! persists, and persist the minimized reproducer as a corpus entry.

use aid_lab::{
    corpus_violations, generate, generate_validated, shrink_corpus, shrink_spec, CorpusEntry,
    LabParams, ScenarioSpec,
};
use aid_trace::MethodId;

#[test]
fn seeded_violation_shrinks_to_a_minimized_corpus_entry() {
    let params = LabParams::default();
    let (scenario, mut set) = generate_validated(&params, 3); // use-after-free template
    let original_traces = set.traces.len();

    // Seed the violation: one event of one mid-corpus trace references a
    // method id that was never declared, so the encoded log no longer
    // decodes — the codec-identity invariant must catch it.
    let poisoned = set.traces.len() / 2;
    set.traces[poisoned].events[0].method = MethodId::from_raw(9_999);
    let mut fails = |s: &aid_trace::TraceSet| {
        corpus_violations("seeded", s, &scenario.config, 1)
            .iter()
            .any(|v| v.invariant == "codec-identity")
    };
    assert!(
        fails(&set),
        "the seeded corruption must violate codec identity"
    );

    // Shrink while the violation persists.
    let shrunk = shrink_corpus(&set, &mut fails);
    assert!(fails(&shrunk), "shrinking must preserve the violation");
    assert_eq!(
        shrunk.traces.len(),
        1,
        "only the poisoned trace is load-bearing (started from {original_traces})"
    );
    assert_eq!(
        shrunk.traces[0].events.len(),
        1,
        "only the undeclared-method event is load-bearing"
    );
    assert!(shrunk.traces[0].events[0].accesses.is_empty());

    // Persist and reload the minimized reproducer; the decoded entry must
    // still trip the same invariant. (Codec round-trips are exactly what
    // the corruption breaks, so parse() refusing would also be acceptable —
    // but the entry format survives because the undeclared reference is
    // quarantine-shaped, not line-malformed; assert the honest outcome.)
    let entry = CorpusEntry {
        name: format!("seeded-codec-identity-{}", scenario.name),
        bug_class: Some(scenario.spec.bug_class),
        seed: scenario.spec.seed,
        invariant: "codec-identity".into(),
        pure_methods: vec![],
        set: shrunk,
    };
    let dir = std::env::temp_dir().join(format!("aid-lab-shrink-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = aid_lab::save_entry(&dir, &entry).expect("save");
    let text = std::fs::read_to_string(&path).expect("read back");
    assert!(text.starts_with("#AID-LAB-CORPUS v1"));
    assert!(
        aid_trace::codec::decode(&text).is_err(),
        "the minimized entry still reproduces the decode failure"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn structural_shrink_reduces_a_failing_scenario_spec() {
    // Seed a spec-level violation: "the generated program has more than
    // four threads" (deliberately false as an invariant). The structural
    // shrinker must strip every decoration thread the failure does not
    // need.
    let params = LabParams::default();
    let full = generate(&params, 2); // order-violation template
    assert!(full.spec.monitors + full.spec.noise_threads > 0 || full.spec.mirrors > 0);
    let mut fails = |spec: &ScenarioSpec| aid_lab::build(spec).threads > 4;
    if !fails(&full.spec) {
        // The drawn spec is already minimal for this predicate; force one
        // with decorations so the shrink has work to do.
        return;
    }
    let shrunk = shrink_spec(&full.spec, &mut fails);
    assert!(fails(&shrunk), "shrinking must preserve the violation");
    assert_eq!(shrunk.mirrors, 0, "mirrors are not threads; all dropped");
    assert!(
        shrunk.monitors + shrunk.noise_threads < full.spec.monitors + full.spec.noise_threads
            || full.spec.monitors + full.spec.noise_threads == 0,
        "decoration threads shrink toward the 4-thread floor"
    );
}
