//! Replays the committed regression corpus under `crates/lab/corpus/`
//! against the corpus-level conformance invariants. Entries are minimized
//! (see `regenerate_committed_corpus`) so the replay is cheap, but each
//! still drives the full codec → streaming → columnar → incremental path.

use aid_core::analyze;
use aid_lab::{corpus_violations, default_corpus_dir, load_dir, BugClass};
use std::collections::BTreeSet;

#[test]
fn committed_corpus_replays_clean() {
    let entries = load_dir(&default_corpus_dir()).expect("corpus dir loads");
    assert!(
        !entries.is_empty(),
        "the committed regression corpus is empty"
    );
    let mut classes = BTreeSet::new();
    for e in &entries {
        let violations = corpus_violations(&e.name, &e.set, &e.config(), 1);
        assert!(violations.is_empty(), "{}: {violations:?}", e.name);
        let (ok, fail) = e.set.counts();
        assert!(
            ok >= 1 && fail >= 1,
            "{}: entries stay analyzable (got {ok} ok / {fail} fail)",
            e.name
        );
        assert!(
            !analyze(&e.set, &e.config()).candidates.is_empty(),
            "{}: entry no longer yields intervenable candidates",
            e.name
        );
        classes.extend(e.bug_class);
    }
    assert!(
        classes.len() >= BugClass::ALL.len(),
        "corpus must cover every bug class, has {classes:?}"
    );
}

/// Regenerates the committed corpus deterministically: one scenario per bug
/// class, its corpus shrunk to the smallest set that still analyzes (≥1
/// success, ≥1 failure, ≥1 candidate). Run manually after intentional
/// format or generator changes:
///
/// ```sh
/// cargo test -p aid_lab --release regenerate_committed_corpus -- --ignored
/// ```
#[test]
#[ignore = "writes crates/lab/corpus/; run explicitly after format changes"]
fn regenerate_committed_corpus() {
    use aid_lab::{generate_validated, shrink_corpus, CorpusEntry, LabParams};

    let params = LabParams::default();
    for seed in 1..=9u64 {
        let (scenario, set) = generate_validated(&params, seed);
        let config = scenario.config.clone();
        let shrunk = shrink_corpus(&set, &mut |s| {
            let (ok, fail) = s.counts();
            ok >= 1 && fail >= 1 && !analyze(s, &config).candidates.is_empty()
        });
        let entry = CorpusEntry {
            name: format!("regression-{}", scenario.name),
            bug_class: Some(scenario.spec.bug_class),
            seed,
            invariant: "regression-replay".into(),
            pure_methods: config.pure_methods.iter().map(|m| m.raw()).collect(),
            set: shrunk,
        };
        let path = aid_lab::save_entry(&default_corpus_dir(), &entry).expect("save entry");
        eprintln!("wrote {}", path.display());
    }
}
