//! Randomized scenario generation over parameterized bug-class templates.
//!
//! Each scenario is a complete concurrent program built with
//! [`aid_sim::ProgramBuilder`] from one of nine bug-class templates — five
//! shared-memory (data race, atomicity violation, order violation,
//! use-after-free, timing/expiry) and four message-passing (lost delivery,
//! duplicate delivery, reordered delivery, channel deadlock) — with
//! randomized thread counts, schedules, symptom
//! decorations (mirrors, propagator chains, monitor threads), and **noise
//! tasks** that are causally unrelated to the failure. Unlike `aid_synth`'s
//! Figure-8 family (which generates AC-DAG-shaped abstract applications),
//! these are real simulator programs: every layer of the pipeline — codec,
//! store, extraction, SD, AC-DAG, engine — runs on them for real.
//!
//! Ground truth travels with the program: the *mechanism* methods (the bug
//! itself), and the *noise* methods (everything causally unrelated). The
//! conformance harness's lineage invariant is that discovery never confirms
//! a predicate touching a noise method; mechanism membership and the
//! expected root-cause kind grade accuracy.
//!
//! Generation is deterministic per `(params, seed)` — the bug class is
//! `seed % 9` so any contiguous seed range covers all nine classes — and
//! self-validating: a drawn parameterization whose failure is not
//! intermittent (never fails, or always fails, within the seed budget) is
//! discarded and redrawn with the next attempt salt.

use aid_cases::helpers::{inline_mirrors, monitor_thread, propagator_chain};
use aid_cases::RootKind;
use aid_predicates::ExtractionConfig;
use aid_sim::program::{Cmp, Expr, Program, Reg};
use aid_sim::{ProgramBuilder, Simulator};
use aid_trace::{MethodId, TraceSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// The nine concurrency-bug templates the generator composes: five
/// shared-memory classes and four message-passing classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BugClass {
    /// Unsynchronized cross-thread read/write of a shared index.
    DataRace,
    /// A reader's snapshot/check pair broken by a concurrent writer pair.
    AtomicityViolation,
    /// A consumer that occasionally starts before its producer published.
    OrderViolation,
    /// A resource disposed while a transiently-slow user still needs it.
    UseAfterFree,
    /// A transient fault stretching a pipeline past a cache TTL.
    Timing,
    /// A guarded send skipped on a failed link probe; the subscriber times
    /// out and a liveness invariant (`eventually`) goes unsatisfied.
    LostDelivery,
    /// A lost ack triggers a retry that re-delivers a deposit; the applied
    /// balance breaks a safety invariant (`always`).
    DuplicateDelivery,
    /// A prepare/commit pair whose sends race, so the channel delivers
    /// commit before prepare and cross-process atomicity breaks.
    ReorderedDelivery,
    /// A token-ring kickstart skipped on a failed link probe; both ring
    /// stages block on circular channel receives forever.
    ChannelDeadlock,
}

impl BugClass {
    /// All templates, in `seed % 9` order.
    pub const ALL: [BugClass; 9] = [
        BugClass::DataRace,
        BugClass::AtomicityViolation,
        BugClass::OrderViolation,
        BugClass::UseAfterFree,
        BugClass::Timing,
        BugClass::LostDelivery,
        BugClass::DuplicateDelivery,
        BugClass::ReorderedDelivery,
        BugClass::ChannelDeadlock,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            BugClass::DataRace => "data-race",
            BugClass::AtomicityViolation => "atomicity",
            BugClass::OrderViolation => "order-violation",
            BugClass::UseAfterFree => "use-after-free",
            BugClass::Timing => "timing",
            BugClass::LostDelivery => "lost-delivery",
            BugClass::DuplicateDelivery => "duplicate-delivery",
            BugClass::ReorderedDelivery => "reordered-delivery",
            BugClass::ChannelDeadlock => "channel-deadlock",
        }
    }

    /// Parses a display name back (corpus metadata round-trip).
    pub fn from_name(name: &str) -> Option<BugClass> {
        BugClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// True for the message-passing templates (they declare channels and,
    /// for two of them, invariant oracles).
    pub fn uses_channels(&self) -> bool {
        matches!(
            self,
            BugClass::LostDelivery
                | BugClass::DuplicateDelivery
                | BugClass::ReorderedDelivery
                | BugClass::ChannelDeadlock
        )
    }

    /// The predicate kind the root cause should come back as.
    pub fn expected_root(&self) -> RootKind {
        match self {
            BugClass::DataRace | BugClass::AtomicityViolation => RootKind::DataRace,
            BugClass::OrderViolation => RootKind::OrderViolation,
            // The racing prepare/commit sends surface on the channel
            // pseudo-object as a data-race predicate, which sits upstream
            // of the reorder's order-violation predicate in the AC-DAG —
            // discovery confirms the race as root and the lost precedence
            // as the next causal link.
            BugClass::ReorderedDelivery => RootKind::DataRace,
            // The use-after-free's *root* is the transient slowness that
            // loses the race (the kafka case's reading); the UAF predicate
            // itself is the next link of the chain.
            BugClass::UseAfterFree | BugClass::Timing => RootKind::RunsTooSlow,
            // These three root in a probabilistic link/ack probe whose
            // wrong outcome gates a send — a wrong-return on the pure
            // probe, repaired by forcing the healthy value.
            BugClass::LostDelivery | BugClass::DuplicateDelivery | BugClass::ChannelDeadlock => {
                RootKind::WrongReturn
            }
        }
    }
}

/// Generator sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct LabParams {
    /// Upper bound on symptom mirrors per scenario.
    pub max_mirrors: usize,
    /// Upper bound on monitor threads (templates that support them).
    pub max_monitors: usize,
    /// Upper bound on noise threads (causally unrelated workers).
    pub max_noise_threads: usize,
    /// Successful runs per scenario corpus.
    pub corpus_ok: usize,
    /// Failed runs per scenario corpus.
    pub corpus_fail: usize,
    /// Seed budget for balanced collection (viability bound).
    pub max_seeds: u64,
}

impl Default for LabParams {
    fn default() -> Self {
        LabParams {
            max_mirrors: 10,
            max_monitors: 2,
            max_noise_threads: 3,
            corpus_ok: 8,
            corpus_fail: 8,
            max_seeds: 6_000,
        }
    }
}

/// The structural draw of one scenario: which template, and how many of
/// each decoration. Timing constants are drawn separately inside
/// [`build`]; the spec holds exactly the counts the shrinker can reduce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Scenario seed (drives every random draw).
    pub seed: u64,
    /// Redraw salt (bumped when a draw was not viably intermittent).
    pub attempt: u32,
    /// Which bug-class template to instantiate.
    pub bug_class: BugClass,
    /// Symptom mirrors keyed on the corrupted verdict.
    pub mirrors: usize,
    /// Propagator-chain links between verdict and crash.
    pub chain: usize,
    /// Monitor threads observing the infected flag.
    pub monitors: usize,
    /// Causally unrelated noise threads.
    pub noise_threads: usize,
}

/// One generated scenario: the program, its extraction configuration, and
/// the ground truth the conformance harness grades against.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// `"<class>-s<seed>"`, the session/report key.
    pub name: String,
    /// The structural draw that produced it.
    pub spec: ScenarioSpec,
    /// The generated program.
    pub program: Program,
    /// Extraction configuration (pure methods marked).
    pub config: ExtractionConfig,
    /// The kind the root-cause predicate is expected to have.
    pub expected_root: RootKind,
    /// The methods constituting the bug mechanism itself.
    pub mechanism: BTreeSet<MethodId>,
    /// Methods causally unrelated to the failure. Discovery confirming a
    /// predicate that touches one of these is a conformance violation.
    pub noise_methods: BTreeSet<MethodId>,
    /// Threads in the program (mechanism + monitors + noise + main).
    pub threads: usize,
    /// Intervention runs per round for discovery on this scenario.
    pub runs_per_round: usize,
}

impl Scenario {
    /// Whether a method lies on the ground-truth causal lineage (the
    /// mechanism or any of its downstream symptoms — everything but noise).
    pub fn on_lineage(&self, m: MethodId) -> bool {
        !self.noise_methods.contains(&m)
    }

    /// A fresh simulator for this scenario's program.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(self.program.clone())
    }

    /// A fresh simulator pinned to a specific execution backend (the
    /// harness's backend-equivalence invariant runs the same scenario on
    /// both).
    pub fn simulator_with(&self, backend: aid_sim::Backend) -> Simulator {
        Simulator::new(self.program.clone()).with_backend(backend)
    }

    /// Collects the scenario's balanced observation corpus; `None` when the
    /// failure was not intermittent enough within the seed budget.
    pub fn collect(&self, params: &LabParams) -> Option<TraceSet> {
        let set = self.simulator().collect_balanced(
            params.corpus_ok,
            params.corpus_fail,
            params.max_seeds,
        );
        let (ok, fail) = set.counts();
        (ok >= params.corpus_ok && fail >= params.corpus_fail).then_some(set)
    }
}

/// Generates the scenario for `seed`, redrawing (attempt salt) until the
/// failure is demonstrably intermittent.
pub fn generate(params: &LabParams, seed: u64) -> Scenario {
    generate_validated(params, seed).0
}

/// Like [`generate`], but also returns the balanced corpus that proved the
/// draw viable — collection is the dominant per-scenario cost, so callers
/// that need the corpus anyway (the conformance harness) should take it
/// from here rather than re-collecting. Panics if 24 attempts all produce
/// degenerate schedules — with the default parameter ranges this does not
/// happen in practice, and a panic (rather than a skip) keeps fixed-seed
/// CI runs honest about generator health.
pub fn generate_validated(params: &LabParams, seed: u64) -> (Scenario, TraceSet) {
    for attempt in 0..24 {
        let s = generate_raw(params, seed, attempt);
        if let Some(set) = s.collect(params) {
            return (s, set);
        }
    }
    panic!("lab generator: no intermittent draw for seed {seed} in 24 attempts");
}

/// One unvalidated draw: `seed % 9` fixes the bug class, the rng fills in
/// the spec counts, and [`build`] instantiates the template.
pub fn generate_raw(params: &LabParams, seed: u64, attempt: u32) -> Scenario {
    let bug_class = BugClass::ALL[(seed % 9) as usize];
    let mut rng = spec_rng(seed, attempt);
    let spec = ScenarioSpec {
        seed,
        attempt,
        bug_class,
        mirrors: rng.random_range(2..=params.max_mirrors.max(2)),
        chain: rng.random_range(0..=3usize),
        monitors: rng.random_range(0..=params.max_monitors),
        noise_threads: rng.random_range(0..=params.max_noise_threads),
    };
    build(&spec)
}

fn spec_rng(seed: u64, attempt: u32) -> StdRng {
    // Salted and mixed so (seed, attempt) pairs land far apart.
    StdRng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (u64::from(attempt)).wrapping_mul(0xd1b5_4a32_d192_ed03)
            ^ 0x1ab_5eed,
    )
}

/// Instantiates a spec into a concrete program. Deterministic; the timing
/// rng is derived from the spec's `(seed, attempt)`.
pub fn build(spec: &ScenarioSpec) -> Scenario {
    let mut rng = spec_rng(spec.seed ^ 0xfeed_beef, spec.attempt);
    let mut t = TemplateCtx::new(spec, &mut rng);
    match spec.bug_class {
        BugClass::DataRace => data_race(&mut t),
        BugClass::AtomicityViolation => atomicity(&mut t),
        BugClass::OrderViolation => order_violation(&mut t),
        BugClass::UseAfterFree => use_after_free(&mut t),
        BugClass::Timing => timing(&mut t),
        BugClass::LostDelivery => lost_delivery(&mut t),
        BugClass::DuplicateDelivery => duplicate_delivery(&mut t),
        BugClass::ReorderedDelivery => reordered_delivery(&mut t),
        BugClass::ChannelDeadlock => channel_deadlock(&mut t),
    }
    t.finish()
}

/// Registers: R0/R1 raw snapshots, R2 verdict, R3 secondary verdict,
/// R4..R8 propagator chain, R9..R15 mirror scratch (see
/// `aid_cases::helpers::FIRST_SCRATCH_REG`).
const RAW: Reg = Reg(1);
const VERDICT: Reg = Reg(2);
const CHAIN_FIRST: u8 = 4;

/// Shared template state: the builder, the rng, the thread plan, and the
/// ground-truth method sets being accumulated.
struct TemplateCtx<'a> {
    spec: ScenarioSpec,
    b: ProgramBuilder,
    rng: &'a mut StdRng,
    /// `(thread name, entry)` in spawn order; join index = position + 1.
    threads: Vec<(String, MethodId)>,
    main: Option<MethodId>,
    mechanism: Vec<MethodId>,
    noise: Vec<MethodId>,
}

impl<'a> TemplateCtx<'a> {
    fn new(spec: &ScenarioSpec, rng: &'a mut StdRng) -> Self {
        TemplateCtx {
            spec: *spec,
            b: ProgramBuilder::new(&format!("lab-{}-s{}", spec.bug_class.name(), spec.seed)),
            rng,
            threads: Vec::new(),
            main: None,
            mechanism: Vec::new(),
            noise: Vec::new(),
        }
    }

    /// Registers a worker thread; returns its join index.
    fn thread(&mut self, name: impl Into<String>, entry: MethodId) -> usize {
        self.threads.push((name.into(), entry));
        self.threads.len()
    }

    /// Adds `spec.noise_threads` independent workers: each jitters, runs a
    /// pure task returning a constant, and touches a private object —
    /// predicates they spawn (slow-run timings, mostly) are statistically
    /// unrelated to the failure and must never be confirmed causal.
    fn add_noise_threads(&mut self) {
        for i in 0..self.spec.noise_threads {
            let width = self.rng.random_range(6..=30u64);
            let cost = self.rng.random_range(2..=6u64);
            // Disjoint from every mechanism value range (probe flips return
            // 0/1): a noise constant that can equal a mechanism method's
            // return would make a cross-method value-collision predicate
            // fully discriminative, and its force-distinct repair would
            // confirm a noise-touching predicate — a false lineage hit.
            let value = self.rng.random_range(100..=109i64);
            let scratch = self.b.object(&format!("noiseState{i}"), 0);
            let task = self.b.pure_method(&format!("NoiseTask{i}"), |m| {
                m.compute(cost).ret(Expr::Const(value));
            });
            let entry = self.b.method(&format!("NoiseLoop{i}"), |m| {
                m.jitter(1, width)
                    .call(task)
                    .write(scratch, Expr::Const(1))
                    .compute(1);
            });
            self.noise.push(task);
            self.noise.push(entry);
            self.thread(format!("noise{i}"), entry);
        }
    }

    /// Adds `spec.monitors` monitor threads keyed on `infected`/`phase`,
    /// returning how many were added (the `done` target).
    fn add_monitors(
        &mut self,
        phase: aid_trace::ObjectId,
        infected: aid_trace::ObjectId,
        done: aid_trace::ObjectId,
    ) -> i64 {
        for i in 0..self.spec.monitors {
            let count = self.rng.random_range(4..=9usize);
            let slow_every = self.rng.random_range(4..=6usize);
            let entry = monitor_thread(
                &mut self.b,
                &format!("Mon{i}"),
                phase,
                infected,
                done,
                count,
                slow_every,
                6,
            );
            self.thread(format!("mon{i}"), entry);
        }
        self.spec.monitors as i64
    }

    /// Defines the main method: spawn every registered thread, run `body`,
    /// join every registered thread.
    fn main(&mut self, body: impl FnOnce(&mut aid_sim::builder::BodyBuilder)) {
        let names: Vec<String> = self.threads.iter().map(|(n, _)| n.clone()).collect();
        let joins = self.threads.len();
        let main = self.b.method("Main", |m| {
            for n in &names {
                m.spawn_named(n);
            }
            body(m);
            for i in 1..=joins {
                m.join(i);
            }
        });
        self.main = Some(main);
    }

    /// Builds the final scenario from the accumulated state.
    fn finish(mut self) -> Scenario {
        let main = self.main.expect("template must define a main method");
        self.b.thread("main", main, true);
        for (name, entry) in std::mem::take(&mut self.threads) {
            self.b.thread(&name, entry, false);
        }
        let program = self.b.build();
        let mut config = ExtractionConfig::default();
        for m in program.pure_methods() {
            config.pure_methods.insert(m);
        }
        Scenario {
            name: format!("{}-s{}", self.spec.bug_class.name(), self.spec.seed),
            spec: self.spec,
            threads: program.threads.len(),
            expected_root: self.spec.bug_class.expected_root(),
            mechanism: self.mechanism.iter().copied().collect(),
            noise_methods: self.noise.iter().copied().collect(),
            program,
            config,
            runs_per_round: 10,
        }
    }
}

/// Symptom decorations shared by the register-verdict templates: an
/// optional propagator chain off `VERDICT` (returning the reg the crash
/// should test) and inline mirrors.
fn chain_and_mirrors(t: &mut TemplateCtx, prefix: &str) -> (Vec<MethodId>, Reg, Vec<MethodId>) {
    let (chain, last) = if t.spec.chain > 0 {
        propagator_chain(
            &mut t.b,
            &format!("{prefix}Stage"),
            VERDICT,
            CHAIN_FIRST,
            t.spec.chain,
        )
    } else {
        (Vec::new(), VERDICT)
    };
    let slow_every = t.rng.random_range(0..=5usize);
    let slow_every = if slow_every < 3 { 0 } else { slow_every };
    let mirrors = inline_mirrors(
        &mut t.b,
        &format!("{prefix}Probe"),
        VERDICT,
        t.spec.mirrors,
        slow_every,
    );
    (chain, last, mirrors)
}

/// **data-race**: a reader snapshots a shared index inside an open window
/// while an unlocked writer bumps it (the Npgsql §7.1.1 mechanism, with
/// randomized window widths and decorations).
fn data_race(t: &mut TemplateCtx) {
    let read_window = t.rng.random_range(28..=48u64);
    let writer_delay = t.rng.random_range(4..=8u64);
    let entry_delay = t.rng.random_range(22..=38u64);

    let flag = t.b.object("connOpen", 0);
    let shared = t.b.object("sharedIdx", 10);

    let reader = t.b.method("SnapshotIndex", |m| {
        m.write(flag, Expr::Const(1))
            .jitter(8, read_window)
            .read(shared, RAW);
    });
    let writer = t.b.method("BumpIndex", |m| {
        m.jitter(1, writer_delay).write(shared, Expr::Const(11));
    });
    let bump_loop = t.b.method("BumpLoop", |m| {
        m.wait_until(Expr::Obj(flag), Cmp::Eq, Expr::Const(1))
            .jitter(0, entry_delay)
            .call(writer);
    });
    let validate = t.b.pure_method("ValidateIndex", |m| {
        m.set_if(
            VERDICT,
            Expr::Reg(RAW),
            Cmp::Gt,
            Expr::Const(10),
            Expr::Const(1),
            Expr::Const(0),
        )
        .ret(Expr::Reg(VERDICT));
    });
    let (chain, last, mirrors) = chain_and_mirrors(t, "Route");

    // Monitor wiring (publish always precedes the crash site).
    let monitored = t.spec.monitors > 0;
    let (phase, infected, done) = if monitored {
        (
            t.b.object("lookupPhase", 0),
            t.b.object("indexCorrupt", 0),
            t.b.object("monitorsDone", 0),
        )
    } else {
        (flag, flag, flag) // unused
    };
    let publish = monitored.then(|| {
        t.b.method("PublishVerdict", |m| {
            m.write(infected, Expr::Reg(VERDICT))
                .write(phase, Expr::Const(1));
        })
    });
    let crash = t.b.method("AccessPools", |m| {
        m.compute(1)
            .throw_if(Expr::Reg(last), Cmp::Eq, Expr::Const(1), "IndexOutOfRange");
    });
    let mon_target = if monitored {
        t.add_monitors(phase, infected, done)
    } else {
        0
    };
    let worker = t.b.method("OpenConnection", |m| {
        m.call(reader).call(validate);
        m.call_each(&chain);
        if let Some(p) = publish {
            m.call(p);
        }
        m.call_each(&mirrors);
        if mon_target > 0 {
            m.wait_until(Expr::Obj(done), Cmp::Eq, Expr::Const(mon_target));
        }
        m.call(crash);
    });
    t.thread("conn", worker);
    t.thread("pool", bump_loop);
    t.add_noise_threads();
    t.mechanism.extend([reader, writer]);
    t.main(|_| {});
}

/// **atomicity**: a writer updates a `(len, slot)` pair that a reader
/// snapshots and later bounds-checks; the run crashes iff the pair lands
/// inside the reader's window.
fn atomicity(t: &mut TemplateCtx) {
    let read_window = t.rng.random_range(26..=42u64);
    let writer_delay = t.rng.random_range(6..=12u64);
    let entry_delay = t.rng.random_range(24..=40u64);
    let grown = t.rng.random_range(16..=24i64);

    let flag = t.b.object("batchOpen", 0);
    let len = t.b.object("batchLen", 10);
    let slot = t.b.object("batchSlot", 10);

    let writer = t.b.method("GrowBatch", |m| {
        m.jitter(1, writer_delay)
            .write(len, Expr::Const(grown))
            .write(slot, Expr::Const(11));
    });
    let writer_entry = t.b.method("GrowLoop", |m| {
        m.wait_until(Expr::Obj(flag), Cmp::Eq, Expr::Const(1))
            .jitter(0, entry_delay)
            .call(writer);
    });
    let (chain, _last, mirrors) = chain_and_mirrors(t, "Scan");
    let reader = t.b.method("ReadBatch", |m| {
        m.write(flag, Expr::Const(1))
            .read(len, Reg(0))
            .jitter(5, read_window)
            .set_if(
                VERDICT,
                Expr::Obj(slot),
                Cmp::Gt,
                Expr::Reg(Reg(0)),
                Expr::Const(1),
                Expr::Const(0),
            );
        m.call_each(&chain).call_each(&mirrors).throw_if_obj(
            slot,
            Cmp::Gt,
            Expr::Reg(Reg(0)),
            "IndexOutOfRange",
        );
    });
    t.thread("reader", reader);
    t.thread("writer", writer_entry);
    t.add_noise_threads();
    t.mechanism.extend([reader, writer]);
    t.main(|_| {});
}

/// **order-violation**: packaging occasionally starts before compilation
/// published its artifacts (the BuildAndTest §7.1.4 mechanism).
fn order_violation(t: &mut TemplateCtx) {
    let compile_lo = t.rng.random_range(8..=14u64);
    let compile_hi = compile_lo + t.rng.random_range(40..=55u64);
    let package_lo = t.rng.random_range(4..=8u64);
    let package_hi = package_lo + t.rng.random_range(40..=55u64);

    let compiled = t.b.object("artifactsReady", 0);
    let infected = t.b.object("artifactMissing", 0);
    let phase = t.b.object("verifyPhase", 0);
    let done = t.b.object("scanDone", 0);

    let compile = t.b.method("CompileStep", |m| {
        m.jitter(compile_lo, compile_hi)
            .write(compiled, Expr::Const(1));
    });
    let compiler_loop = t.b.method("CompilerLoop", |m| {
        m.call(compile);
    });
    let package = t.b.method("PackageStep", |m| {
        m.read(compiled, RAW);
    });
    let verify = t.b.pure_method("VerifyArtifact", |m| {
        m.set_if(
            VERDICT,
            Expr::Reg(RAW),
            Cmp::Eq,
            Expr::Const(0),
            Expr::Const(1),
            Expr::Const(0),
        )
        .ret(Expr::Reg(VERDICT));
    });
    // Symptoms key on the raw stale read (R3), siblings of the verification
    // — exactly the counterfactual-violation fodder Definition 2 prunes.
    let publish = t.b.method("PublishBuildStatus", |m| {
        m.set_if(
            Reg(3),
            Expr::Reg(RAW),
            Cmp::Eq,
            Expr::Const(0),
            Expr::Const(1),
            Expr::Const(0),
        )
        .write(infected, Expr::Reg(Reg(3)))
        .write(phase, Expr::Const(1));
    });
    let slow_every = t.rng.random_range(3..=5usize);
    let mirrors = inline_mirrors(
        &mut t.b,
        "ManifestCheck",
        Reg(3),
        t.spec.mirrors,
        slow_every,
    );
    let mon_target = t.add_monitors(phase, infected, done);

    let packager = t.b.method("PackagerLoop", |m| {
        m.jitter(package_lo, package_hi)
            .call(package)
            .call(publish)
            .call(verify);
        m.call_each(&mirrors);
        if mon_target > 0 {
            m.wait_until(Expr::Obj(done), Cmp::Eq, Expr::Const(mon_target));
        }
        m.throw_if(
            Expr::Reg(VERDICT),
            Cmp::Eq,
            Expr::Const(1),
            "ArtifactMissing",
        );
    });
    t.thread("compiler", compiler_loop);
    t.thread("packager", packager);
    t.add_noise_threads();
    t.mechanism.extend([compile, package]);
    t.main(|_| {});
}

/// **use-after-free**: the main thread disposes a consumer on a schedule
/// that only a transiently-slow worker loses to (the Kafka §7.1.2
/// mechanism).
fn use_after_free(t: &mut TemplateCtx) {
    let fast_prep = t.rng.random_range(4..=8u64);
    let fault_delay = t.rng.random_range(220..=300u64);
    let fault_prob = t.rng.random_range(40..=60u32) as f64 / 100.0;
    let slow_threshold = (fast_prep + 50) as i64;
    // Timing regime (mirrors the Kafka case): dispose fires strictly
    // *after* even a slow preparation ends — so the slow-prep window cleanly
    // precedes the use-after-free in the AC-DAG — but before a slow run's
    // commit, which the slow mirror symptoms (60 ticks each, ≥2 of them,
    // firing only when the slow verdict is set) push far enough out.
    let dispose_lo = fault_delay + 20;
    let dispose_hi = dispose_lo + t.rng.random_range(40..=70u64);

    let alive = t.b.object("consumerAlive", 1);
    let prepare = t.b.method("PrepareCommit", |m| {
        m.compute(fast_prep).flaky_delay(fault_prob, fault_delay);
    });
    let (chain, _last) = if t.spec.chain > 0 {
        propagator_chain(&mut t.b, "BatchStage", VERDICT, CHAIN_FIRST, t.spec.chain)
    } else {
        (Vec::new(), VERDICT)
    };
    let mirrors = inline_mirrors(&mut t.b, "BatchProbe", VERDICT, t.spec.mirrors.max(6), 3);
    let commit = t.b.method("Commit", |m| {
        m.throw_if_obj(alive, Cmp::Eq, Expr::Const(0), "ObjectDisposed");
    });
    let commit_offsets = t.b.method("CommitOffsets", |m| {
        m.call(commit);
    });
    let worker = t.b.method("ConsumeWorkerLoop", |m| {
        m.set(RAW, Expr::Now).call(prepare).set_if(
            VERDICT,
            Expr::sub(Expr::Now, Expr::Reg(RAW)),
            Cmp::Gt,
            Expr::Const(slow_threshold),
            Expr::Const(1),
            Expr::Const(0),
        );
        m.call_each(&chain).call_each(&mirrors).call(commit_offsets);
    });
    let dispose = t.b.method("DisposeConsumer", |m| {
        m.compute(2).write(alive, Expr::Const(0));
    });
    t.thread("worker", worker);
    t.add_noise_threads();
    t.mechanism.extend([prepare, dispose, commit]);
    t.main(move |m| {
        m.jitter(dispose_lo, dispose_hi).call(dispose);
    });
}

/// **timing**: a transient fault routes one pipeline task through a slow
/// path that outlasts a cache TTL, so the later lookup misses (the
/// CosmosDB §7.1.3 mechanism).
fn timing(t: &mut TemplateCtx) {
    let ttl = t.rng.random_range(130..=200i64);
    let fault_delay = (ttl as u64) + t.rng.random_range(150..=260u64);
    let fault_prob = t.rng.random_range(40..=60u32) as f64 / 100.0;
    let task_count = t.rng.random_range(2..=4usize);

    let expiry = t.b.object("cacheExpiry", 0);
    let infected = t.b.object("entryExpired", 0);
    let phase = t.b.object("lookupPhase", 0);
    let done = t.b.object("monitorsDone", 0);

    let populate = t.b.method("PopulateCache", |m| {
        m.compute(2)
            .write(expiry, Expr::add(Expr::Now, Expr::Const(ttl)));
    });
    let mut tasks = Vec::new();
    for i in 0..task_count {
        let cost = t.rng.random_range(2..=4u64);
        tasks.push(t.b.method(&format!("PipelineTask{i}"), move |m| {
            m.compute(cost);
        }));
    }
    let handle = t.b.method("HandleRequest", |m| {
        m.compute(3).flaky_delay(fault_prob, fault_delay);
    });
    let validate = t.b.pure_method("CheckEntryFresh", |m| {
        m.set_if(
            VERDICT,
            Expr::Obj(expiry),
            Cmp::Lt,
            Expr::Now,
            Expr::Const(1),
            Expr::Const(0),
        )
        .ret(Expr::Reg(VERDICT));
    });
    let (chain, last, mirrors) = chain_and_mirrors(t, "Resolve");
    let publish = t.b.method("PublishDiagnostics", |m| {
        m.write(infected, Expr::Reg(VERDICT))
            .write(phase, Expr::Const(1));
    });
    let fetch = t.b.method("ReadCacheEntry", |m| {
        m.compute(1).throw_if(
            Expr::Reg(last),
            Cmp::Eq,
            Expr::Const(1),
            "CacheEntryNotFound",
        );
    });
    let mon_target = t.add_monitors(phase, infected, done);
    t.add_noise_threads();
    t.mechanism.extend([handle]);
    t.main(move |m| {
        m.call(populate);
        for task in &tasks {
            m.call(*task);
        }
        m.call(handle)
            .call(validate)
            .call_each(&chain)
            .call(publish)
            .call_each(&mirrors);
        if mon_target > 0 {
            m.wait_until(Expr::Obj(done), Cmp::Eq, Expr::Const(mon_target));
        }
        m.call(fetch);
    });
}

/// **lost-delivery**: a publisher probes its link and only sends an update
/// when the probe reports healthy; a failed probe silently drops the
/// update, the subscriber's receive times out, and the `eventually`
/// liveness invariant goes unsatisfied. The root is the wrong probe
/// outcome (a pure method returning 0 where every successful run returns
/// 1), repaired by forcing the healthy value — which also re-arms the
/// send guard.
fn lost_delivery(t: &mut TemplateCtx) {
    let lat_hi = t.rng.random_range(3..=8u64);
    let pub_jitter = t.rng.random_range(2..=12u64);
    let timeout = 120 + t.rng.random_range(0..=60u64);
    let payload = t.rng.random_range(40..=90i64);

    let updates = t.b.channel("updates", None, 1, lat_hi);
    let applied = t.b.object("appliedValue", 0);
    t.b.invariant_eventually(
        "update-applied",
        Expr::Obj(applied),
        Cmp::Eq,
        Expr::Const(payload),
    );

    let probe = t.b.pure_method("ProbeLink", |m| {
        m.rand_range(RAW, 0, 1).ret(Expr::Reg(RAW));
    });
    let publish = t.b.method("PublishUpdate", move |m| {
        m.jitter(1, pub_jitter).send_if(
            updates,
            Expr::Const(payload),
            Expr::Reg(RAW),
            Cmp::Eq,
            Expr::Const(1),
        );
    });
    let publisher = t.b.method("PublisherLoop", |m| {
        m.call(probe).call(publish);
    });
    let apply = t.b.method("ApplyUpdate", move |m| {
        m.recv_timeout(updates, Reg(0), timeout)
            .write(applied, Expr::Reg(Reg(0)));
    });
    let (chain, _last, mirrors) = chain_and_mirrors(t, "Feed");
    let subscriber = t.b.method("SubscriberLoop", move |m| {
        m.call(apply).set_if(
            VERDICT,
            Expr::Reg(Reg(0)),
            Cmp::Lt,
            Expr::Const(0),
            Expr::Const(1),
            Expr::Const(0),
        );
        m.call_each(&chain).call_each(&mirrors);
    });
    t.thread("publisher", publisher);
    t.thread("subscriber", subscriber);
    t.add_noise_threads();
    t.mechanism.extend([probe, publish, apply]);
    t.main(|_| {});
}

/// **duplicate-delivery**: a teller submits a deposit, then probes for the
/// ack; a lost ack triggers a retry that re-delivers the same deposit, and
/// the ledger's applied balance breaks the `always` safety invariant. The
/// root is the wrong ack-probe outcome, same repair shape as
/// lost-delivery.
fn duplicate_delivery(t: &mut TemplateCtx) {
    let lat_hi = t.rng.random_range(2..=6u64);
    let amount = t.rng.random_range(30..=80i64);
    let dup_window = 80 + t.rng.random_range(0..=40u64);

    let deposits = t.b.channel("deposits", None, 1, lat_hi);
    let balance = t.b.object("balance", 0);
    t.b.invariant_always(
        "no-overdeposit",
        Expr::Obj(balance),
        Cmp::Le,
        Expr::Const(amount),
    );

    let ack = t.b.pure_method("AckReceived", |m| {
        m.rand_range(Reg(3), 0, 1).ret(Expr::Reg(Reg(3)));
    });
    let submit = t.b.method("SubmitDeposit", move |m| {
        m.jitter(1, 6).send(deposits, Expr::Const(amount));
    });
    let retry = t.b.method("RetryDeposit", move |m| {
        m.send_if(
            deposits,
            Expr::Const(amount),
            Expr::Reg(Reg(3)),
            Cmp::Eq,
            Expr::Const(0),
        );
    });
    let teller = t.b.method("TellerLoop", |m| {
        m.call(submit).call(ack).call(retry);
    });
    let apply = t.b.method("ApplyDeposits", move |m| {
        m.recv(deposits, Reg(0))
            .recv_timeout(deposits, RAW, dup_window);
    });
    let (chain, _last, mirrors) = chain_and_mirrors(t, "Ledger");
    let ledger = t.b.method("LedgerLoop", move |m| {
        m.call(apply)
            .set_if(
                VERDICT,
                Expr::Reg(RAW),
                Cmp::Ge,
                Expr::Const(0),
                Expr::Const(1),
                Expr::Const(0),
            )
            .set_if(
                Reg(3),
                Expr::Reg(RAW),
                Cmp::Lt,
                Expr::Const(0),
                Expr::Reg(Reg(0)),
                Expr::add(Expr::Reg(Reg(0)), Expr::Reg(RAW)),
            );
        m.call_each(&chain).call_each(&mirrors);
        // The invariant trips here on duplicated runs (after the symptom
        // decorations have fired).
        m.write(balance, Expr::Reg(Reg(3)));
    });
    t.thread("teller", teller);
    t.thread("ledger", ledger);
    t.add_noise_threads();
    t.mechanism.extend([ack, submit, retry, apply]);
    t.main(|_| {});
}

/// **reordered-delivery**: a prepare/commit pair crosses one fixed-latency
/// channel, but the two sends race in wall-clock time — when the commit
/// relay wins, the channel delivers commit before prepare and the
/// consumer's cross-process atomicity breaks. The racing sends surface as
/// a data-race predicate on the channel pseudo-object — discovery confirms
/// that as root, with the lost send precedence (an order-violation
/// predicate) as the next causal link.
fn reordered_delivery(t: &mut TemplateCtx) {
    let lat = t.rng.random_range(2..=5u64);
    let prep_lo = t.rng.random_range(6..=12u64);
    let prep_hi = prep_lo + t.rng.random_range(35..=50u64);
    let com_lo = t.rng.random_range(4..=8u64);
    let com_hi = com_lo + t.rng.random_range(35..=50u64);

    // Fixed latency: delivery order is exactly send order, so the race is
    // between the senders, not the fault plane.
    let tx = t.b.channel("txQ", None, lat, lat);

    let prepare = t.b.method("SendPrepare", move |m| {
        m.jitter(prep_lo, prep_hi).send(tx, Expr::Const(1));
    });
    let preparer = t.b.method("PreparerLoop", |m| {
        m.call(prepare);
    });
    let commit = t.b.method("RelayCommit", move |m| {
        m.send(tx, Expr::Const(2));
    });
    let committer = t.b.method("CommitterLoop", move |m| {
        m.jitter(com_lo, com_hi).call(commit);
    });
    let apply = t.b.method("ApplyTx", move |m| {
        m.recv(tx, Reg(0)).recv(tx, RAW);
    });
    let (chain, last, mirrors) = chain_and_mirrors(t, "Journal");
    let ledger = t.b.method("LedgerLoop", move |m| {
        m.call(apply).set_if(
            VERDICT,
            Expr::Reg(Reg(0)),
            Cmp::Eq,
            Expr::Const(2),
            Expr::Const(1),
            Expr::Const(0),
        );
        m.call_each(&chain).call_each(&mirrors).throw_if(
            Expr::Reg(last),
            Cmp::Eq,
            Expr::Const(1),
            "AtomicityBroken",
        );
    });
    t.thread("preparer", preparer);
    t.thread("committer", committer);
    t.thread("ledger", ledger);
    t.add_noise_threads();
    t.mechanism.extend([prepare, commit, apply]);
    t.main(|_| {});
}

/// **channel-deadlock**: two ring stages forward a token through circular
/// channels; the kickstart is guarded on a link probe, so a failed probe
/// leaves both stages blocked on receives that can never be satisfied —
/// the scheduler proves the circular wait and fails the run with
/// `Deadlock`. The root is the wrong probe outcome.
fn channel_deadlock(t: &mut TemplateCtx) {
    let start_jitter = t.rng.random_range(2..=10u64);

    let ring_a = t.b.channel("ringA", None, 1, 1);
    let ring_b = t.b.channel("ringB", None, 1, 1);

    let probe = t.b.pure_method("ProbeRing", |m| {
        m.rand_range(Reg(3), 0, 1).ret(Expr::Reg(Reg(3)));
    });
    let inject = t.b.method("InjectToken", move |m| {
        m.send_if(
            ring_a,
            Expr::Const(7),
            Expr::Reg(Reg(3)),
            Cmp::Eq,
            Expr::Const(1),
        );
    });
    let (chain, _last, mirrors) = chain_and_mirrors(t, "Ring");
    let starter = t.b.method("StarterLoop", move |m| {
        m.jitter(1, start_jitter).call(probe).call(inject).set_if(
            VERDICT,
            Expr::Reg(Reg(3)),
            Cmp::Eq,
            Expr::Const(0),
            Expr::Const(1),
            Expr::Const(0),
        );
        m.call_each(&chain).call_each(&mirrors);
    });
    let stage_a = t.b.method("ForwardStageA", move |m| {
        m.recv(ring_a, Reg(0)).send(ring_b, Expr::Reg(Reg(0)));
    });
    let stage_b = t.b.method("ForwardStageB", move |m| {
        m.recv(ring_b, Reg(0)).send(ring_a, Expr::Reg(Reg(0)));
    });
    t.thread("starter", starter);
    t.thread("stageA", stage_a);
    t.thread("stageB", stage_b);
    t.add_noise_threads();
    t.mechanism.extend([probe, inject, stage_a, stage_b]);
    t.main(|_| {});
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let params = LabParams::default();
        for seed in 0..9 {
            let a = generate_raw(&params, seed, 0);
            let b = generate_raw(&params, seed, 0);
            assert_eq!(a.program.fingerprint(), b.program.fingerprint());
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.mechanism, b.mechanism);
            assert_eq!(a.noise_methods, b.noise_methods);
        }
    }

    #[test]
    fn contiguous_seeds_cover_every_bug_class() {
        let params = LabParams::default();
        let classes: BTreeSet<BugClass> = (0..9)
            .map(|s| generate_raw(&params, s, 0).spec.bug_class)
            .collect();
        assert_eq!(classes.len(), 9, "seed % 9 must cover all templates");
    }

    #[test]
    fn channel_classes_declare_channels_and_shared_classes_do_not() {
        let params = LabParams::default();
        for seed in 0..9 {
            let s = generate_raw(&params, seed, 0);
            assert_eq!(
                !s.program.channels.is_empty(),
                s.spec.bug_class.uses_channels(),
                "{}",
                s.name
            );
        }
        // The invariant-oracle classes declare exactly one invariant each.
        for seed in [5u64, 6] {
            let s = generate_raw(&params, seed, 0);
            assert_eq!(s.program.invariants.len(), 1, "{}", s.name);
        }
    }

    #[test]
    fn ground_truth_sets_are_disjoint_and_named() {
        let params = LabParams::default();
        for seed in 0..10 {
            let s = generate_raw(&params, seed, 0);
            assert!(!s.mechanism.is_empty());
            for m in &s.mechanism {
                assert!(
                    !s.noise_methods.contains(m),
                    "{}: mechanism method {m:?} marked as noise",
                    s.name
                );
                assert!(s.on_lineage(*m));
            }
            for m in &s.noise_methods {
                assert!(s.program.method(*m).name.starts_with("Noise"));
            }
        }
    }

    #[test]
    fn bug_class_names_round_trip() {
        for c in BugClass::ALL {
            assert_eq!(BugClass::from_name(c.name()), Some(c));
        }
        assert_eq!(BugClass::from_name("nope"), None);
    }

    #[test]
    fn generated_scenarios_are_intermittent() {
        let params = LabParams::default();
        for seed in 0..9 {
            let s = generate(&params, seed);
            let set = s.collect(&params).expect("generate() validated viability");
            let (ok, fail) = set.counts();
            assert!(
                ok >= params.corpus_ok && fail >= params.corpus_fail,
                "{}",
                s.name
            );
        }
    }
}
