//! Persistence for minimized regression corpora.
//!
//! A corpus entry is one labeled [`TraceSet`] (usually the output of
//! [`crate::shrink::shrink_corpus`]) serialized with the standard
//! `aid_trace::codec` line format, prefixed by a single `#AID-LAB-CORPUS`
//! comment line carrying the metadata needed to replay it faithfully: the
//! scenario name, bug class, seed, the invariant that originally failed,
//! and which method ids are pure (so the replayed `ExtractionConfig`
//! matches the original). The codec skips `#` comments, so an entry file is
//! itself a valid trace log — greppable, diffable, and loadable by any
//! tool that reads the trace format.
//!
//! Entries live in `crates/lab/corpus/` and are replayed by CI against the
//! corpus-level conformance invariants.

use crate::gen::BugClass;
use aid_predicates::ExtractionConfig;
use aid_trace::{codec, MethodId, TraceSet};
use std::path::{Path, PathBuf};

/// Header tag of an entry file's first line.
const HEADER: &str = "#AID-LAB-CORPUS v1";

/// One persisted corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Entry name (also the file stem).
    pub name: String,
    /// Bug class of the originating scenario, when known.
    pub bug_class: Option<BugClass>,
    /// Scenario seed.
    pub seed: u64,
    /// The invariant this corpus originally violated.
    pub invariant: String,
    /// Raw ids of pure methods (relative to the entry's own arenas).
    pub pure_methods: Vec<u32>,
    /// The minimized trace corpus.
    pub set: TraceSet,
}

impl CorpusEntry {
    /// The extraction configuration the entry should be replayed under.
    pub fn config(&self) -> ExtractionConfig {
        let mut config = ExtractionConfig::default();
        for &raw in &self.pure_methods {
            config.pure_methods.insert(MethodId::from_raw(raw));
        }
        config
    }

    /// Renders the entry to its on-disk text form.
    pub fn render(&self) -> String {
        let pure = self
            .pure_methods
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let class = self.bug_class.map_or("unknown", |c| c.name());
        format!(
            "{HEADER} name={} class={} seed={} invariant={} pure={}\n{}",
            sanitize(&self.name),
            class,
            self.seed,
            sanitize(&self.invariant),
            pure,
            codec::encode(&self.set),
        )
    }

    /// Parses an entry from its on-disk text form.
    pub fn parse(text: &str) -> Result<CorpusEntry, String> {
        let first = text.lines().next().unwrap_or_default();
        if !first.starts_with(HEADER) {
            return Err(format!("missing {HEADER} header"));
        }
        let mut entry = CorpusEntry {
            name: "unnamed".into(),
            bug_class: None,
            seed: 0,
            invariant: "unknown".into(),
            pure_methods: Vec::new(),
            set: TraceSet::new(),
        };
        for token in first[HEADER.len()..].split_ascii_whitespace() {
            let Some((key, value)) = token.split_once('=') else {
                continue;
            };
            match key {
                "name" => entry.name = value.to_string(),
                "class" => entry.bug_class = BugClass::from_name(value),
                "seed" => entry.seed = value.parse().map_err(|_| "bad seed".to_string())?,
                "invariant" => entry.invariant = value.to_string(),
                "pure" => {
                    for id in value.split(',').filter(|s| !s.is_empty()) {
                        entry
                            .pure_methods
                            .push(id.parse().map_err(|_| "bad pure id".to_string())?);
                    }
                }
                _ => {}
            }
        }
        entry.set = codec::decode(text).map_err(|e| e.to_string())?;
        Ok(entry)
    }
}

fn sanitize(s: &str) -> String {
    s.replace(char::is_whitespace, "_")
}

/// Writes an entry into `dir` as `<name>.log`, returning the path.
pub fn save_entry(dir: &Path, entry: &CorpusEntry) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.log", sanitize(&entry.name)));
    std::fs::write(&path, entry.render())?;
    Ok(path)
}

/// Loads one entry file.
pub fn load_entry(path: &Path) -> Result<CorpusEntry, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    CorpusEntry::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Loads every `.log` entry in `dir`, sorted by file name for determinism.
/// An absent directory is an empty corpus, not an error.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "log"))
            .collect(),
        Err(_) => return Ok(Vec::new()),
    };
    paths.sort();
    paths.iter().map(|p| load_entry(p)).collect()
}

/// The committed regression-corpus directory of this crate.
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aid_trace::{FailureSignature, MethodEvent, Outcome, ThreadId, Trace};

    fn small_set() -> TraceSet {
        let mut set = TraceSet::new();
        let m = set.method("Commit");
        let mut t = Trace {
            seed: 9,
            msgs: vec![],
            events: vec![MethodEvent {
                method: m,
                instance: 0,
                thread: ThreadId::from_raw(0),
                start: 0,
                end: 4,
                accesses: vec![],
                returned: Some(1),
                exception: Some("Boom".into()),
                caught: false,
            }],
            outcome: Outcome::Failure(FailureSignature {
                kind: "Boom".into(),
                method: m,
            }),
            duration: 5,
        };
        t.normalize();
        set.push(t);
        set
    }

    #[test]
    fn entries_round_trip_through_disk_form() {
        let entry = CorpusEntry {
            name: "uaf-s13 minimized".into(),
            bug_class: Some(BugClass::UseAfterFree),
            seed: 13,
            invariant: "codec-identity".into(),
            pure_methods: vec![0],
            set: small_set(),
        };
        let text = entry.render();
        let back = CorpusEntry::parse(&text).expect("parse");
        assert_eq!(back.name, "uaf-s13_minimized");
        assert_eq!(back.bug_class, Some(BugClass::UseAfterFree));
        assert_eq!(back.seed, 13);
        assert_eq!(back.invariant, "codec-identity");
        assert_eq!(back.pure_methods, vec![0]);
        assert_eq!(back.set.traces, entry.set.traces);
        assert!(back.config().pure_methods.contains(&MethodId::from_raw(0)));
    }

    #[test]
    fn save_and_load_dir() {
        let dir = std::env::temp_dir().join(format!("aid-lab-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let entry = CorpusEntry {
            name: "entry-a".into(),
            bug_class: Some(BugClass::Timing),
            seed: 4,
            invariant: "framing-independence".into(),
            pure_methods: vec![],
            set: small_set(),
        };
        let path = save_entry(&dir, &entry).expect("save");
        assert!(path.ends_with("entry-a.log"));
        let loaded = load_dir(&dir).expect("load");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].set.traces, entry.set.traces);
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_dir(&dir).expect("absent dir is empty").is_empty());
    }
}
