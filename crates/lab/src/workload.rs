//! Scenario replay as a *client workload*: pre-collected corpora plus the
//! generating spec, ready to be shipped to an `aid_serve` server.
//!
//! The serving story needs workloads where many clients replay the same
//! debugging session — that is what exercises cross-client
//! intervention-cache sharing. A [`ReplayItem`] packages everything a
//! client needs: the validated scenario (whose [`crate::ScenarioSpec`] travels on
//! the wire so the server can rebuild the program bit-identically), the
//! balanced observation corpus, and its codec encoding ready for chunked
//! upload. Collection is the dominant cost, so items are prepared once and
//! shared across client threads.

use crate::gen::{generate_validated, LabParams, Scenario};
use aid_trace::{codec, TraceSet};

/// One replayable unit of client work: a scenario and its upload bytes.
#[derive(Clone, Debug)]
pub struct ReplayItem {
    /// The validated scenario (spec, program, ground truth).
    pub scenario: Scenario,
    /// The balanced observation corpus that proved the draw viable.
    pub corpus: TraceSet,
    /// The corpus in wire form (`aid_trace::codec`), ready to chunk.
    pub encoded: String,
}

/// Prepares replay items for every seed, reusing the validation corpus so
/// nothing is collected twice. Deterministic per `(params, seed)`.
pub fn prepare_replay(params: &LabParams, seeds: impl IntoIterator<Item = u64>) -> Vec<ReplayItem> {
    seeds
        .into_iter()
        .map(|seed| {
            let (scenario, corpus) = generate_validated(params, seed);
            let encoded = codec::encode(&corpus);
            ReplayItem {
                scenario,
                corpus,
                encoded,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_items_are_deterministic_and_round_trip() {
        let params = LabParams::default();
        let a = prepare_replay(&params, 0..2);
        let b = prepare_replay(&params, 0..2);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.scenario.spec, y.scenario.spec);
            assert_eq!(x.encoded, y.encoded, "same seed, same upload bytes");
            // The encoding really is the corpus.
            let back = codec::decode(&x.encoded).expect("well-formed");
            assert_eq!(back.traces, x.corpus.traces);
        }
    }
}
