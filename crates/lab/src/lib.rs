//! `aid_lab` — randomized scenario generation with a differential
//! conformance harness.
//!
//! The six case studies and the Figure-8 synthetic family pin AID's
//! behavior to a *fixed* test matrix. This crate makes the matrix
//! open-ended:
//!
//! * [`gen`] draws arbitrary buggy concurrent programs from nine
//!   parameterized bug-class templates — five shared-memory (data race,
//!   atomicity violation, order violation, use-after-free, timing/expiry)
//!   and four message-passing (lost delivery, duplicate delivery,
//!   reordered delivery, channel deadlock) — each with randomized thread
//!   counts, schedules, symptom decorations, and causally unrelated
//!   noise — and with machine-checkable ground truth attached;
//! * [`harness`] runs the full pipeline (codec → store → predicates → SD →
//!   AC-DAG → engine discovery) on every generated scenario and checks
//!   cross-layer invariants: byte-identical round-trips, framing-
//!   independent streaming ingestion, incremental-equals-batch analysis at
//!   every prefix, schedule- and cache-independent discovery, and
//!   discovered causes that stay on the ground-truth lineage;
//! * [`shrink`] minimizes failing scenarios (drop noise threads, monitors,
//!   mirrors; drop traces, events, accesses) while the violation persists;
//! * [`corpus`] persists minimized reproducers under `crates/lab/corpus/`
//!   as a replayable regression suite.
//!
//! The `lab` binary in `aid_bench` drives fixed-seed fuzz sweeps and emits
//! a machine-readable `AID-LAB {json}` summary; CI runs it on every push.
//!
//! ```
//! use aid_lab::{generate_raw, BugClass, LabParams};
//!
//! // Deterministic per seed; `seed % 9` walks the nine bug classes.
//! let params = LabParams::default();
//! let scenario = generate_raw(&params, 2, 0);
//! assert_eq!(scenario.spec.bug_class, BugClass::OrderViolation);
//! assert_eq!(scenario.program.name, "lab-order-violation-s2");
//! assert!(!scenario.mechanism.is_empty());
//! let again = generate_raw(&params, 2, 0);
//! assert_eq!(scenario.program.fingerprint(), again.program.fingerprint());
//! ```

pub mod corpus;
pub mod gen;
pub mod harness;
pub mod shrink;
pub mod workload;

pub use corpus::{default_corpus_dir, load_dir, load_entry, save_entry, CorpusEntry};
pub use gen::{
    build, generate, generate_raw, generate_validated, BugClass, LabParams, Scenario, ScenarioSpec,
};
pub use harness::{
    check_scenario, check_scenario_on, compare_analysis, corpus_violations, predicate_methods,
    BackendMode, Conformance, ScenarioReport, Violation,
};
pub use shrink::{shrink_corpus, shrink_spec};
pub use workload::{prepare_replay, ReplayItem};
