//! Greedy delta-debugging shrinkers for failing scenarios.
//!
//! When an invariant fails, the raw reproducer is noisy: a whole generated
//! program plus a 16-trace corpus. Two shrinkers reduce it while the
//! invariant keeps failing:
//!
//! * [`shrink_spec`] minimizes the *scenario structure* — drop noise
//!   threads, monitors, mirrors, and chain links (the "tasks") from the
//!   [`ScenarioSpec`] as long as rebuilding still reproduces the failure;
//! * [`shrink_corpus`] minimizes the *trace corpus* — drop whole traces,
//!   then individual events, then individual accesses, as long as the
//!   failing predicate still holds.
//!
//! Both are greedy single-removal passes run to a fixpoint, so the result
//! is 1-minimal: removing any single remaining element makes the failure
//! disappear. Minimized corpora are what `crates/lab/corpus/` persists as
//! the replayable regression suite.

use crate::gen::ScenarioSpec;
use aid_trace::TraceSet;

/// Shrinks a trace corpus while `still_fails` keeps returning `true`.
///
/// `still_fails` receives a candidate reduction and must re-run the failing
/// invariant on it. If the original set does not fail, it is returned
/// unchanged. The result is 1-minimal under trace, event, and access
/// removal.
pub fn shrink_corpus(set: &TraceSet, still_fails: &mut dyn FnMut(&TraceSet) -> bool) -> TraceSet {
    let mut current = set.clone();
    if !still_fails(&current) {
        return current;
    }
    loop {
        let mut reduced = false;

        // Pass 1: drop whole traces (reverse order keeps indices stable).
        for i in (0..current.traces.len()).rev() {
            let mut candidate = current.clone();
            candidate.traces.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                reduced = true;
            }
        }

        // Pass 2: drop individual events.
        for ti in 0..current.traces.len() {
            for ei in (0..current.traces[ti].events.len()).rev() {
                let mut candidate = current.clone();
                candidate.traces[ti].events.remove(ei);
                // Dynamic instance indices depend on the remaining events.
                candidate.traces[ti].normalize();
                if still_fails(&candidate) {
                    current = candidate;
                    reduced = true;
                }
            }
        }

        // Pass 3: drop individual accesses.
        for ti in 0..current.traces.len() {
            for ei in 0..current.traces[ti].events.len() {
                for ai in (0..current.traces[ti].events[ei].accesses.len()).rev() {
                    let mut candidate = current.clone();
                    candidate.traces[ti].events[ei].accesses.remove(ai);
                    if still_fails(&candidate) {
                        current = candidate;
                        reduced = true;
                    }
                }
            }
        }

        if !reduced {
            return current;
        }
    }
}

/// Shrinks a scenario's structural draw while `still_fails` keeps
/// returning `true` for the rebuilt scenario.
///
/// Each decoration count is driven toward zero (first zero outright, then
/// halving), in an order chosen so the cheapest reproducers win: noise
/// threads, monitors, propagator chain, mirrors. The failing invariant is
/// re-run on the *rebuilt* program, so a count survives only if it is
/// load-bearing for the failure.
pub fn shrink_spec(
    spec: &ScenarioSpec,
    still_fails: &mut dyn FnMut(&ScenarioSpec) -> bool,
) -> ScenarioSpec {
    let mut current = *spec;
    if !still_fails(&current) {
        return current;
    }
    loop {
        let mut reduced = false;
        for field in 0..4usize {
            let read = |s: &ScenarioSpec| match field {
                0 => s.noise_threads,
                1 => s.monitors,
                2 => s.chain,
                _ => s.mirrors,
            };
            let write = |s: &mut ScenarioSpec, v: usize| match field {
                0 => s.noise_threads = v,
                1 => s.monitors = v,
                2 => s.chain = v,
                _ => s.mirrors = v,
            };
            let cur = read(&current);
            for target in [0, cur / 2] {
                if target >= cur {
                    continue;
                }
                let mut candidate = current;
                write(&mut candidate, target);
                if still_fails(&candidate) {
                    current = candidate;
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::BugClass;
    use aid_trace::{FailureSignature, MethodEvent, Outcome, ThreadId, Trace};

    fn toy_set(traces: usize, events_per: usize) -> TraceSet {
        let mut set = TraceSet::new();
        let m = set.method("M");
        for seed in 0..traces as u64 {
            let events = (0..events_per)
                .map(|i| MethodEvent {
                    method: m,
                    instance: 0,
                    thread: ThreadId::from_raw(0),
                    start: 10 * i as u64,
                    end: 10 * i as u64 + 5,
                    accesses: vec![],
                    returned: None,
                    exception: None,
                    caught: false,
                })
                .collect();
            let mut t = Trace {
                seed,
                events,
                msgs: vec![],
                outcome: if seed % 2 == 0 {
                    Outcome::Success
                } else {
                    Outcome::Failure(FailureSignature {
                        kind: "Boom".into(),
                        method: m,
                    })
                },
                duration: 100,
            };
            t.normalize();
            set.push(t);
        }
        set
    }

    #[test]
    fn corpus_shrinks_to_the_minimal_failing_shape() {
        let set = toy_set(8, 4);
        // Deliberately false invariant: "no failing trace exists".
        let shrunk = shrink_corpus(&set, &mut |s| s.traces.iter().any(|t| t.failed()));
        assert_eq!(shrunk.traces.len(), 1, "one failing trace suffices");
        assert!(shrunk.traces[0].failed());
        assert!(shrunk.traces[0].events.is_empty(), "events are not needed");
    }

    #[test]
    fn corpus_shrink_is_a_noop_when_nothing_fails() {
        let set = toy_set(3, 2);
        let shrunk = shrink_corpus(&set, &mut |_| false);
        assert_eq!(shrunk.traces.len(), 3);
    }

    #[test]
    fn spec_shrink_drives_decorations_to_zero() {
        let spec = ScenarioSpec {
            seed: 3,
            attempt: 0,
            bug_class: BugClass::OrderViolation,
            mirrors: 8,
            chain: 3,
            monitors: 2,
            noise_threads: 3,
        };
        // Failure independent of decorations: everything shrinks away.
        let shrunk = shrink_spec(&spec, &mut |_| true);
        assert_eq!(
            (
                shrunk.mirrors,
                shrunk.chain,
                shrunk.monitors,
                shrunk.noise_threads
            ),
            (0, 0, 0, 0)
        );
        // Failure requiring ≥4 mirrors: mirrors stop at 4, rest vanish.
        let shrunk = shrink_spec(&spec, &mut |s| s.mirrors >= 4);
        assert_eq!(shrunk.mirrors, 4);
        assert_eq!(
            (shrunk.chain, shrunk.monitors, shrunk.noise_threads),
            (0, 0, 0)
        );
    }
}
